"""Legacy setuptools shim.

Lets ``pip install -e . --no-use-pep517`` work in offline environments
whose setuptools lacks the ``wheel`` package needed for PEP 660 editable
installs.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
