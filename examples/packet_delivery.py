#!/usr/bin/env python
"""End-to-end packet delivery over agent-built routing tables.

The routing tables the agents maintain exist so data packets can reach
a gateway.  This example runs the routing world for a while, then
periodically injects batches of packets at random nodes and forwards
them hop-by-hop along the installed next hops over the *current*
topology, reporting delivery rate and mean path length — and showing
that the connectivity metric tracks real deliverability.

Run::

    python examples/packet_delivery.py [seed]
"""

from __future__ import annotations

import sys

from repro import PacketSimulator, RoutingWorld, RoutingWorldConfig, generate_manet_network
from repro.net.generator import GeneratorConfig
from repro.rng import SeedSpawner


def main(seed: int = 1) -> None:
    network_config = GeneratorConfig(
        node_count=120,
        target_edges=None,
        range_heterogeneity=0.25,
        require_strong_connectivity=False,
        gateway_count=6,
        mobile_fraction=0.5,
    )
    topology = generate_manet_network(seed, network_config)
    config = RoutingWorldConfig(
        agent_kind="oldest-node",
        population=40,
        history_size=12,
        total_steps=200,
        converged_after=100,
    )
    world = RoutingWorld(topology, config, seed)
    traffic_rng = SeedSpawner(seed).stream("traffic")

    print(f"{'step':>5s}  {'connectivity':>12s}  {'delivered':>9s}  {'mean hops':>9s}")
    for checkpoint in range(10):
        for __ in range(config.total_steps // 10):
            world.engine.step()
        simulator = PacketSimulator(world.topology, world.tables)
        stats = simulator.send_batch(200, traffic_rng)
        connectivity = world.result.connectivity[-1]
        print(
            f"{world.engine.clock.now:>5d}  {connectivity:>12.3f}  "
            f"{stats.delivery_rate:>9.3f}  {stats.mean_hops:>9.2f}"
        )

    print()
    print(
        "delivery rate should track the connectivity fraction: both count "
        "nodes whose installed next hops still line up with live links."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)
