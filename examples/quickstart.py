#!/usr/bin/env python
"""Quickstart: map a wireless network with a small team of mobile agents.

Generates a seeded random wireless network, releases a team of
stigmergic conscientious agents on it, and reports how long the team
took to build a perfect map — then does the same without stigmergy to
show the paper's headline effect.

Run::

    python examples/quickstart.py [seed]
"""

from __future__ import annotations

import sys

from repro import (
    GeneratorConfig,
    MappingWorld,
    MappingWorldConfig,
    generate_mapping_network,
)


def main(seed: int = 1) -> None:
    # A modest network so the example finishes in well under a second:
    # 80 nodes with heterogeneous radio ranges (a directed topology).
    network_config = GeneratorConfig(
        node_count=80,
        target_edges=None,
        range_heterogeneity=0.3,
    )
    topology = generate_mapping_network(seed, network_config)
    print(
        f"network: {topology.node_count} nodes, {topology.edge_count} directed links"
    )

    for stigmergic in (False, True):
        config = MappingWorldConfig(
            agent_kind="conscientious",
            population=8,
            stigmergic=stigmergic,
            max_steps=20_000,
        )
        result = MappingWorld(topology, config, seed).run()
        flavour = "stigmergic" if stigmergic else "plain"
        print(
            f"{flavour:11s} team of {config.population}: "
            f"perfect map after {result.finishing_time} steps "
            f"({result.meetings} meetings)"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)
