#!/usr/bin/env python
"""Dynamic routing in a MANET kept alive by mobile agents.

Builds the paper's §III scenario at reduced scale: a mobile ad hoc
network with stationary gateways, half the nodes moving with random
velocities and shrinking battery-powered radios.  Oldest-node agents
wander the network writing gateway routes into node routing tables; the
script prints the connectivity curve and the converged mean, comparing
oldest-node against random agents.

Run::

    python examples/manet_routing.py [seed]
"""

from __future__ import annotations

import sys

from repro import RoutingWorld, RoutingWorldConfig, generate_manet_network
from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.series import TimeSeries
from repro.net.generator import GeneratorConfig


def main(seed: int = 1) -> None:
    network_config = GeneratorConfig(
        node_count=120,
        target_edges=None,
        range_heterogeneity=0.25,
        require_strong_connectivity=False,
        gateway_count=6,
        mobile_fraction=0.5,
    )

    curves = {}
    for kind in ("oldest-node", "random"):
        # Regenerating from the same seed reproduces the identical
        # placement and movement paths, so the comparison is paired.
        topology = generate_manet_network(seed, network_config)
        config = RoutingWorldConfig(
            agent_kind=kind,
            population=40,
            history_size=10,
            total_steps=200,
            converged_after=100,
        )
        result = RoutingWorld(topology, config, seed).run()
        curves[kind] = TimeSeries(result.times, result.connectivity)
        print(
            f"{kind:12s}: mean connectivity {result.mean_connectivity:.3f} "
            f"(fluctuation ±{result.connectivity_stability:.3f}) "
            f"over steps {config.converged_after}..{config.total_steps}"
        )

    print()
    print(ascii_plot(curves, title="connectivity over time", y_label="connected fraction"))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)
