#!/usr/bin/env python
"""Attractive pheromone (ant colony) vs repulsive footprints (the paper).

The paper's related work coordinates routing agents with *attractive*
ant pheromone (AntHocNet and friends); the paper's own mechanism is the
opposite — footprints that *repel* agents apart.  This example runs
both coordination styles (plus an uncoordinated reference) on the same
MANET and the same metric, and prints where each style's agents spend
their time relative to the gateways.

Run::

    python examples/ant_vs_footprints.py [seed]
"""

from __future__ import annotations

import sys
from collections import Counter

from repro import RoutingWorld, RoutingWorldConfig, generate_manet_network
from repro.net.generator import GeneratorConfig
from repro.net.graphutils import bfs_hops

NETWORK = GeneratorConfig(
    node_count=120,
    target_edges=None,
    range_heterogeneity=0.25,
    require_strong_connectivity=False,
    gateway_count=6,
    mobile_fraction=0.5,
)

VARIANTS = {
    "oldest-node + footprints": dict(agent_kind="oldest-node", stigmergic=True),
    "oldest-node (plain)": dict(agent_kind="oldest-node"),
    "ant pheromone": dict(agent_kind="ant"),
}


def gateway_distance_histogram(world) -> Counter:
    """How far from the nearest gateway the agents currently sit."""
    reverse = {n: set() for n in world.topology.node_ids}
    adjacency = world.topology.adjacency_copy()
    for u, successors in adjacency.items():
        for v in successors:
            reverse[v].add(u)
    distance = {}
    for gateway in world.topology.gateway_ids:
        for node, hops in bfs_hops(reverse, gateway).items():
            if node not in distance or hops < distance[node]:
                distance[node] = hops
    histogram = Counter()
    for agent in world.agents:
        histogram[distance.get(agent.location, -1)] += 1
    return histogram


def main(seed: int = 1) -> None:
    print(f"{'variant':28s}  {'connectivity':>12s}  {'agents <=2 hops of a gateway':>30s}")
    for name, overrides in VARIANTS.items():
        topology = generate_manet_network(seed, NETWORK)
        config = RoutingWorldConfig(
            population=40,
            history_size=12,
            total_steps=200,
            converged_after=100,
            **overrides,
        )
        world = RoutingWorld(topology, config, seed)
        result = world.run()
        histogram = gateway_distance_histogram(world)
        near = sum(count for hops, count in histogram.items() if 0 <= hops <= 2)
        print(
            f"{name:28s}  {result.mean_connectivity:>12.3f}  "
            f"{near:>20d} / {config.population}"
        )
    print()
    print(
        "attraction pulls ants toward gateways (higher 'near' count); "
        "repulsive footprints spread agents out, which is what keeps the "
        "whole network's routing tables fresh."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)
