#!/usr/bin/env python
"""Re-mapping a network after battery-driven link degradation.

The paper's mapping environment notes that "the topology knowledge of
the network becomes invalid after a while, such that we need to fire up
the agents again to capture the changes" (§II-A).  This example maps a
network, degrades a fraction of node radios mid-run (links vanish),
and shows the agent team re-achieving a perfect map of the *changed*
network — then compares how a fresh team would have done.

Run::

    python examples/degradation_remapping.py [seed]
"""

from __future__ import annotations

import sys

from repro import GeneratorConfig, MappingWorld, MappingWorldConfig, generate_mapping_network


def main(seed: int = 1) -> None:
    network_config = GeneratorConfig(
        node_count=80,
        target_edges=None,
        range_heterogeneity=0.3,
    )

    # Run 1: agents map the pristine network, but at step 40 a tenth of
    # the nodes lose 30% of their radio range and some links vanish.
    topology = generate_mapping_network(seed, network_config)
    edges_before = topology.edge_count
    config = MappingWorldConfig(
        agent_kind="conscientious",
        population=8,
        stigmergic=True,
        max_steps=20_000,
        degrade_at=40,
        degrade_fraction=0.1,
        degrade_amount=0.3,
    )
    result = MappingWorld(topology, config, seed).run()
    print(
        f"degraded mid-run: {edges_before} -> {topology.edge_count} links; "
        f"perfect map of the changed network after {result.finishing_time} steps"
    )

    # Run 2: the same team on the already-degraded network from scratch.
    fresh = generate_mapping_network(seed, network_config)
    world = MappingWorld(
        fresh,
        MappingWorldConfig(
            agent_kind="conscientious",
            population=8,
            stigmergic=True,
            max_steps=20_000,
            degrade_at=1,
            degrade_fraction=0.1,
            degrade_amount=0.3,
        ),
        seed,
    )
    fresh_result = world.run()
    print(
        f"fresh team on degraded network: finished after "
        f"{fresh_result.finishing_time} steps"
    )
    print(
        "the mid-run team pays for re-checking links it believed it knew; "
        "firing agents again after degradation is the paper's remedy."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)
