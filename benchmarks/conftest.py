"""Benchmark fixtures.

Each benchmark regenerates one paper figure at a reduced scale (QUICK)
so the whole suite finishes in a couple of minutes; the printed report
shows the same rows/series the paper's figure plots.  Paper-scale
numbers come from ``python -m repro run <id> --paper-scale`` and are
recorded in EXPERIMENTS.md.

Every experiment benchmark runs exactly once (``pedantic`` with one
round): these are macro-benchmarks of whole simulation campaigns, where
statistical repetition comes from the 40-seed averaging inside the
experiment, not from re-running the wall-clock measurement.
"""

from __future__ import annotations

import pytest

from repro.experiments import QUICK, get_experiment
from repro.experiments.runner import clear_topology_cache

#: Master seed for every benchmark run (distinct from the test suite's).
BENCH_SEED = 1199


@pytest.fixture(scope="session", autouse=True)
def warm_topology_cache():
    """Pre-generate the shared QUICK mapping networks once.

    Mapping benchmarks share per-run networks through the runner cache;
    warming it keeps generation cost out of the first benchmark's time.
    """
    clear_topology_cache()
    get_experiment("fig1").run(QUICK, master_seed=BENCH_SEED)
    yield


@pytest.fixture
def run_experiment():
    """Run one registered experiment at QUICK scale and print its report."""

    def runner(benchmark, experiment_id):
        experiment = get_experiment(experiment_id)
        report = benchmark.pedantic(
            lambda: experiment.run(QUICK, master_seed=BENCH_SEED),
            rounds=1,
            iterations=1,
        )
        print()
        print(report.render(plots=False))
        return report

    return runner
