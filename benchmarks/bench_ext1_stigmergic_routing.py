"""Extension: stigmergic footprints in dynamic routing (paper future work).

Regenerates the figure at QUICK scale and reports wall time.
Expected shape: stigmergy should not hurt, and typically helps, routing connectivity.
"""



def test_ext1(benchmark, run_experiment):
    report = run_experiment(benchmark, "ext1")
    assert report.rows
