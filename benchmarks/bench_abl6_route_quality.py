"""Ablation: route quality (stretch / coverage / gateway balance).

Regenerates the experiment at QUICK scale and reports wall time.
Expected shape: oldest-node variants cover more tables than ants, whose
routes cluster near (and balance worse across) the gateways.
"""


def test_abl6(benchmark, run_experiment):
    report = run_experiment(benchmark, "abl6")
    assert report.rows
