"""Figure 7: connectivity over time for an oldest-node team.

Regenerates the figure at QUICK scale and reports wall time.
Expected shape: connectivity rises from ~0 and fluctuates around a steady mean.
"""



def test_fig7(benchmark, run_experiment):
    report = run_experiment(benchmark, "fig7")
    assert report.rows
