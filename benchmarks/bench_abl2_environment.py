"""Ablation: Minar's symmetric radios vs the paper's directed environment.

Regenerates the figure at QUICK scale and reports wall time.
Expected shape: Minar's orderings hold in both environments.
"""



def test_abl2(benchmark, run_experiment):
    report = run_experiment(benchmark, "abl2")
    assert report.rows
