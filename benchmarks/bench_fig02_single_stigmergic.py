"""Figure 2: single stigmergic agent, random vs conscientious.

Regenerates the figure at QUICK scale and reports wall time.
Expected shape: stigmergic random beats plain random; see EXPERIMENTS.md for the conscientious caveat.
"""



def test_fig2(benchmark, run_experiment):
    report = run_experiment(benchmark, "fig2")
    assert report.rows
