"""Ablation: headline orderings across independently generated networks.

Regenerates the experiment at QUICK scale and reports wall time.
Expected shape (paper scale): stigmergic super wins on most generated
networks.  At this benchmark's tiny QUICK scale the conscientious
stigmergy gain is known not to manifest (it needs ~80+ node networks);
the bench only checks the experiment runs.
"""


def test_abl5(benchmark, run_experiment):
    report = run_experiment(benchmark, "abl5")
    assert report.rows
