"""Ablation: Minar's epsilon-randomness vs stigmergy for crowded super agents.

Regenerates the experiment at QUICK scale and reports wall time.
Expected shape: epsilon closes the super-vs-conscientious gap; stigmergy matches or beats it.
"""


def test_abl3(benchmark, run_experiment):
    report = run_experiment(benchmark, "abl3")
    assert report.rows
