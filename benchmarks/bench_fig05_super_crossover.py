"""Figure 5: conscientious vs super-conscientious across populations (Minar).

Regenerates the figure at QUICK scale and reports wall time.
Expected shape: super's relative performance degrades as the population grows.
"""



def test_fig5(benchmark, run_experiment):
    report = run_experiment(benchmark, "fig5")
    assert report.rows
