"""Figure 1: single Minar agent, random vs conscientious.

Regenerates the figure at QUICK scale and reports wall time.
Expected shape: conscientious finishes several times faster than random.
"""



def test_fig1(benchmark, run_experiment):
    report = run_experiment(benchmark, "fig1")
    assert report.rows
