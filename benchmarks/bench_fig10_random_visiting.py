"""Figure 10: visiting (best-route exchange) for random agents.

Regenerates the figure at QUICK scale and reports wall time.
Expected shape: visiting helps random agents.
"""



def test_fig10(benchmark, run_experiment):
    report = run_experiment(benchmark, "fig10")
    assert report.rows
