"""Ablation: per-decision overhead accounting, plain vs stigmergic.

Regenerates the experiment at QUICK scale and reports wall time.
Expected shape: stigmergy adds ~2 O(1) board operations per decision.
"""


def test_abl4(benchmark, run_experiment):
    report = run_experiment(benchmark, "abl4")
    assert report.rows
