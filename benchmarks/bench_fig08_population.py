"""Figure 8: connectivity vs agent population.

Regenerates the figure at QUICK scale and reports wall time.
Expected shape: more agents give higher, steadier connectivity; oldest-node beats random.
"""



def test_fig8(benchmark, run_experiment):
    report = run_experiment(benchmark, "fig8")
    assert report.rows
