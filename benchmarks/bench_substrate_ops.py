"""Micro-benchmarks of the hot substrate operations.

These are the per-step costs every experiment pays: topology
recomputation under mobility, the connectivity walk, knowledge merging
in meetings, and footprint filtering.  Useful for catching performance
regressions that would silently stretch paper-scale runs from minutes
to hours.
"""

import random

from repro.core.knowledge import TopologyKnowledge
from repro.core.stigmergy import StigmergyField
from repro.net.generator import GeneratorConfig, NetworkGenerator
from repro.routing.connectivity import connectivity_fraction
from repro.routing.table import RouteEntry, TableBank
from repro.routing.world import RoutingWorld, RoutingWorldConfig

MANET_250 = GeneratorConfig(
    node_count=250,
    target_edges=None,
    range_heterogeneity=0.25,
    require_strong_connectivity=False,
    gateway_count=12,
    mobile_fraction=0.5,
)


def test_topology_recompute_250_nodes(benchmark):
    topology = NetworkGenerator(MANET_250, 1).generate_manet()

    def advance_and_recompute():
        topology.advance()
        return topology.edge_count

    edges = benchmark(advance_and_recompute)
    assert edges > 0


def test_connectivity_metric_250_nodes(benchmark):
    # Run a short world first so the tables hold realistic routes.
    topology = NetworkGenerator(MANET_250, 2).generate_manet()
    config = RoutingWorldConfig(population=60, total_steps=40, converged_after=20)
    world = RoutingWorld(topology, config, seed=3)
    world.run()
    fraction = benchmark(connectivity_fraction, world.topology, world.tables)
    assert 0.0 <= fraction <= 1.0


def test_knowledge_merge_2000_edges(benchmark):
    rng = random.Random(4)
    source = TopologyKnowledge()
    for node in range(300):
        source.observe_node(node, [rng.randrange(300) for __ in range(7)], node)
    edges = source.shareable_edges()
    visits = source.shareable_visits()

    def merge():
        sink = TopologyKnowledge()
        sink.absorb(edges, visits)
        return sink.known_edge_count

    count = benchmark(merge)
    assert count == len(edges)


def test_footprint_filter_under_load(benchmark):
    field = StigmergyField(capacity=16, freshness=10)
    rng = random.Random(5)
    for agent in range(40):
        field.stamp(0, agent, rng.randrange(10), rng.randrange(10))
    candidates = list(range(10))

    result = benchmark(field.filter_candidates, 0, candidates, 10)
    assert result


def test_routing_world_step_cost(benchmark):
    topology = NetworkGenerator(MANET_250, 6).generate_manet()
    config = RoutingWorldConfig(population=100, total_steps=10_000, converged_after=0)
    world = RoutingWorld(topology, config, seed=7)

    def one_step():
        world.engine.step()
        return world.result.connectivity[-1]

    value = benchmark(one_step)
    assert 0.0 <= value <= 1.0


def test_table_install_and_expire(benchmark):
    bank = TableBank(250, ttl=150)
    rng = random.Random(8)

    def churn():
        now = rng.randrange(1000)
        node = rng.randrange(250)
        bank.table(node).install(
            RouteEntry(
                gateway=rng.randrange(12),
                next_hop=rng.randrange(250),
                hops=rng.randrange(1, 10),
                installed_at=now,
                gateway_seen_at=now,
            )
        )
        return bank.table(node).expire(now)

    benchmark(churn)
