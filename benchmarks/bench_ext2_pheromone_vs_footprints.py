"""Extension: attractive ant pheromone vs repulsive footprints.

Regenerates the experiment at QUICK scale and reports wall time.
Expected shape: dispersal (footprints) beats attraction (pheromone) on network-wide connectivity.
"""


def test_ext2(benchmark, run_experiment):
    report = run_experiment(benchmark, "ext2")
    assert report.rows
