"""Ablation: footprint freshness window for stigmergic mapping teams.

Regenerates the figure at QUICK scale and reports wall time.
Expected shape: short windows disperse teams; permanent marks wall off the frontier.
"""



def test_abl1(benchmark, run_experiment):
    report = run_experiment(benchmark, "abl1")
    assert report.rows
