"""Figure 9: connectivity vs history size.

Regenerates the figure at QUICK scale and reports wall time.
Expected shape: larger histories give higher connectivity.
"""



def test_fig9(benchmark, run_experiment):
    report = run_experiment(benchmark, "fig9")
    assert report.rows
