"""Figure 4: knowledge over time for a team of stigmergic conscientious agents.

Regenerates the figure at QUICK scale and reports wall time.
Expected shape: roughly 10% faster than the fig3 team.
"""



def test_fig4(benchmark, run_experiment):
    report = run_experiment(benchmark, "fig4")
    assert report.rows
