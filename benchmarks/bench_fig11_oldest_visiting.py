"""Figure 11: visiting for oldest-node agents.

Regenerates the figure at QUICK scale and reports wall time.
Expected shape: visiting hurts oldest-node agents (identical histories cause chasing).
"""



def test_fig11(benchmark, run_experiment):
    report = run_experiment(benchmark, "fig11")
    assert report.rows
