"""Figure 3: knowledge over time for a team of Minar conscientious agents.

Regenerates the figure at QUICK scale and reports wall time.
Expected shape: the team finishes an order of magnitude faster than a single agent.
"""



def test_fig3(benchmark, run_experiment):
    report = run_experiment(benchmark, "fig3")
    assert report.rows
