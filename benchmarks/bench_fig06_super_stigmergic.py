"""Figure 6: conscientious vs super-conscientious across populations (stigmergic).

Regenerates the figure at QUICK scale and reports wall time.
Expected shape: stigmergic super-conscientious wins or ties at every population.
"""



def test_fig6(benchmark, run_experiment):
    report = run_experiment(benchmark, "fig6")
    assert report.rows
