"""Wiring a :class:`FaultPlan` into a running world.

The injector is deliberately world-agnostic: it talks to a *world
protocol* — ``topology``, ``engine``, ``agents``, an optional
``tables`` (routing), optional ``field``/``pheromone`` substrates, and
an optional ``fault_topology_changed()`` callback — so the same code
degrades both scenarios.  Every action goes through
``TimeStepEngine.schedule_at``, which means faults fire inside the
deterministic event calendar: a faulted run is bit-identical whether it
executes serially or inside a ``multiprocessing`` worker.

Graceful-degradation semantics on a node crash:

* the node's radio is silenced and it drops out of
  :meth:`Topology.recompute` (no out- or in-links),
* routes through or toward it are invalidated bank-wide,
* its stigmergy footprints and pheromone trails are cleared,
* co-located agents die, respawn fresh on a random live node, or
  freeze in place, per the plan's ``agent_policy``.

Every applied action fires the ``fault_injected`` hook
(``time=, kind=, target=, applied=``) so metric collectors observe the
churn without the injector knowing who is listening.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Set, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.faults.plan import FaultEvent, FaultPlan
from repro.types import AgentId, NodeId, Time

__all__ = ["FaultInjector"]


class FaultInjector:
    """Applies one fault plan to one world, deterministically."""

    def __init__(self, world: Any, plan: FaultPlan, rng: random.Random) -> None:
        self.world = world
        self.plan = plan
        self._rng = rng
        self._dead: Set[AgentId] = set()
        self._corrupted: Set[AgentId] = set()
        self._installed = False

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------

    def install(self) -> None:
        """Schedule every plan event on the world's engine (idempotent)."""
        if self._installed:
            raise SimulationError("fault plan already installed")
        self._installed = True
        engine = self.world.engine
        for event in self.plan.events:
            engine.schedule_at(
                event.time,
                lambda event=event: self._apply(event),
                label=f"fault:{event.describe()}",
            )

    # ------------------------------------------------------------------
    # Agent liveness
    # ------------------------------------------------------------------

    def is_alive(self, agent_id: AgentId) -> bool:
        """Whether the agent has not been killed by a fault."""
        return agent_id not in self._dead

    def is_corrupted(self, agent_id: AgentId) -> bool:
        """Whether a ``corruptagent`` fault turned this agent adversarial."""
        return agent_id in self._corrupted

    def active_agents(self) -> List[Any]:
        """Agents that act this step: alive and not stranded on a dead node.

        With the ``freeze`` policy an agent may survive on a crashed
        node; it stays suspended (skipped here) until the node recovers.
        """
        down = self.world.topology.down_ids
        return [
            agent
            for agent in self.world.agents
            if agent.agent_id not in self._dead and agent.location not in down
        ]

    def alive_agents(self) -> List[Any]:
        """Every agent not killed by a fault (frozen ones included)."""
        return [a for a in self.world.agents if a.agent_id not in self._dead]

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        now = self.world.engine.clock.now
        kind = event.kind
        if kind == "crash":
            node = self._resolve_node(event)
            applied = self.world.topology.set_node_down(node)
            if applied:
                self._degrade_after_crash(node, now)
            target: Tuple[int, ...] = (node,)
        elif kind == "recover":
            node = self._resolve_node(event)
            applied = self.world.topology.set_node_up(node)
            if applied:
                self._notify_topology_changed()
            target = (node,)
        elif kind == "blackout":
            source, destination = event.target
            applied = self.world.topology.block_edge(source, destination)
            if applied:
                self._notify_topology_changed()
            target = event.target
        elif kind == "restore":
            source, destination = event.target
            applied = self.world.topology.unblock_edge(source, destination)
            if applied:
                self._notify_topology_changed()
            target = event.target
        elif kind == "shock":
            node = self._resolve_node(event)
            self.world.topology.node(node).battery.shock(event.amount)
            self.world.topology.invalidate()
            self._notify_topology_changed()
            applied = True
            target = (node,)
        elif kind == "kill":
            agent_id = event.target[0]
            applied = agent_id not in self._dead and any(
                agent.agent_id == agent_id for agent in self.world.agents
            )
            if applied:
                self._dead.add(agent_id)
            target = event.target
        elif kind == "wipe":
            node = self._resolve_node(event)
            tables = getattr(self.world, "tables", None)
            applied = tables is not None
            if tables is not None:
                tables.table(node).clear()
            target = (node,)
        elif kind == "corrupt":
            node = self._resolve_node(event)
            tables = getattr(self.world, "tables", None)
            applied = tables is not None
            if tables is not None:
                tables.table(node).corrupt(
                    self._rng, sorted(self.world.topology.node_ids)
                )
            target = (node,)
        elif kind == "lossburst":
            node = self._resolve_node(event)
            channel = getattr(self.world, "channel", None)
            applied = channel is not None and channel.set_burst(node, event.amount)
            target = (node,)
        elif kind == "lossclear":
            node = self._resolve_node(event)
            channel = getattr(self.world, "channel", None)
            applied = channel is not None and channel.clear_burst(node)
            target = (node,)
        elif kind == "grayfail":
            node = self._resolve_node(event)
            channel = getattr(self.world, "channel", None)
            applied = channel is not None and channel.set_grayfail(
                node, event.amount
            )
            target = (node,)
        elif kind == "grayclear":
            node = self._resolve_node(event)
            channel = getattr(self.world, "channel", None)
            applied = channel is not None and channel.clear_grayfail(node)
            target = (node,)
        elif kind == "corruptagent":
            agent_id = event.target[0]
            applied = agent_id not in self._corrupted and any(
                agent.agent_id == agent_id for agent in self.world.agents
            )
            if applied:
                self._corrupted.add(agent_id)
            target = event.target
        elif kind == "flap":
            applied = self._apply_flap(event, now)
            target = event.target
        else:  # pragma: no cover - FaultEvent validates kinds
            raise ConfigurationError(f"unknown fault kind {kind!r}")
        self.world.engine.hooks.fire(
            "fault_injected", time=now, kind=kind, target=target, applied=applied
        )

    def _apply_flap(self, event: FaultEvent, now: Time) -> bool:
        """Start a flap: first down-toggle now, the rest on the calendar.

        ``schedule_at`` only accepts strictly-future times, so the
        opening down-toggle applies inline; every later toggle lands on
        the engine's event calendar and therefore stays bit-identical
        between serial and pooled runs.  The target always settles up
        after the final cycle.
        """
        period = event.period
        down_steps = max(1, min(period - 1, int(round(event.amount * period))))
        applied = self._flap_toggle(event, down=True)
        engine = self.world.engine
        label = f"fault:{event.describe()}"
        for cycle in range(event.cycles):
            down_at = event.time + cycle * period
            if cycle > 0:
                engine.schedule_at(
                    down_at,
                    lambda event=event: self._flap_fire(event, down=True),
                    label=label,
                )
            engine.schedule_at(
                down_at + down_steps,
                lambda event=event: self._flap_fire(event, down=False),
                label=label,
            )
        return applied

    def _flap_fire(self, event: FaultEvent, down: bool) -> None:
        """One scheduled flap toggle, with its own hook firing."""
        now = self.world.engine.clock.now
        applied = self._flap_toggle(event, down=down)
        self.world.engine.hooks.fire(
            "fault_injected",
            time=now,
            kind="flap",
            target=event.target,
            applied=applied,
        )

    def _flap_toggle(self, event: FaultEvent, down: bool) -> bool:
        """Apply one up/down transition of a flapping node or link."""
        topology = self.world.topology
        if len(event.target) == 2:
            source, destination = event.target
            if down:
                applied = topology.block_edge(source, destination)
            else:
                applied = topology.unblock_edge(source, destination)
            if applied:
                self._notify_topology_changed()
            return applied
        node = self._resolve_node(event)
        if down:
            applied = topology.set_node_down(node)
            if applied:
                self._degrade_after_crash(node, self.world.engine.clock.now)
        else:
            applied = topology.set_node_up(node)
            if applied:
                self._notify_topology_changed()
        return applied

    def _resolve_node(self, event: FaultEvent) -> NodeId:
        """Translate the event's target into a concrete node id."""
        if not event.gateway_relative:
            return event.target[0]
        gateways = self.world.topology.all_gateway_ids
        index = event.target[0]
        if index >= len(gateways):
            raise ConfigurationError(
                f"fault targets gateway #{index} but the network has "
                f"only {len(gateways)} gateway(s)"
            )
        return gateways[index]

    def _degrade_after_crash(self, node: NodeId, now: Time) -> None:
        """Graceful degradation: scrub every substrate the node touched."""
        world = self.world
        tables = getattr(world, "tables", None)
        if tables is not None:
            tables.invalidate_node(node)
        field = getattr(world, "field", None)
        if field is not None:
            field.clear_board(node)
        pheromone = getattr(world, "pheromone", None)
        if pheromone is not None:
            pheromone.clear_node(node)
        self._apply_agent_policy(node, now)
        self._notify_topology_changed()

    def _apply_agent_policy(self, node: NodeId, now: Time) -> None:
        policy = self.plan.agent_policy
        if policy == "freeze":
            return
        stranded = [
            agent
            for agent in self.world.agents
            if agent.location == node and agent.agent_id not in self._dead
        ]
        if not stranded:
            return
        if policy == "die":
            self._dead.update(agent.agent_id for agent in stranded)
            return
        # respawn: restart each stranded agent fresh on a random live node.
        down = self.world.topology.down_ids
        havens = [n for n in self.world.topology.node_ids if n not in down]
        if not havens:
            self._dead.update(agent.agent_id for agent in stranded)
            return
        live_gateways = set(self.world.topology.gateway_ids)
        for agent in stranded:
            start = self._rng.choice(havens)
            agent.reset_for_respawn(start, now)
            # A routing agent landing on a live gateway seeds a zero-hop
            # track immediately, exactly like initial placement does.
            if hasattr(agent, "tracks") and start in live_gateways:
                agent.stay(now, here_is_gateway=True)

    def _notify_topology_changed(self) -> None:
        handler = getattr(self.world, "fault_topology_changed", None)
        if handler is not None:
            handler()

    def resilience_counts(self) -> Tuple[int, int]:
        """``(total, alive)`` agent counts for the resilience report."""
        total = len(self.world.agents)
        return total, total - len(self._dead)

    def describe(self) -> Optional[str]:
        """The installed plan's spec form (debugging aid)."""
        return self.plan.describe() if self.plan else None
