"""Fault plans: immutable, seeded schedules of failure events.

A :class:`FaultPlan` is data, not behaviour: a tuple of
:class:`FaultEvent` rows plus an agent-respawn policy.  Keeping it a
frozen, hashable value type means it can ride inside the (also frozen)
world configs, pickle across ``multiprocessing`` workers unchanged, and
key caches — which is what makes fault runs bit-identical between
serial and parallel sweeps.

Plans come from three places:

* the builder API — ``FaultPlan().crash(50, 3).recover(80, 3)``,
* the compact spec DSL — ``parse_fault_plan("crash@50:3;recover@80:3")``
  (what the CLI's ``--faults`` flag accepts),
* the churn generator — :meth:`FaultPlan.random_churn`, which derives a
  reproducible crash/recover schedule from a master seed via
  :func:`repro.rng.derive_seed`.

Spec grammar (events separated by ``;``)::

    kind@time:target[:amount]

    crash@50:3        node 3 crashes at step 50
    crash@50:gw0      the first gateway crashes (gateway outage)
    recover@80:3      node 3 (or gw0) comes back
    blackout@40:2-7   directed link 2->7 goes dark
    restore@60:2-7    the link comes back
    shock@30:5:0.5    node 5 instantly loses 50% of its battery
    kill@25:a3        agent 3 is killed
    wipe@90:4         node 4's routing table is wiped
    corrupt@90:4      node 4's next hops are scrambled
    lossburst@30:5:0.6  node 5's outgoing transfers gain 60% extra loss
    lossclear@60:5    the loss burst on node 5 lifts
    grayfail@30:5:0.9   node 5 gray-fails: stays up but silently drops
                        90% of inbound transfers
    grayclear@60:5    the gray failure on node 5 heals
    flap@30:5:0.5:8:3   node 5 flaps: 3 up/down cycles of period 8
                        starting at step 30, down 50% of each cycle
    flap@30:2-7:0.5:8:3 the directed link 2->7 flaps the same way
    corruptagent@25:a3  agent 3 turns adversarial: the routing
                        knowledge it writes from now on is forged

    policy=respawn    (anywhere in the spec) respawn policy for agents
                      whose node crashes: die | respawn | freeze
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Iterable, Optional, Tuple

from repro.errors import ConfigurationError
from repro.rng import derive_seed
from repro.types import Time

__all__ = [
    "FAULT_KINDS",
    "AGENT_POLICIES",
    "FaultEvent",
    "FaultPlan",
    "parse_fault_plan",
    "AdversarySpec",
    "parse_adversary_spec",
]

#: Every supported fault action.
FAULT_KINDS = frozenset(
    {
        "crash",
        "recover",
        "blackout",
        "restore",
        "shock",
        "kill",
        "wipe",
        "corrupt",
        "lossburst",
        "lossclear",
        "grayfail",
        "grayclear",
        "flap",
        "corruptagent",
    }
)

#: What happens to agents standing on a node when it crashes:
#: ``die`` — gone for the rest of the run; ``respawn`` — restart fresh
#: on a random live node; ``freeze`` — survive in place, suspended until
#: the node recovers.
AGENT_POLICIES = ("die", "respawn", "freeze")

#: Kinds whose target is a single node id (or ``gwK``).
_NODE_KINDS = frozenset(
    {
        "crash",
        "recover",
        "shock",
        "wipe",
        "corrupt",
        "lossburst",
        "lossclear",
        "grayfail",
        "grayclear",
    }
)
#: Kinds that carry a ``(0, 1]`` amount in their spec form.
_AMOUNT_KINDS = frozenset({"shock", "lossburst", "grayfail"})
#: Kinds whose target is a directed edge ``u-v``.
_EDGE_KINDS = frozenset({"blackout", "restore"})
#: Kinds whose target is an agent id ``aN``.
_AGENT_KINDS = frozenset({"kill", "corruptagent"})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled failure: what happens, when, and to whom.

    ``target`` is a tuple of ids — one node id for node faults, an
    ``(source, destination)`` pair for link faults, one agent id for
    kills and agent corruption.  ``gateway_relative`` flips the node id
    to an index into the topology's gateway list, resolved at injection
    time, so a plan can say "the first gateway" without knowing the
    generated network.

    ``flap`` events additionally carry a duty cycle: ``amount`` is the
    fraction of each ``period``-step cycle spent down, and ``cycles``
    is how many up/down oscillations run before the target settles up.
    """

    time: Time
    kind: str
    target: Tuple[int, ...]
    amount: float = 0.0
    gateway_relative: bool = False
    period: int = 0
    cycles: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {sorted(FAULT_KINDS)}"
            )
        if self.time < 1:
            raise ConfigurationError(
                f"fault time must be >= 1 (the engine schedules ahead), got {self.time}"
            )
        if self.kind == "flap":
            if len(self.target) not in (1, 2):
                raise ConfigurationError(
                    f"flap takes a node or a 'u-v' edge target, got {self.target!r}"
                )
            if not 0.0 < self.amount <= 1.0:
                raise ConfigurationError(
                    f"flap duty must be in (0, 1], got {self.amount}"
                )
            if self.period < 2:
                raise ConfigurationError(
                    f"flap period must be >= 2 steps, got {self.period}"
                )
            if self.cycles < 1:
                raise ConfigurationError(
                    f"flap cycles must be >= 1, got {self.cycles}"
                )
        else:
            if self.period or self.cycles:
                raise ConfigurationError(
                    f"period/cycles only apply to flap, not {self.kind!r}"
                )
            expected = 2 if self.kind in _EDGE_KINDS else 1
            if len(self.target) != expected:
                raise ConfigurationError(
                    f"{self.kind} takes {expected} target id(s), got {self.target!r}"
                )
        if any(t < 0 for t in self.target):
            raise ConfigurationError(f"target ids must be >= 0, got {self.target!r}")
        if self.gateway_relative and not (
            self.kind in _NODE_KINDS
            or (self.kind == "flap" and len(self.target) == 1)
        ):
            raise ConfigurationError(
                f"gateway-relative targets only apply to node faults, not {self.kind!r}"
            )
        if self.kind in _AMOUNT_KINDS and not 0.0 < self.amount <= 1.0:
            raise ConfigurationError(
                f"{self.kind} amount must be in (0, 1], got {self.amount}"
            )

    def describe(self) -> str:
        """Compact human-readable form (mirrors the spec DSL)."""
        if len(self.target) == 2:
            target = f"{self.target[0]}-{self.target[1]}"
        elif self.kind in _AGENT_KINDS:
            target = f"a{self.target[0]}"
        elif self.gateway_relative:
            target = f"gw{self.target[0]}"
        else:
            target = str(self.target[0])
        if self.kind == "flap":
            suffix = f":{self.amount:g}:{self.period}:{self.cycles}"
        elif self.kind in _AMOUNT_KINDS:
            suffix = f":{self.amount:g}"
        else:
            suffix = ""
        return f"{self.kind}@{self.time}:{target}{suffix}"


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of fault events plus degradation policy."""

    events: Tuple[FaultEvent, ...] = ()
    agent_policy: str = "die"

    def __post_init__(self) -> None:
        if self.agent_policy not in AGENT_POLICIES:
            raise ConfigurationError(
                f"agent_policy must be one of {AGENT_POLICIES}, got {self.agent_policy!r}"
            )
        ordered = tuple(sorted(self.events, key=lambda e: e.time))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def last_fault_time(self) -> Optional[Time]:
        """Time of the final scheduled fault (``None`` for an empty plan)."""
        return self.events[-1].time if self.events else None

    @property
    def first_fault_time(self) -> Optional[Time]:
        """Time of the earliest scheduled fault (``None`` when empty)."""
        return self.events[0].time if self.events else None

    # -- builder API ----------------------------------------------------

    def adding(self, *events: FaultEvent) -> "FaultPlan":
        """A new plan with ``events`` merged in (time-sorted)."""
        return replace(self, events=self.events + tuple(events))

    def with_policy(self, agent_policy: str) -> "FaultPlan":
        """A new plan with a different agent-respawn policy."""
        return replace(self, agent_policy=agent_policy)

    def crash(self, time: Time, node: int, gateway: bool = False) -> "FaultPlan":
        """Schedule a node (or ``gateway``-indexed) crash."""
        return self.adding(
            FaultEvent(time, "crash", (node,), gateway_relative=gateway)
        )

    def recover(self, time: Time, node: int, gateway: bool = False) -> "FaultPlan":
        """Schedule a crashed node's recovery."""
        return self.adding(
            FaultEvent(time, "recover", (node,), gateway_relative=gateway)
        )

    def gateway_outage(self, start: Time, end: Time, index: int = 0) -> "FaultPlan":
        """Crash the ``index``-th gateway at ``start``, recover at ``end``."""
        if end <= start:
            raise ConfigurationError(
                f"outage must end after it starts, got {start}..{end}"
            )
        return self.crash(start, index, gateway=True).recover(end, index, gateway=True)

    def blackout(self, time: Time, source: int, destination: int) -> "FaultPlan":
        """Schedule a directed-link blackout."""
        return self.adding(FaultEvent(time, "blackout", (source, destination)))

    def restore(self, time: Time, source: int, destination: int) -> "FaultPlan":
        """Schedule a blacked-out link's restoration."""
        return self.adding(FaultEvent(time, "restore", (source, destination)))

    def link_flap(
        self, source: int, destination: int, times: Iterable[Time], downtime: int = 1
    ) -> "FaultPlan":
        """Blackout/restore the link at each of ``times`` (a flapping link)."""
        if downtime < 1:
            raise ConfigurationError(f"downtime must be >= 1, got {downtime}")
        plan = self
        for time in times:
            plan = plan.blackout(time, source, destination).restore(
                time + downtime, source, destination
            )
        return plan

    def battery_shock(self, time: Time, node: int, amount: float) -> "FaultPlan":
        """Instantly drain ``amount`` (fraction of full) from a battery."""
        return self.adding(FaultEvent(time, "shock", (node,), amount=amount))

    def kill_agent(self, time: Time, agent: int) -> "FaultPlan":
        """Kill one agent outright."""
        return self.adding(FaultEvent(time, "kill", (agent,)))

    def wipe_table(self, time: Time, node: int) -> "FaultPlan":
        """Wipe a node's routing table."""
        return self.adding(FaultEvent(time, "wipe", (node,)))

    def corrupt_table(self, time: Time, node: int) -> "FaultPlan":
        """Scramble a node's routing-table next hops."""
        return self.adding(FaultEvent(time, "corrupt", (node,)))

    def loss_burst(
        self, time: Time, node: int, amount: float, gateway: bool = False
    ) -> "FaultPlan":
        """Make every transfer out of a node extra-lossy (fraction lost)."""
        return self.adding(
            FaultEvent(
                time, "lossburst", (node,), amount=amount, gateway_relative=gateway
            )
        )

    def loss_clear(self, time: Time, node: int, gateway: bool = False) -> "FaultPlan":
        """Lift a node's loss burst."""
        return self.adding(
            FaultEvent(time, "lossclear", (node,), gateway_relative=gateway)
        )

    def gray_failure(
        self, time: Time, node: int, rate: float, gateway: bool = False
    ) -> "FaultPlan":
        """Make a node silently drop inbound transfers at ``rate``."""
        return self.adding(
            FaultEvent(
                time, "grayfail", (node,), amount=rate, gateway_relative=gateway
            )
        )

    def gray_clear(self, time: Time, node: int, gateway: bool = False) -> "FaultPlan":
        """Heal a node's gray failure."""
        return self.adding(
            FaultEvent(time, "grayclear", (node,), gateway_relative=gateway)
        )

    def flap_node(
        self, time: Time, node: int, *, duty: float = 0.5, period: int = 8,
        cycles: int = 3, gateway: bool = False,
    ) -> "FaultPlan":
        """Oscillate a node up/down on a duty cycle, settling up."""
        return self.adding(
            FaultEvent(
                time, "flap", (node,), amount=duty, period=period,
                cycles=cycles, gateway_relative=gateway,
            )
        )

    def flap_edge(
        self, time: Time, source: int, destination: int, *,
        duty: float = 0.5, period: int = 8, cycles: int = 3,
    ) -> "FaultPlan":
        """Oscillate a directed link up/down on a duty cycle."""
        return self.adding(
            FaultEvent(
                time, "flap", (source, destination), amount=duty,
                period=period, cycles=cycles,
            )
        )

    def corrupt_agent(self, time: Time, agent: int) -> "FaultPlan":
        """Turn one agent adversarial: its table writes are forged."""
        return self.adding(FaultEvent(time, "corruptagent", (agent,)))

    # -- random churn ----------------------------------------------------

    @classmethod
    def random_churn(
        cls,
        master_seed: int,
        *,
        node_count: int,
        start: Time,
        end: Time,
        crashes: int,
        min_downtime: int = 10,
        max_downtime: int = 40,
        exclude: Tuple[int, ...] = (),
        agent_policy: str = "die",
        name: str = "churn",
    ) -> "FaultPlan":
        """A reproducible crash/recover schedule drawn from a seed.

        Picks ``crashes`` distinct victims (ids below ``node_count``,
        minus ``exclude``), each crashing at a uniform time in
        ``[start, end)`` and recovering after a uniform downtime in
        ``[min_downtime, max_downtime]``.  The stream is derived from
        ``(master_seed, name)`` via :func:`repro.rng.derive_seed`, so
        the same seed always yields the same churn and two differently
        named plans never share a stream.
        """
        if not 1 <= start < end:
            raise ConfigurationError(
                f"churn window must satisfy 1 <= start < end, got {start}..{end}"
            )
        if not 1 <= min_downtime <= max_downtime:
            raise ConfigurationError(
                f"downtime bounds must satisfy 1 <= min <= max, "
                f"got {min_downtime}..{max_downtime}"
            )
        candidates = [n for n in range(node_count) if n not in set(exclude)]
        if crashes > len(candidates):
            raise ConfigurationError(
                f"cannot crash {crashes} distinct nodes out of {len(candidates)}"
            )
        rng = random.Random(derive_seed(master_seed, f"faults:{name}"))
        victims = rng.sample(candidates, crashes)
        events = []
        for victim in victims:
            crash_at = rng.randrange(start, end)
            downtime = rng.randint(min_downtime, max_downtime)
            events.append(FaultEvent(crash_at, "crash", (victim,)))
            events.append(FaultEvent(crash_at + downtime, "recover", (victim,)))
        return cls(events=tuple(events), agent_policy=agent_policy)

    @classmethod
    def random_adversary(
        cls,
        master_seed: int,
        *,
        node_count: int,
        gray_fraction: float = 0.0,
        gray_rate: float = 0.9,
        corrupt_agents: int = 0,
        population: int = 0,
        flap_nodes: int = 0,
        start: Time = 10,
        period: int = 8,
        cycles: int = 3,
        duty: float = 0.5,
        exclude: Tuple[int, ...] = (),
        agent_policy: str = "freeze",
        name: str = "adversary",
    ) -> "FaultPlan":
        """A reproducible adversary schedule drawn from a seed.

        At step ``start``, ``round(gray_fraction * len(candidates))``
        distinct non-excluded nodes gray-fail at ``gray_rate`` for the
        rest of the run, ``corrupt_agents`` distinct agents (ids below
        ``population``) turn adversarial, and ``flap_nodes`` further
        distinct nodes begin flapping on a ``duty``/``period`` cycle.
        The stream is derived from ``(master_seed, name)`` exactly like
        :meth:`random_churn`, so the same seed always builds the same
        adversary and defended/undefended variants face identical
        attacks.
        """
        if not 0.0 <= gray_fraction <= 1.0:
            raise ConfigurationError(
                f"gray_fraction must be in [0, 1], got {gray_fraction}"
            )
        if corrupt_agents < 0 or corrupt_agents > population:
            raise ConfigurationError(
                f"cannot corrupt {corrupt_agents} agents out of {population}"
            )
        candidates = [n for n in range(node_count) if n not in set(exclude)]
        gray_count = int(round(gray_fraction * len(candidates)))
        if gray_count + flap_nodes > len(candidates):
            raise ConfigurationError(
                f"adversary needs {gray_count + flap_nodes} distinct victims "
                f"but only {len(candidates)} nodes are eligible"
            )
        rng = random.Random(derive_seed(master_seed, f"faults:{name}"))
        victims = rng.sample(candidates, gray_count + flap_nodes)
        events = []
        for victim in victims[:gray_count]:
            events.append(
                FaultEvent(start, "grayfail", (victim,), amount=gray_rate)
            )
        for victim in victims[gray_count:]:
            events.append(
                FaultEvent(
                    start, "flap", (victim,), amount=duty,
                    period=period, cycles=cycles,
                )
            )
        if corrupt_agents:
            for agent_id in rng.sample(range(population), corrupt_agents):
                events.append(FaultEvent(start, "corruptagent", (agent_id,)))
        return cls(events=tuple(events), agent_policy=agent_policy)

    def describe(self) -> str:
        """The plan in spec-DSL form (parseable back with one policy)."""
        parts = [f"policy={self.agent_policy}"]
        parts.extend(event.describe() for event in self.events)
        return ";".join(parts)


def _parse_target(kind: str, text: str) -> Tuple[Tuple[int, ...], bool]:
    """Decode a spec target: ``N``, ``gwK``, ``aN``, or ``U-V``."""
    if kind in _EDGE_KINDS or (kind == "flap" and "-" in text):
        pieces = text.split("-")
        if len(pieces) != 2:
            raise ConfigurationError(
                f"{kind} target must be 'source-destination', got {text!r}"
            )
        return (int(pieces[0]), int(pieces[1])), False
    if kind in _AGENT_KINDS:
        if not text.startswith("a"):
            raise ConfigurationError(
                f"{kind} target must be 'a<agent-id>', got {text!r}"
            )
        return (int(text[1:]),), False
    if text.startswith("gw"):
        return (int(text[2:]),), True
    return (int(text),), False


def parse_fault_plan(spec: str) -> FaultPlan:
    """Parse the compact ``--faults`` spec DSL into a :class:`FaultPlan`.

    See the module docstring for the grammar.  Raises
    :class:`~repro.errors.ConfigurationError` on any malformed segment.
    """
    events = []
    policy = "die"
    for raw_segment in spec.split(";"):
        segment = raw_segment.strip()
        if not segment:
            continue
        if segment.startswith("policy="):
            policy = segment[len("policy="):].strip()
            continue
        head, _, rest = segment.partition("@")
        kind = head.strip()
        if not rest:
            raise ConfigurationError(
                f"malformed fault {segment!r}; expected 'kind@time:target'"
            )
        pieces = rest.split(":")
        if len(pieces) < 2:
            raise ConfigurationError(
                f"malformed fault {segment!r}; expected 'kind@time:target'"
            )
        try:
            time = int(pieces[0])
            target, gateway_relative = _parse_target(kind, pieces[1])
            amount = float(pieces[2]) if len(pieces) > 2 else 0.0
            period = int(pieces[3]) if len(pieces) > 3 else 0
            cycles = int(pieces[4]) if len(pieces) > 4 else 0
        except ValueError as error:
            raise ConfigurationError(
                f"malformed fault {segment!r}: {error}"
            ) from None
        events.append(
            FaultEvent(
                time=time,
                kind=kind,
                target=target,
                amount=amount,
                gateway_relative=gateway_relative,
                period=period,
                cycles=cycles,
            )
        )
    return FaultPlan(events=tuple(events), agent_policy=policy)


@dataclass(frozen=True)
class AdversarySpec:
    """The CLI's ``--adversary`` knobs, as a frozen value type.

    Materialised into a concrete :class:`FaultPlan` per run via
    :meth:`FaultPlan.random_adversary` once the network dimensions are
    known — the spec itself stays network-agnostic so it can ride in
    run manifests and sweep checkpoints unchanged.
    """

    gray_fraction: float = 0.0
    gray_rate: float = 0.9
    corrupt_agents: int = 0
    flap_nodes: int = 0
    start: Time = 10

    def __post_init__(self) -> None:
        if not 0.0 <= self.gray_fraction <= 1.0:
            raise ConfigurationError(
                f"gray fraction must be in [0, 1], got {self.gray_fraction}"
            )
        if not 0.0 < self.gray_rate <= 1.0:
            raise ConfigurationError(
                f"gray rate must be in (0, 1], got {self.gray_rate}"
            )
        if self.corrupt_agents < 0:
            raise ConfigurationError(
                f"corrupt agent count must be >= 0, got {self.corrupt_agents}"
            )
        if self.flap_nodes < 0:
            raise ConfigurationError(
                f"flap node count must be >= 0, got {self.flap_nodes}"
            )
        if self.start < 1:
            raise ConfigurationError(
                f"adversary start must be >= 1, got {self.start}"
            )


def parse_adversary_spec(spec: str) -> AdversarySpec:
    """Parse the CLI's ``--adversary`` spec into an :class:`AdversarySpec`.

    A bare number is a gray-failure node fraction (``--adversary 0.2``);
    the long form is comma-separated ``key=value`` pairs::

        gray=0.2,rate=0.9,corrupt=2,flap=3,start=10

    Raises :class:`~repro.errors.ConfigurationError` on malformed input.
    """
    text = spec.strip()
    if not text:
        raise ConfigurationError("empty adversary spec")
    try:
        return AdversarySpec(gray_fraction=float(text))
    except ValueError:
        pass
    aliases = {
        "gray": ("gray_fraction", float),
        "fraction": ("gray_fraction", float),
        "rate": ("gray_rate", float),
        "corrupt": ("corrupt_agents", int),
        "flap": ("flap_nodes", int),
        "start": ("start", int),
    }
    kwargs = {}
    for raw_pair in text.split(","):
        pair = raw_pair.strip()
        if not pair:
            continue
        name, separator, value = pair.partition("=")
        if not separator:
            raise ConfigurationError(
                f"malformed adversary spec segment {pair!r}; expected 'key=value'"
            )
        entry = aliases.get(name.strip())
        if entry is None:
            raise ConfigurationError(
                f"unknown adversary spec key {name.strip()!r}; "
                f"expected one of {sorted(aliases)}"
            )
        target, cast = entry
        try:
            kwargs[target] = cast(value)
        except ValueError:
            raise ConfigurationError(
                f"malformed adversary spec value in {pair!r}"
            ) from None
    return AdversarySpec(**kwargs)
