"""Fault plans: immutable, seeded schedules of failure events.

A :class:`FaultPlan` is data, not behaviour: a tuple of
:class:`FaultEvent` rows plus an agent-respawn policy.  Keeping it a
frozen, hashable value type means it can ride inside the (also frozen)
world configs, pickle across ``multiprocessing`` workers unchanged, and
key caches — which is what makes fault runs bit-identical between
serial and parallel sweeps.

Plans come from three places:

* the builder API — ``FaultPlan().crash(50, 3).recover(80, 3)``,
* the compact spec DSL — ``parse_fault_plan("crash@50:3;recover@80:3")``
  (what the CLI's ``--faults`` flag accepts),
* the churn generator — :meth:`FaultPlan.random_churn`, which derives a
  reproducible crash/recover schedule from a master seed via
  :func:`repro.rng.derive_seed`.

Spec grammar (events separated by ``;``)::

    kind@time:target[:amount]

    crash@50:3        node 3 crashes at step 50
    crash@50:gw0      the first gateway crashes (gateway outage)
    recover@80:3      node 3 (or gw0) comes back
    blackout@40:2-7   directed link 2->7 goes dark
    restore@60:2-7    the link comes back
    shock@30:5:0.5    node 5 instantly loses 50% of its battery
    kill@25:a3        agent 3 is killed
    wipe@90:4         node 4's routing table is wiped
    corrupt@90:4      node 4's next hops are scrambled
    lossburst@30:5:0.6  node 5's outgoing transfers gain 60% extra loss
    lossclear@60:5    the loss burst on node 5 lifts

    policy=respawn    (anywhere in the spec) respawn policy for agents
                      whose node crashes: die | respawn | freeze
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Iterable, Optional, Tuple

from repro.errors import ConfigurationError
from repro.rng import derive_seed
from repro.types import Time

__all__ = [
    "FAULT_KINDS",
    "AGENT_POLICIES",
    "FaultEvent",
    "FaultPlan",
    "parse_fault_plan",
]

#: Every supported fault action.
FAULT_KINDS = frozenset(
    {
        "crash",
        "recover",
        "blackout",
        "restore",
        "shock",
        "kill",
        "wipe",
        "corrupt",
        "lossburst",
        "lossclear",
    }
)

#: What happens to agents standing on a node when it crashes:
#: ``die`` — gone for the rest of the run; ``respawn`` — restart fresh
#: on a random live node; ``freeze`` — survive in place, suspended until
#: the node recovers.
AGENT_POLICIES = ("die", "respawn", "freeze")

#: Kinds whose target is a single node id (or ``gwK``).
_NODE_KINDS = frozenset(
    {"crash", "recover", "shock", "wipe", "corrupt", "lossburst", "lossclear"}
)
#: Kinds that carry a ``(0, 1]`` amount in their spec form.
_AMOUNT_KINDS = frozenset({"shock", "lossburst"})
#: Kinds whose target is a directed edge ``u-v``.
_EDGE_KINDS = frozenset({"blackout", "restore"})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled failure: what happens, when, and to whom.

    ``target`` is a tuple of ids — one node id for node faults, an
    ``(source, destination)`` pair for link faults, one agent id for
    kills.  ``gateway_relative`` flips the node id to an index into the
    topology's gateway list, resolved at injection time, so a plan can
    say "the first gateway" without knowing the generated network.
    """

    time: Time
    kind: str
    target: Tuple[int, ...]
    amount: float = 0.0
    gateway_relative: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {sorted(FAULT_KINDS)}"
            )
        if self.time < 1:
            raise ConfigurationError(
                f"fault time must be >= 1 (the engine schedules ahead), got {self.time}"
            )
        expected = 2 if self.kind in _EDGE_KINDS else 1
        if len(self.target) != expected:
            raise ConfigurationError(
                f"{self.kind} takes {expected} target id(s), got {self.target!r}"
            )
        if any(t < 0 for t in self.target):
            raise ConfigurationError(f"target ids must be >= 0, got {self.target!r}")
        if self.gateway_relative and self.kind not in _NODE_KINDS:
            raise ConfigurationError(
                f"gateway-relative targets only apply to node faults, not {self.kind!r}"
            )
        if self.kind in _AMOUNT_KINDS and not 0.0 < self.amount <= 1.0:
            raise ConfigurationError(
                f"{self.kind} amount must be in (0, 1], got {self.amount}"
            )

    def describe(self) -> str:
        """Compact human-readable form (mirrors the spec DSL)."""
        if self.kind in _EDGE_KINDS:
            target = f"{self.target[0]}-{self.target[1]}"
        elif self.kind == "kill":
            target = f"a{self.target[0]}"
        elif self.gateway_relative:
            target = f"gw{self.target[0]}"
        else:
            target = str(self.target[0])
        suffix = f":{self.amount:g}" if self.kind in _AMOUNT_KINDS else ""
        return f"{self.kind}@{self.time}:{target}{suffix}"


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of fault events plus degradation policy."""

    events: Tuple[FaultEvent, ...] = ()
    agent_policy: str = "die"

    def __post_init__(self) -> None:
        if self.agent_policy not in AGENT_POLICIES:
            raise ConfigurationError(
                f"agent_policy must be one of {AGENT_POLICIES}, got {self.agent_policy!r}"
            )
        ordered = tuple(sorted(self.events, key=lambda e: e.time))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def last_fault_time(self) -> Optional[Time]:
        """Time of the final scheduled fault (``None`` for an empty plan)."""
        return self.events[-1].time if self.events else None

    @property
    def first_fault_time(self) -> Optional[Time]:
        """Time of the earliest scheduled fault (``None`` when empty)."""
        return self.events[0].time if self.events else None

    # -- builder API ----------------------------------------------------

    def adding(self, *events: FaultEvent) -> "FaultPlan":
        """A new plan with ``events`` merged in (time-sorted)."""
        return replace(self, events=self.events + tuple(events))

    def with_policy(self, agent_policy: str) -> "FaultPlan":
        """A new plan with a different agent-respawn policy."""
        return replace(self, agent_policy=agent_policy)

    def crash(self, time: Time, node: int, gateway: bool = False) -> "FaultPlan":
        """Schedule a node (or ``gateway``-indexed) crash."""
        return self.adding(
            FaultEvent(time, "crash", (node,), gateway_relative=gateway)
        )

    def recover(self, time: Time, node: int, gateway: bool = False) -> "FaultPlan":
        """Schedule a crashed node's recovery."""
        return self.adding(
            FaultEvent(time, "recover", (node,), gateway_relative=gateway)
        )

    def gateway_outage(self, start: Time, end: Time, index: int = 0) -> "FaultPlan":
        """Crash the ``index``-th gateway at ``start``, recover at ``end``."""
        if end <= start:
            raise ConfigurationError(
                f"outage must end after it starts, got {start}..{end}"
            )
        return self.crash(start, index, gateway=True).recover(end, index, gateway=True)

    def blackout(self, time: Time, source: int, destination: int) -> "FaultPlan":
        """Schedule a directed-link blackout."""
        return self.adding(FaultEvent(time, "blackout", (source, destination)))

    def restore(self, time: Time, source: int, destination: int) -> "FaultPlan":
        """Schedule a blacked-out link's restoration."""
        return self.adding(FaultEvent(time, "restore", (source, destination)))

    def link_flap(
        self, source: int, destination: int, times: Iterable[Time], downtime: int = 1
    ) -> "FaultPlan":
        """Blackout/restore the link at each of ``times`` (a flapping link)."""
        if downtime < 1:
            raise ConfigurationError(f"downtime must be >= 1, got {downtime}")
        plan = self
        for time in times:
            plan = plan.blackout(time, source, destination).restore(
                time + downtime, source, destination
            )
        return plan

    def battery_shock(self, time: Time, node: int, amount: float) -> "FaultPlan":
        """Instantly drain ``amount`` (fraction of full) from a battery."""
        return self.adding(FaultEvent(time, "shock", (node,), amount=amount))

    def kill_agent(self, time: Time, agent: int) -> "FaultPlan":
        """Kill one agent outright."""
        return self.adding(FaultEvent(time, "kill", (agent,)))

    def wipe_table(self, time: Time, node: int) -> "FaultPlan":
        """Wipe a node's routing table."""
        return self.adding(FaultEvent(time, "wipe", (node,)))

    def corrupt_table(self, time: Time, node: int) -> "FaultPlan":
        """Scramble a node's routing-table next hops."""
        return self.adding(FaultEvent(time, "corrupt", (node,)))

    def loss_burst(
        self, time: Time, node: int, amount: float, gateway: bool = False
    ) -> "FaultPlan":
        """Make every transfer out of a node extra-lossy (fraction lost)."""
        return self.adding(
            FaultEvent(
                time, "lossburst", (node,), amount=amount, gateway_relative=gateway
            )
        )

    def loss_clear(self, time: Time, node: int, gateway: bool = False) -> "FaultPlan":
        """Lift a node's loss burst."""
        return self.adding(
            FaultEvent(time, "lossclear", (node,), gateway_relative=gateway)
        )

    # -- random churn ----------------------------------------------------

    @classmethod
    def random_churn(
        cls,
        master_seed: int,
        *,
        node_count: int,
        start: Time,
        end: Time,
        crashes: int,
        min_downtime: int = 10,
        max_downtime: int = 40,
        exclude: Tuple[int, ...] = (),
        agent_policy: str = "die",
        name: str = "churn",
    ) -> "FaultPlan":
        """A reproducible crash/recover schedule drawn from a seed.

        Picks ``crashes`` distinct victims (ids below ``node_count``,
        minus ``exclude``), each crashing at a uniform time in
        ``[start, end)`` and recovering after a uniform downtime in
        ``[min_downtime, max_downtime]``.  The stream is derived from
        ``(master_seed, name)`` via :func:`repro.rng.derive_seed`, so
        the same seed always yields the same churn and two differently
        named plans never share a stream.
        """
        if not 1 <= start < end:
            raise ConfigurationError(
                f"churn window must satisfy 1 <= start < end, got {start}..{end}"
            )
        if not 1 <= min_downtime <= max_downtime:
            raise ConfigurationError(
                f"downtime bounds must satisfy 1 <= min <= max, "
                f"got {min_downtime}..{max_downtime}"
            )
        candidates = [n for n in range(node_count) if n not in set(exclude)]
        if crashes > len(candidates):
            raise ConfigurationError(
                f"cannot crash {crashes} distinct nodes out of {len(candidates)}"
            )
        rng = random.Random(derive_seed(master_seed, f"faults:{name}"))
        victims = rng.sample(candidates, crashes)
        events = []
        for victim in victims:
            crash_at = rng.randrange(start, end)
            downtime = rng.randint(min_downtime, max_downtime)
            events.append(FaultEvent(crash_at, "crash", (victim,)))
            events.append(FaultEvent(crash_at + downtime, "recover", (victim,)))
        return cls(events=tuple(events), agent_policy=agent_policy)

    def describe(self) -> str:
        """The plan in spec-DSL form (parseable back with one policy)."""
        parts = [f"policy={self.agent_policy}"]
        parts.extend(event.describe() for event in self.events)
        return ";".join(parts)


def _parse_target(kind: str, text: str) -> Tuple[Tuple[int, ...], bool]:
    """Decode a spec target: ``N``, ``gwK``, ``aN``, or ``U-V``."""
    if kind in _EDGE_KINDS:
        pieces = text.split("-")
        if len(pieces) != 2:
            raise ConfigurationError(
                f"{kind} target must be 'source-destination', got {text!r}"
            )
        return (int(pieces[0]), int(pieces[1])), False
    if kind == "kill":
        if not text.startswith("a"):
            raise ConfigurationError(f"kill target must be 'a<agent-id>', got {text!r}")
        return (int(text[1:]),), False
    if text.startswith("gw"):
        return (int(text[2:]),), True
    return (int(text),), False


def parse_fault_plan(spec: str) -> FaultPlan:
    """Parse the compact ``--faults`` spec DSL into a :class:`FaultPlan`.

    See the module docstring for the grammar.  Raises
    :class:`~repro.errors.ConfigurationError` on any malformed segment.
    """
    events = []
    policy = "die"
    for raw_segment in spec.split(";"):
        segment = raw_segment.strip()
        if not segment:
            continue
        if segment.startswith("policy="):
            policy = segment[len("policy="):].strip()
            continue
        head, _, rest = segment.partition("@")
        kind = head.strip()
        if not rest:
            raise ConfigurationError(
                f"malformed fault {segment!r}; expected 'kind@time:target'"
            )
        pieces = rest.split(":")
        if len(pieces) < 2:
            raise ConfigurationError(
                f"malformed fault {segment!r}; expected 'kind@time:target'"
            )
        try:
            time = int(pieces[0])
            target, gateway_relative = _parse_target(kind, pieces[1])
            amount = float(pieces[2]) if len(pieces) > 2 else 0.0
        except ValueError as error:
            raise ConfigurationError(
                f"malformed fault {segment!r}: {error}"
            ) from None
        events.append(
            FaultEvent(
                time=time,
                kind=kind,
                target=target,
                amount=amount,
                gateway_relative=gateway_relative,
            )
        )
    return FaultPlan(events=tuple(events), agent_policy=policy)
