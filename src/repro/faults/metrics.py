"""Resilience metrics: how hard does a fault hit, how fast the recovery.

AntNet validates stigmergetic routing by its behaviour under component
failure; the paper's claim here is the same shape — agents keep the
network mapped and routed while the substrate decays.  This module
turns that into numbers.  A :class:`ResilienceTracker` subscribes to a
world's hooks (no world code knows it exists) and distils the per-step
metric into a :class:`ResilienceReport`:

* **baseline** — mean metric over the window before the first fault,
* **dip depth** — baseline minus the worst value at/after the first
  fault (how deep the churn bit),
* **time to reconverge** — steps between the *last* fault and the first
  subsequent sample back at ``recovery_fraction`` of baseline,
* **agent survival** — fraction of the team still alive at run end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.analysis.series import TimeSeries
from repro.sim.hooks import HookRegistry
from repro.types import Time

__all__ = ["ResilienceReport", "ResilienceTracker"]

#: fraction of the pre-fault baseline that counts as "recovered".
DEFAULT_RECOVERY_FRACTION = 0.9


@dataclass(frozen=True)
class ResilienceReport:
    """Distilled resilience numbers for one faulted run (picklable)."""

    faults_injected: int
    first_fault_time: Optional[Time]
    last_fault_time: Optional[Time]
    baseline: Optional[float]
    dip_depth: Optional[float]
    reconverge_steps: Optional[Time]
    agents_total: int
    agents_alive: int

    @property
    def agent_survival(self) -> float:
        """Fraction of the team alive at run end."""
        if self.agents_total == 0:
            return 1.0
        return self.agents_alive / self.agents_total

    @property
    def recovered(self) -> bool:
        """Whether the metric returned to its recovery band post-fault."""
        return self.reconverge_steps is not None


class ResilienceTracker:
    """Hook subscriber that measures degradation and recovery.

    ``metric_hook``/``value_key`` name the world's per-step metric hook
    ("connectivity_recorded"/"fraction" for routing,
    "knowledge_recorded"/"average" for mapping).  The tracker also
    listens to the injector's ``fault_injected`` hook to learn when
    faults actually fired.
    """

    def __init__(
        self,
        hooks: HookRegistry,
        metric_hook: str,
        value_key: str,
        recovery_fraction: float = DEFAULT_RECOVERY_FRACTION,
    ) -> None:
        self._value_key = value_key
        self._recovery_fraction = recovery_fraction
        self._times: List[Time] = []
        self._values: List[float] = []
        self._fault_times: List[Time] = []
        hooks.subscribe(metric_hook, self._on_metric)
        hooks.subscribe("fault_injected", self._on_fault)

    def _on_metric(self, *, time: Time, **payload: Any) -> None:
        self._times.append(time)
        self._values.append(float(payload[self._value_key]))

    def _on_fault(self, *, time: Time, **payload: Any) -> None:
        del payload
        self._fault_times.append(time)

    @property
    def fault_times(self) -> List[Time]:
        """When faults actually fired (simulated time, ascending)."""
        return list(self._fault_times)

    def series(self) -> TimeSeries:
        """The recorded metric as a time series."""
        return TimeSeries(list(self._times), list(self._values))

    def report(self, agents_total: int, agents_alive: int) -> ResilienceReport:
        """Distil everything recorded so far into a report."""
        first = self._fault_times[0] if self._fault_times else None
        last = self._fault_times[-1] if self._fault_times else None
        baseline: Optional[float] = None
        dip_depth: Optional[float] = None
        reconverge: Optional[Time] = None
        if first is not None and self._times:
            before = [v for t, v in zip(self._times, self._values) if t < first]
            if before:
                baseline = sum(before) / len(before)
            after_first = [v for t, v in zip(self._times, self._values) if t >= first]
            if baseline is not None and after_first:
                dip_depth = max(0.0, baseline - min(after_first))
            if baseline is not None and last is not None:
                threshold = baseline * self._recovery_fraction
                for t, v in zip(self._times, self._values):
                    if t > last and v >= threshold:
                        reconverge = t - last
                        break
        return ResilienceReport(
            faults_injected=len(self._fault_times),
            first_fault_time=first,
            last_fault_time=last,
            baseline=baseline,
            dip_depth=dip_depth,
            reconverge_steps=reconverge,
            agents_total=agents_total,
            agents_alive=agents_alive,
        )
