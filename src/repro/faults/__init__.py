"""Deterministic fault injection.

The paper motivates its "more realistic environment" with exactly a
degradation story — battery-driven range shrinkage and link loss
(§II-B, §III-A) — but smooth decay is the gentlest failure mode a real
network sees.  This package injects the harsher ones, deterministically:
node crashes and recoveries, gateway outages, battery shocks, link
blackouts and flaps, agent kills, and routing-table wipes/corruption,
all scheduled through the simulation engine's event calendar so serial
and parallel runs stay bit-identical.

* :mod:`repro.faults.plan` — :class:`FaultPlan`: an immutable, seeded
  schedule of :class:`FaultEvent` actions, built programmatically, from
  a compact spec string (the CLI's ``--faults``), or from the random
  churn generator.
* :mod:`repro.faults.injector` — :class:`FaultInjector`: wires a plan
  into a world via ``TimeStepEngine.schedule_at`` and applies graceful
  degradation (dead radios, invalidated routes, cleared stigmergy,
  agent death/respawn policies).
* :mod:`repro.faults.metrics` — :class:`ResilienceTracker`: records
  connectivity/knowledge dips, time-to-reconverge, and agent survival.
"""

from repro.faults.injector import FaultInjector
from repro.faults.metrics import ResilienceReport, ResilienceTracker
from repro.faults.plan import (
    FAULT_KINDS,
    AdversarySpec,
    FaultEvent,
    FaultPlan,
    parse_adversary_spec,
    parse_fault_plan,
)

__all__ = [
    "FAULT_KINDS",
    "AdversarySpec",
    "FaultEvent",
    "FaultPlan",
    "parse_adversary_spec",
    "parse_fault_plan",
    "FaultInjector",
    "ResilienceReport",
    "ResilienceTracker",
]
