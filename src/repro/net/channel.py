"""Lossy-channel model: per-attempt success of agent transfers.

The paper's environment is "more realistic" than Minar's mainly through
heterogeneous directed links and battery-driven degradation (§II-A,
§III-A) — but the reproduction so far still assumed every agent hop and
every co-location exchange *succeeds*.  Real wireless transfers fail.
This module supplies the missing idealisation-breaker: a seeded,
deterministic :class:`ChannelModel` that decides, per attempt, whether a
migration or meeting payload gets through.

Loss policies are pluggable and composable:

* :class:`FixedLoss` — a constant per-attempt loss probability,
* :class:`DistanceLoss` — loss grows toward the edge of the *sender's*
  current radio range (a link that barely exists barely works),
* :class:`BatteryLoss` — a depleting sender gets flakier (composing
  naturally with :class:`~repro.net.radio.BatteryCoupledRange`, which
  shrinks the range the distance term is measured against),
* :class:`CompositeLoss` — independent failure modes combine as
  ``1 - prod(1 - p_i)``.

Determinism is *keyed*, not sequential: each attempt draws a uniform
value from ``hash(seed, step, key)`` instead of advancing a stateful
RNG.  Two consequences the rest of the system relies on:

* an attempt's outcome cannot depend on the order in which agents are
  iterated (meeting exchanges stay order-independent under loss), and
* a lossless channel (``p == 0`` everywhere) draws **nothing** — runs
  with a disabled channel and runs with ``loss=0`` are bit-identical,
  so every pre-existing seeded experiment is untouched.

Transient *loss bursts* (a node's links turning bad for a while) are
driven by the fault layer — see ``lossburst``/``lossclear`` in
:mod:`repro.faults.plan` — and stack multiplicatively on the policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Protocol, Sequence

from repro.errors import ConfigurationError
from repro.net.node import Node
from repro.net.topology import Topology
from repro.rng import derive_seed
from repro.types import NodeId, Time

__all__ = [
    "ChannelConfig",
    "LossPolicy",
    "FixedLoss",
    "DistanceLoss",
    "BatteryLoss",
    "CompositeLoss",
    "policy_from_config",
    "ChannelStats",
    "ChannelModel",
    "parse_channel_spec",
]

#: Denominator turning a 64-bit keyed hash into a uniform draw in [0, 1).
_DRAW_SPAN = float(2**64)

#: Attempt-key prefixes carrying data-plane payloads — the only traffic
#: a gray-failed node drops.  Agent migrations (``hop:``) and meeting
#: exchanges keep succeeding: that is what makes the failure *gray* —
#: the node looks perfectly healthy to the control plane, keeps relaying
#: agents and attracting routes, and silently swallows the payloads
#: those routes then send through it.
GRAY_KINDS = frozenset({"pay", "epi", "spr"})


@dataclass(frozen=True)
class ChannelConfig:
    """Loss-model and reliable-migration knobs for one world.

    Frozen and hashable so it can ride inside the (also frozen) world
    configs, pickle across ``multiprocessing`` workers, and key sweep
    checkpoints.  The three loss terms compose as independent failure
    modes; all-zero terms mean a lossless channel and the fast no-draw
    path.

    ``hop_retries``/``backoff_base`` parameterise the reliable-migration
    protocol built on top of the channel: a failed hop is retried up to
    ``hop_retries`` times, waiting ``backoff_base * 2**(failures-1)``
    simulation steps between attempts (clamped to ``backoff_cap``),
    before the agent abandons the target and re-plans via its normal
    policy.
    """

    #: constant per-attempt loss probability.
    loss: float = 0.0
    #: extra loss at the far edge of the sender's radio range.
    distance_factor: float = 0.0
    #: shape of the distance term (2.0 ~ inverse-square-ish falloff).
    distance_exponent: float = 2.0
    #: extra loss for a sender whose battery is empty.
    battery_factor: float = 0.0
    #: bounded retries before a failed hop is abandoned.
    hop_retries: int = 3
    #: first retry waits this many steps; each further retry doubles it.
    backoff_base: int = 1
    #: longest wait between retries; the exponential backoff never
    #: exceeds this many steps.  The default (64) is far above anything
    #: the default retry budget can reach, so existing behaviour is
    #: unchanged unless ``hop_retries`` is raised past it.
    backoff_cap: int = 64

    def __post_init__(self) -> None:
        for name in ("loss", "distance_factor", "battery_factor"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if self.distance_exponent <= 0:
            raise ConfigurationError(
                f"distance_exponent must be positive, got {self.distance_exponent}"
            )
        if self.hop_retries < 0:
            raise ConfigurationError(
                f"hop_retries must be >= 0, got {self.hop_retries}"
            )
        if self.backoff_base < 1:
            raise ConfigurationError(
                f"backoff_base must be >= 1, got {self.backoff_base}"
            )
        if self.backoff_cap < 1:
            raise ConfigurationError(
                f"backoff_cap must be >= 1, got {self.backoff_cap}"
            )

    @property
    def lossless(self) -> bool:
        """Whether this config can never lose an attempt (no bursts)."""
        return (
            self.loss == 0.0
            and self.distance_factor == 0.0
            and self.battery_factor == 0.0
        )


class LossPolicy(Protocol):
    """Strategy giving the loss probability of one transfer attempt."""

    def loss_probability(self, source: Node, destination: Node) -> float:
        """Probability in ``[0, 1]`` that ``source -> destination`` fails."""
        ...


class FixedLoss:
    """Every attempt fails with the same probability."""

    def __init__(self, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(
                f"loss probability must be in [0, 1], got {probability}"
            )
        self.probability = probability

    def loss_probability(self, source: Node, destination: Node) -> float:
        return self.probability


class DistanceLoss:
    """Loss proportional to how deep into the sender's range the hop is.

    ``p = factor * min(1, distance / range(source)) ** exponent`` — a
    target at the sender's feet is safe, one at the rim of the radio
    range fails with up to ``factor``.  A sender whose effective range
    collapsed to zero cannot deliver at all.
    """

    def __init__(self, factor: float, exponent: float = 2.0) -> None:
        if not 0.0 <= factor <= 1.0:
            raise ConfigurationError(f"factor must be in [0, 1], got {factor}")
        if exponent <= 0:
            raise ConfigurationError(f"exponent must be positive, got {exponent}")
        self.factor = factor
        self.exponent = exponent

    def loss_probability(self, source: Node, destination: Node) -> float:
        if source is destination:
            return 0.0
        radius = source.current_range()
        if radius <= 0.0:
            return 1.0
        ratio = min(1.0, source.position.distance_to(destination.position) / radius)
        return self.factor * ratio**self.exponent


class BatteryLoss:
    """A depleting sender gets flakier: ``p = factor * (1 - level)``."""

    def __init__(self, factor: float) -> None:
        if not 0.0 <= factor <= 1.0:
            raise ConfigurationError(f"factor must be in [0, 1], got {factor}")
        self.factor = factor

    def loss_probability(self, source: Node, destination: Node) -> float:
        return self.factor * (1.0 - source.battery.level)


class CompositeLoss:
    """Independent failure modes: ``p = 1 - prod(1 - p_i)``."""

    def __init__(self, policies: Sequence[LossPolicy]) -> None:
        self.policies = tuple(policies)

    def loss_probability(self, source: Node, destination: Node) -> float:
        survive = 1.0
        for policy in self.policies:
            survive *= 1.0 - policy.loss_probability(source, destination)
        return 1.0 - survive


def policy_from_config(config: ChannelConfig) -> LossPolicy:
    """Build the composite policy a :class:`ChannelConfig` describes."""
    terms = []
    if config.loss > 0.0:
        terms.append(FixedLoss(config.loss))
    if config.distance_factor > 0.0:
        terms.append(DistanceLoss(config.distance_factor, config.distance_exponent))
    if config.battery_factor > 0.0:
        terms.append(BatteryLoss(config.battery_factor))
    if not terms:
        return FixedLoss(0.0)
    if len(terms) == 1:
        return terms[0]
    return CompositeLoss(terms)


@dataclass
class ChannelStats:
    """Channel-level delivery accounting (diagnostics)."""

    attempts: int = 0
    losses: int = 0
    #: per-kind loss counts, keyed by the prefix of the attempt key.
    losses_by_kind: Dict[str, int] = field(default_factory=dict)

    @property
    def loss_rate(self) -> float:
        """Observed fraction of attempts lost."""
        return self.losses / self.attempts if self.attempts else 0.0


class ChannelModel:
    """Seeded, deterministic per-attempt transfer success for one world.

    Every decision draws from ``hash(seed, time, key)`` so outcomes are
    a pure function of the attempt's identity — independent of agent
    iteration order and identical between serial and pooled runs.  A
    channel whose effective probability is zero returns success without
    hashing at all.
    """

    def __init__(self, topology: Topology, config: ChannelConfig, seed: int) -> None:
        self.topology = topology
        self.config = config
        self._policy = policy_from_config(config)
        self._seed = seed
        self._bursts: Dict[NodeId, float] = {}
        self._gray: Dict[NodeId, float] = {}
        self.stats = ChannelStats()

    # ------------------------------------------------------------------
    # Probability
    # ------------------------------------------------------------------

    def loss_probability(
        self, source: NodeId, destination: NodeId, kind: str = ""
    ) -> float:
        """Current loss probability of ``source -> destination``.

        ``kind`` is the attempt-key prefix (``hop``, ``meet``, ``pay``,
        …); gray failures only affect the data-plane kinds in
        :data:`GRAY_KINDS`, so callers that omit it get the control-plane
        probability.
        """
        probability = self._policy.loss_probability(
            self.topology.node(source), self.topology.node(destination)
        )
        burst = self._bursts.get(source)
        if burst is not None:
            probability = 1.0 - (1.0 - probability) * (1.0 - burst)
        if kind in GRAY_KINDS:
            gray = self._gray.get(destination)
            if gray is not None:
                # Gray failure: the *destination* receives the radio
                # frame but silently drops the payload, so the term
                # composes on the receiving side of the link.
                probability = 1.0 - (1.0 - probability) * (1.0 - gray)
        return min(1.0, max(0.0, probability))

    # ------------------------------------------------------------------
    # Attempts
    # ------------------------------------------------------------------

    def attempt(self, source: NodeId, destination: NodeId, now: Time, key: str) -> bool:
        """Whether one keyed transfer attempt succeeds.

        ``key`` names the attempt within the step (e.g. ``hop:7`` or
        ``meet:3``); the same ``(now, key)`` always yields the same
        outcome for a given seed and probability.
        """
        if self.config.lossless and not self._bursts and not self._gray:
            self.stats.attempts += 1
            return True
        kind = key.split(":", 1)[0]
        probability = self.loss_probability(source, destination, kind)
        self.stats.attempts += 1
        if probability <= 0.0:
            return True
        if probability < 1.0:
            draw = derive_seed(self._seed, f"{now}:{key}") / _DRAW_SPAN
            if draw >= probability:
                return True
        self.stats.losses += 1
        self.stats.losses_by_kind[kind] = self.stats.losses_by_kind.get(kind, 0) + 1
        return False

    # ------------------------------------------------------------------
    # Loss bursts (fault layer)
    # ------------------------------------------------------------------

    def set_burst(self, node: NodeId, probability: float) -> bool:
        """Make every link out of ``node`` extra-lossy until cleared.

        Returns whether the state changed (re-applying the same burst is
        a no-op, keeping fault plans idempotent).
        """
        if not 0.0 < probability <= 1.0:
            raise ConfigurationError(
                f"burst probability must be in (0, 1], got {probability}"
            )
        self.topology.node(node)  # validate the id
        if self._bursts.get(node) == probability:
            return False
        self._bursts[node] = probability
        return True

    def clear_burst(self, node: NodeId) -> bool:
        """Lift a loss burst; returns whether the state changed."""
        return self._bursts.pop(node, None) is not None

    @property
    def active_bursts(self) -> Dict[NodeId, float]:
        """Currently bursting nodes and their extra loss (a copy)."""
        return dict(self._bursts)

    # ------------------------------------------------------------------
    # Gray failures (fault layer)
    # ------------------------------------------------------------------

    def set_grayfail(self, node: NodeId, rate: float) -> bool:
        """Make ``node`` silently drop inbound *payloads* at ``rate``.

        Unlike a burst (a flaky *sender*), a gray failure is a receiver
        that stays up, keeps relaying agents, and loses the data-plane
        traffic it is handed (the kinds in :data:`GRAY_KINDS`) — the
        hardest failure mode for neighbors to diagnose, because every
        control-plane signal says the node is healthy.  Returns whether
        the state changed (idempotent like :meth:`set_burst`).
        """
        if not 0.0 < rate <= 1.0:
            raise ConfigurationError(
                f"grayfail rate must be in (0, 1], got {rate}"
            )
        self.topology.node(node)  # validate the id
        if self._gray.get(node) == rate:
            return False
        self._gray[node] = rate
        return True

    def clear_grayfail(self, node: NodeId) -> bool:
        """Heal a gray failure; returns whether the state changed."""
        return self._gray.pop(node, None) is not None

    @property
    def active_grayfails(self) -> Dict[NodeId, float]:
        """Currently gray-failing nodes and their drop rate (a copy)."""
        return dict(self._gray)


def parse_channel_spec(spec: str) -> ChannelConfig:
    """Parse the CLI's ``--loss`` spec into a :class:`ChannelConfig`.

    A bare number is a fixed loss probability (``--loss 0.2``); the long
    form is comma-separated ``key=value`` pairs::

        fixed=0.1,distance=0.3,exponent=2,battery=0.2,retries=4,backoff=2

    Raises :class:`~repro.errors.ConfigurationError` on malformed input.
    """
    text = spec.strip()
    if not text:
        raise ConfigurationError("empty channel spec")
    try:
        return ChannelConfig(loss=float(text))
    except ValueError:
        pass
    values: Dict[str, float] = {}
    for raw_pair in text.split(","):
        pair = raw_pair.strip()
        if not pair:
            continue
        name, separator, value = pair.partition("=")
        if not separator:
            raise ConfigurationError(
                f"malformed channel spec segment {pair!r}; expected 'key=value'"
            )
        try:
            values[name.strip()] = float(value)
        except ValueError:
            raise ConfigurationError(
                f"malformed channel spec value in {pair!r}"
            ) from None
    aliases = {
        "fixed": "loss",
        "loss": "loss",
        "distance": "distance_factor",
        "exponent": "distance_exponent",
        "exp": "distance_exponent",
        "battery": "battery_factor",
        "retries": "hop_retries",
        "backoff": "backoff_base",
        "cap": "backoff_cap",
    }
    kwargs: Dict[str, float] = {}
    for name, value in values.items():
        target = aliases.get(name)
        if target is None:
            raise ConfigurationError(
                f"unknown channel spec key {name!r}; "
                f"expected one of {sorted(set(aliases))}"
            )
        if target in ("hop_retries", "backoff_base", "backoff_cap"):
            kwargs[target] = int(value)
        else:
            kwargs[target] = value
    return ChannelConfig(**kwargs)
