"""Directed-graph utilities used by the topology engine and generators.

Implemented from scratch on plain adjacency dicts (the library's internal
graph representation) so the substrate has no runtime dependency on
networkx; the test suite cross-checks these routines against networkx.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Sequence, Set

from repro.types import NodeId

__all__ = [
    "Adjacency",
    "reachable_from",
    "is_strongly_connected",
    "strongly_connected_components",
    "bfs_hops",
    "edge_count",
]

#: Adjacency mapping: node id -> set/sequence of successor node ids.
Adjacency = Dict[NodeId, Set[NodeId]]


def edge_count(adjacency: Adjacency) -> int:
    """Total number of directed edges."""
    return sum(len(successors) for successors in adjacency.values())


def reachable_from(adjacency: Adjacency, start: NodeId) -> Set[NodeId]:
    """All nodes reachable from ``start`` along directed edges (incl. start)."""
    seen = {start}
    frontier = deque([start])
    while frontier:
        node = frontier.popleft()
        for successor in adjacency.get(node, ()):
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return seen


def _reversed_adjacency(adjacency: Adjacency) -> Adjacency:
    reversed_adj: Adjacency = {node: set() for node in adjacency}
    for node, successors in adjacency.items():
        for successor in successors:
            reversed_adj.setdefault(successor, set()).add(node)
    return reversed_adj


def is_strongly_connected(adjacency: Adjacency) -> bool:
    """Whether every node can reach every other node (Kosaraju-style check)."""
    nodes = list(adjacency)
    if not nodes:
        return True
    start = nodes[0]
    if len(reachable_from(adjacency, start)) != len(nodes):
        return False
    return len(reachable_from(_reversed_adjacency(adjacency), start)) == len(nodes)


def strongly_connected_components(adjacency: Adjacency) -> List[Set[NodeId]]:
    """Strongly connected components via Tarjan's algorithm (iterative).

    Returned in reverse topological order of the condensation, matching
    the classic formulation; callers that only need the largest component
    can take ``max(..., key=len)``.
    """
    index_of: Dict[NodeId, int] = {}
    lowlink: Dict[NodeId, int] = {}
    on_stack: Set[NodeId] = set()
    stack: List[NodeId] = []
    components: List[Set[NodeId]] = []
    counter = [0]

    for root in adjacency:
        if root in index_of:
            continue
        # Iterative Tarjan: worklist of (node, iterator over successors).
        work = [(root, iter(adjacency.get(root, ())))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index_of:
                    index_of[successor] = lowlink[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(adjacency.get(successor, ()))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: Set[NodeId] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


def bfs_hops(adjacency: Adjacency, start: NodeId) -> Dict[NodeId, int]:
    """Hop count from ``start`` to every reachable node (start -> 0)."""
    hops = {start: 0}
    frontier = deque([start])
    while frontier:
        node = frontier.popleft()
        for successor in adjacency.get(node, ()):
            if successor not in hops:
                hops[successor] = hops[node] + 1
                frontier.append(successor)
    return hops


def restrict(adjacency: Adjacency, keep: Iterable[NodeId]) -> Adjacency:
    """The sub-graph induced by the ``keep`` nodes."""
    keep_set = set(keep)
    return {
        node: {succ for succ in successors if succ in keep_set}
        for node, successors in adjacency.items()
        if node in keep_set
    }


def relabel_compact(adjacency: Adjacency, order: Sequence[NodeId]) -> Adjacency:
    """Relabel nodes to ``0..n-1`` following ``order``."""
    mapping = {old: new for new, old in enumerate(order)}
    return {
        mapping[node]: {mapping[succ] for succ in successors}
        for node, successors in adjacency.items()
    }
