"""2D geometry primitives: points and the bounded arena nodes live in."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["Point", "Arena"]


@dataclass(frozen=True)
class Point:
    """An immutable 2D position."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def distance_squared_to(self, other: "Point") -> float:
        """Squared Euclidean distance (avoids the sqrt in hot loops)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def translated(self, dx: float, dy: float) -> "Point":
        """A new point offset by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)


@dataclass(frozen=True)
class Arena:
    """The rectangular region ``[0, width] x [0, height]`` nodes occupy."""

    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError(
                f"arena dimensions must be positive, got {self.width}x{self.height}"
            )

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside the arena (boundary inclusive)."""
        return 0.0 <= point.x <= self.width and 0.0 <= point.y <= self.height

    def random_point(self, rng: random.Random) -> Point:
        """A uniformly random point inside the arena."""
        return Point(rng.uniform(0.0, self.width), rng.uniform(0.0, self.height))

    def clamp(self, point: Point) -> Point:
        """The nearest point inside the arena."""
        return Point(
            min(max(point.x, 0.0), self.width),
            min(max(point.y, 0.0), self.height),
        )

    def diagonal(self) -> float:
        """Length of the arena diagonal — an upper bound on any distance."""
        return math.hypot(self.width, self.height)
