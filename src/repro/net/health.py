"""Per-node neighbor health: EWMA link quality, suspicion, quarantine.

Gray failures are the hardest fault in the plan DSL precisely because
nothing *looks* wrong: the neighbor stays up, keeps its links, answers
the topology — and silently drops most of what it is handed.  AntNet
(Di Caro & Dorigo) showed that per-link statistical quality estimates
are the right primitive for routing around unreliable links without any
coordination; this module is that primitive for the agent worlds.

Each directed link an agent or payload actually *uses* accumulates an
exponentially weighted success estimate, fed by the two ground-truth
signals the worlds already produce:

* migration outcomes — a hop either delivered the agent or it did not,
* custody-transfer outcomes — a payload data+ack round either completed
  or it did not.

When a link's quality falls below ``suspect_threshold`` (after at least
``min_samples`` observations, so one unlucky draw cannot condemn a good
neighbor), the neighbor is **quarantined**: excluded from next-hop
choice and custody transfer by every caller that consults
:meth:`HealthMonitor.filter_targets`.  Quarantine is never allowed to
isolate a node — if filtering would leave no candidates the full list
is returned, which is also what the invariant checker verifies.

Quarantine is not forever.  After ``probation_after`` steps the link
enters **probation**: it becomes usable again, with its quality pinned
at exactly ``suspect_threshold``, and the next observations decide —
``probation_successes`` *consecutive* successes clear the neighbor, a
single failure re-quarantines it.  A healed gray failure therefore
rehabilitates within one probation cycle, while a persistent 95%-drop
one almost never gets lucky enough times in a row to launder its way
back to trusted (a single-success rule would re-admit it one probe in
twenty).

The monitor is pure bookkeeping over outcomes the simulation already
computed: it draws no randomness, so two runs differing only in whether
a (never-consulted) monitor is attached remain bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.types import NodeId, Time

__all__ = ["HealthConfig", "HealthReport", "HealthMonitor"]

#: Link states beyond the implicit default (absent = trusted).
_QUARANTINED = "quarantined"
_PROBATION = "probation"


@dataclass(frozen=True)
class HealthConfig:
    """Suspicion/quarantine knobs for one world's health monitor.

    Frozen and hashable so it rides inside the frozen world configs,
    pickles across ``multiprocessing`` workers, and keys sweep
    checkpoints.  The defaults are tuned so a 90%-drop gray failure is
    caught within a handful of interactions while an honest neighbor on
    a moderately lossy channel stays clear of the threshold.
    """

    #: EWMA weight of the newest observation.
    alpha: float = 0.3
    #: quality below this (with enough samples) quarantines the link.
    suspect_threshold: float = 0.4
    #: probation quality at/above this rehabilitates the link.
    clear_threshold: float = 0.5
    #: observations required before quarantine can trip.
    min_samples: int = 4
    #: quarantined links re-enter probation after this many steps.
    probation_after: int = 16
    #: consecutive probation successes required to rehabilitate.
    probation_successes: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigurationError(
                f"alpha must be in (0, 1], got {self.alpha}"
            )
        if not 0.0 < self.suspect_threshold < 1.0:
            raise ConfigurationError(
                f"suspect_threshold must be in (0, 1), got {self.suspect_threshold}"
            )
        if not self.suspect_threshold <= self.clear_threshold <= 1.0:
            raise ConfigurationError(
                "clear_threshold must be in [suspect_threshold, 1], got "
                f"{self.clear_threshold}"
            )
        # Probation must be winnable: the required streak of successes
        # from the pinned probation quality has to reach the clear
        # threshold, otherwise a healed neighbor could never
        # rehabilitate.
        best = 1.0 - (1.0 - self.alpha) ** max(1, self.probation_successes) * (
            1.0 - self.suspect_threshold
        )
        if best < self.clear_threshold:
            raise ConfigurationError(
                f"unwinnable probation: {self.probation_successes} "
                f"success(es) lift quality only to {best:.3f}, below "
                f"clear_threshold={self.clear_threshold}"
            )
        if self.min_samples < 1:
            raise ConfigurationError(
                f"min_samples must be >= 1, got {self.min_samples}"
            )
        if self.probation_after < 1:
            raise ConfigurationError(
                f"probation_after must be >= 1, got {self.probation_after}"
            )
        if self.probation_successes < 1:
            raise ConfigurationError(
                f"probation_successes must be >= 1, got {self.probation_successes}"
            )


@dataclass(frozen=True)
class HealthReport:
    """End-of-run health accounting for one world."""

    #: links ever quarantined (re-quarantines counted again).
    quarantines: int = 0
    #: probation exits back to trusted.
    rehabilitations: int = 0
    #: links still quarantined when the run ended.
    quarantined_final: int = 0
    #: directed links that accumulated at least one observation.
    links_tracked: int = 0
    #: lowest link quality estimate at run end (1.0 when untracked).
    worst_quality: float = 1.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "quarantines": self.quarantines,
            "rehabilitations": self.rehabilitations,
            "quarantined_final": self.quarantined_final,
            "links_tracked": self.links_tracked,
            "worst_quality": self.worst_quality,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "HealthReport":
        return cls(
            quarantines=int(payload.get("quarantines", 0)),
            rehabilitations=int(payload.get("rehabilitations", 0)),
            quarantined_final=int(payload.get("quarantined_final", 0)),
            links_tracked=int(payload.get("links_tracked", 0)),
            worst_quality=float(payload.get("worst_quality", 1.0)),
        )


class HealthMonitor:
    """EWMA link-quality estimates and quarantine state for one world.

    One monitor serves every node: state is keyed by the directed link
    ``(node, neighbor)``, so each node's view of a neighbor is its own
    (node 3 may quarantine node 7 while node 5 still trusts it —
    exactly the local-evidence semantics of a distributed deployment).
    """

    def __init__(self, config: HealthConfig, hooks: Optional[Any] = None) -> None:
        self.config = config
        self.hooks = hooks
        self._quality: Dict[Tuple[NodeId, NodeId], float] = {}
        self._samples: Dict[Tuple[NodeId, NodeId], int] = {}
        #: link -> _QUARANTINED | _PROBATION (absent = trusted).
        self._state: Dict[Tuple[NodeId, NodeId], str] = {}
        #: quarantined link -> step at which probation begins.
        self._probation_at: Dict[Tuple[NodeId, NodeId], Time] = {}
        #: probation link -> consecutive successes so far.
        self._probation_streak: Dict[Tuple[NodeId, NodeId], int] = {}
        self.quarantines = 0
        self.rehabilitations = 0

    # ------------------------------------------------------------------
    # Evidence
    # ------------------------------------------------------------------

    def observe(
        self, node: NodeId, neighbor: NodeId, success: bool, now: Time
    ) -> None:
        """Fold one interaction outcome into the link's quality estimate.

        Transitions are per-link and depend only on that link's own
        history, so the order in which a step's observations arrive
        cannot change the end-of-step state.
        """
        config = self.config
        link = (node, neighbor)
        quality = self._quality.get(link, 1.0)
        quality = (1.0 - config.alpha) * quality + (
            config.alpha if success else 0.0
        )
        self._quality[link] = quality
        samples = self._samples.get(link, 0) + 1
        self._samples[link] = samples
        state = self._state.get(link)
        if state is None:
            if samples >= config.min_samples and quality < config.suspect_threshold:
                self._quarantine(link, now, quality)
        elif state == _PROBATION:
            # The pinned probation quality sits exactly at the suspect
            # threshold, so any failure drops below it and re-quarantines
            # immediately, while rehabilitation takes a *streak* of
            # successes — one lucky 5% delivery must not launder a
            # gray-failed neighbor back to trusted.
            if not success:
                self._probation_streak.pop(link, None)
                self._quarantine(link, now, quality)
                return
            streak = self._probation_streak.get(link, 0) + 1
            self._probation_streak[link] = streak
            if (
                streak >= config.probation_successes
                and quality >= config.clear_threshold
            ):
                del self._state[link]
                del self._probation_streak[link]
                self.rehabilitations += 1
                if self.hooks is not None:
                    self.hooks.fire(
                        "neighbor_rehabilitated",
                        time=now,
                        node=node,
                        neighbor=neighbor,
                        quality=quality,
                    )

    def _quarantine(
        self, link: Tuple[NodeId, NodeId], now: Time, quality: float
    ) -> None:
        self._state[link] = _QUARANTINED
        self._probation_at[link] = now + self.config.probation_after
        self.quarantines += 1
        if self.hooks is not None:
            self.hooks.fire(
                "neighbor_quarantined",
                time=now,
                node=link[0],
                neighbor=link[1],
                quality=quality,
            )

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------

    def advance(self, now: Time) -> None:
        """Move due quarantines into probation (called at each step top).

        Iterates in sorted link order so releases are deterministic
        regardless of quarantine insertion order.
        """
        due = [
            link
            for link, at in self._probation_at.items()
            if now >= at and self._state.get(link) == _QUARANTINED
        ]
        for link in sorted(due):
            self._state[link] = _PROBATION
            del self._probation_at[link]
            self._probation_streak.pop(link, None)
            # Pin the estimate at the threshold so the first probation
            # failure re-quarantines in a single step.
            self._quality[link] = self.config.suspect_threshold

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def is_quarantined(self, node: NodeId, neighbor: NodeId) -> bool:
        """Whether ``node`` currently excludes ``neighbor``."""
        return self._state.get((node, neighbor)) == _QUARANTINED

    def filter_targets(
        self, node: NodeId, candidates: Sequence[NodeId]
    ) -> List[NodeId]:
        """``candidates`` minus quarantined neighbors, never empty.

        If every candidate is quarantined the full list comes back
        unfiltered: quarantine degrades preference, it must never
        partition a connected world (the invariant checker holds the
        monitor to exactly this guarantee).
        """
        usable = [
            c for c in candidates if self._state.get((node, c)) != _QUARANTINED
        ]
        return usable if usable else list(candidates)

    def quarantined_neighbors(self, node: NodeId) -> List[NodeId]:
        """Neighbors ``node`` currently quarantines, sorted."""
        return sorted(
            neighbor
            for (observer, neighbor), state in self._state.items()
            if observer == node and state == _QUARANTINED
        )

    def quarantined_count(self) -> int:
        """Directed links currently quarantined, world-wide."""
        return sum(1 for state in self._state.values() if state == _QUARANTINED)

    def max_suspicion(self) -> float:
        """The worst link's suspicion score (``1 - quality``)."""
        if not self._quality:
            return 0.0
        return 1.0 - min(self._quality.values())

    def report(self) -> HealthReport:
        """End-of-run accounting snapshot."""
        return HealthReport(
            quarantines=self.quarantines,
            rehabilitations=self.rehabilitations,
            quarantined_final=self.quarantined_count(),
            links_tracked=len(self._samples),
            worst_quality=min(self._quality.values()) if self._quality else 1.0,
        )
