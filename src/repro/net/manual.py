"""Hand-specified topologies.

Most of the library derives links from geometry, but tests, examples and
downstream experiments often want an *exact* graph ("a ring of five
nodes", "this 2-SCC digraph").  :class:`FixedTopology` is a
:class:`~repro.net.topology.Topology` whose adjacency is pinned to a
given edge set: nodes are laid out on a circle for display purposes, and
``recompute`` restores the pinned adjacency instead of deriving it, so
motion and battery events can never change the links.  Fault state is
still honoured: crashed nodes and blacked-out links disappear from the
pinned graph exactly as they do from a geometric one.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence, Set

from repro.errors import TopologyError
from repro.net.geometry import Arena, Point
from repro.net.node import Node
from repro.net.radio import FixedRange
from repro.types import Edge, NodeId

__all__ = ["FixedTopology", "fixed_topology"]


class FixedTopology:
    """Builds a :class:`Topology` with a pinned adjacency."""

    def __new__(
        cls,
        node_count: int,
        edges: Iterable[Edge],
        gateways: Sequence[NodeId] = (),
        arena: Optional[Arena] = None,
    ):
        return fixed_topology(node_count, edges, gateways, arena)


def fixed_topology(
    node_count: int,
    edges: Iterable[Edge],
    gateways: Sequence[NodeId] = (),
    arena: Optional[Arena] = None,
):
    """A topology with exactly the given directed ``edges``.

    Nodes are numbered ``0..node_count-1`` and placed evenly on a circle.
    ``gateways`` marks gateway nodes.  Edges referring to unknown nodes
    raise :class:`~repro.errors.TopologyError`.
    """
    from repro.net.topology import Topology

    if node_count < 1:
        raise TopologyError(f"node_count must be >= 1, got {node_count}")
    pinned: Dict[NodeId, Set[NodeId]] = {n: set() for n in range(node_count)}
    for source, destination in edges:
        if source not in pinned or destination not in pinned:
            raise TopologyError(
                f"edge ({source}, {destination}) refers to a node outside "
                f"0..{node_count - 1}"
            )
        if source == destination:
            raise TopologyError(f"self-loop ({source}, {destination}) not allowed")
        pinned[source].add(destination)

    arena = arena if arena is not None else Arena(100.0, 100.0)
    gateway_set = set(gateways)
    radius = min(arena.width, arena.height) * 0.4
    center = Point(arena.width / 2.0, arena.height / 2.0)
    nodes = []
    for node_id in range(node_count):
        angle = 2.0 * math.pi * node_id / node_count
        position = Point(
            center.x + radius * math.cos(angle),
            center.y + radius * math.sin(angle),
        )
        nodes.append(
            Node(
                node_id,
                position,
                FixedRange(1.0),
                is_gateway=node_id in gateway_set,
            )
        )

    topology = Topology(nodes, arena)
    topology._pinned = True

    def recompute() -> None:
        # Restore the pinned adjacency, then apply fault state the same
        # way Topology.recompute does: crashed nodes lose every link,
        # blacked-out links are removed last.  Installing through
        # _install_adjacency keeps the reverse index and the edge-delta
        # stream truthful (an unchanged pinned graph yields an empty
        # delta, so downstream caches stay warm).
        down = topology._down
        adjacency = {
            n: set() if n in down else {d for d in s if d not in down}
            for n, s in pinned.items()
        }
        for source, destination in topology._blocked:
            successors = adjacency.get(source)
            if successors is not None:
                successors.discard(destination)
        topology._install_adjacency(adjacency)

    topology.recompute = recompute  # type: ignore[method-assign]
    topology.recompute()
    return topology
