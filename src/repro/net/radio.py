"""Radio range models.

The effective radio range of a node determines which other nodes can hear
it: there is a directed link ``u -> v`` iff ``dist(u, v) <= range(u)``.

Three models cover the paper's environments:

* :class:`FixedRange` — Minar's original assumption: every node has the
  same constant range, so links are symmetric and the topology graph is
  effectively undirected.
* :class:`HeterogeneousRange` — the paper's relaxation: "the radio range
  of nodes is not always the same, so there might exist a link from node
  A to node B but not vice versa" (§II-A).  Each node gets its own base
  range.
* :class:`BatteryCoupledRange` — the paper's battery effect: the range
  shrinks with the node's battery level, modelling transmit-power
  reduction as energy depletes.
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.errors import ConfigurationError
from repro.net.battery import Battery

__all__ = ["RadioModel", "FixedRange", "HeterogeneousRange", "BatteryCoupledRange"]


class RadioModel(Protocol):
    """Strategy giving a node's current effective radio range."""

    def current_range(self) -> float:
        """Effective range in arena units at this instant."""
        ...


class FixedRange:
    """A constant radio range (Minar-style homogeneous radios)."""

    def __init__(self, value: float) -> None:
        if value <= 0:
            raise ConfigurationError(f"radio range must be positive, got {value}")
        self._value = value

    def current_range(self) -> float:
        return self._value


class HeterogeneousRange:
    """A per-node constant range, optionally degraded by a fixed factor.

    ``degradation`` models the paper's "degradation on a percentage of
    radio links due to reliance on battery power": a degraded node keeps
    ``1 - degradation`` of its base range.  Degradation may be applied
    after construction (e.g. by a scheduled event mid-run).
    """

    def __init__(self, base: float, degradation: float = 0.0) -> None:
        if base <= 0:
            raise ConfigurationError(f"radio range must be positive, got {base}")
        if not 0.0 <= degradation < 1.0:
            raise ConfigurationError(f"degradation must be in [0, 1), got {degradation}")
        self.base = base
        self._degradation = degradation

    @property
    def degradation(self) -> float:
        """Current degradation fraction in ``[0, 1)``."""
        return self._degradation

    def degrade(self, fraction: float) -> None:
        """Set the degradation fraction (replaces, does not compound)."""
        if not 0.0 <= fraction < 1.0:
            raise ConfigurationError(f"degradation must be in [0, 1), got {fraction}")
        self._degradation = fraction

    def current_range(self) -> float:
        return self.base * (1.0 - self._degradation)


class BatteryCoupledRange:
    """Range proportional to battery level, with an optional floor.

    ``range = max(floor, base * level ** exponent)``.  With the default
    ``exponent=0.5`` the range decays slower than the battery itself
    (radio range goes roughly with the square root of transmit power),
    which keeps the MANET from collapsing unrealistically fast while still
    producing the paper's "links broken and reformed frequently".
    """

    def __init__(
        self,
        base: float,
        battery: Battery,
        exponent: float = 0.5,
        floor: Optional[float] = None,
    ) -> None:
        if base <= 0:
            raise ConfigurationError(f"radio range must be positive, got {base}")
        if exponent <= 0:
            raise ConfigurationError(f"exponent must be positive, got {exponent}")
        if floor is not None and floor < 0:
            raise ConfigurationError(f"floor must be >= 0, got {floor}")
        self.base = base
        self.battery = battery
        self.exponent = exponent
        self.floor = floor if floor is not None else 0.0

    def current_range(self) -> float:
        scaled = self.base * (self.battery.level**self.exponent)
        return max(self.floor, scaled)
