"""Wireless network substrate.

Models the physical layer of the paper's two scenarios: nodes placed in a
2D arena, per-node radio ranges (possibly heterogeneous and shrinking with
battery drain), node mobility, and the resulting *directed* link topology
recomputed as nodes move.
"""

from repro.net.battery import Battery, ExponentialDrain, LinearDrain, NoDrain
from repro.net.channel import (
    BatteryLoss,
    ChannelConfig,
    ChannelModel,
    CompositeLoss,
    DistanceLoss,
    FixedLoss,
    parse_channel_spec,
)
from repro.net.generator import (
    GeneratorConfig,
    MANET_PRESET,
    MAPPING_PRESET,
    NetworkGenerator,
    generate_manet_network,
    generate_mapping_network,
)
from repro.net.geometry import Arena, Point
from repro.net.health import HealthConfig, HealthMonitor, HealthReport
from repro.net.mobility import MobilityModel, RandomVelocity, RandomWaypoint, Stationary
from repro.net.node import Node
from repro.net.radio import (
    BatteryCoupledRange,
    FixedRange,
    HeterogeneousRange,
    RadioModel,
)
from repro.net.topology import Topology

__all__ = [
    "Point",
    "Arena",
    "Battery",
    "NoDrain",
    "LinearDrain",
    "ExponentialDrain",
    "RadioModel",
    "FixedRange",
    "HeterogeneousRange",
    "BatteryCoupledRange",
    "MobilityModel",
    "Stationary",
    "RandomVelocity",
    "RandomWaypoint",
    "Node",
    "Topology",
    "ChannelConfig",
    "ChannelModel",
    "FixedLoss",
    "DistanceLoss",
    "BatteryLoss",
    "CompositeLoss",
    "parse_channel_spec",
    "HealthConfig",
    "HealthMonitor",
    "HealthReport",
    "NetworkGenerator",
    "GeneratorConfig",
    "MAPPING_PRESET",
    "MANET_PRESET",
    "generate_mapping_network",
    "generate_manet_network",
]
