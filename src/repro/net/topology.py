"""The link topology induced by node positions and radio ranges.

There is a directed link ``u -> v`` iff ``v`` lies within ``u``'s current
radio range.  With Minar-style homogeneous radios this relation is
symmetric; with the paper's heterogeneous (and battery-shrinking) ranges
it generally is not, giving the directed graph of §II-A.

:class:`Topology` keeps the adjacency current *incrementally*: a
persistent uniform spatial grid re-buckets only nodes that changed grid
cell, a maintained reverse-adjacency index answers ``in_neighbors`` in
O(in-degree), and every refresh emits an edge-delta stream
(:class:`TopologyDelta`) that downstream caches — the delta-aware
connectivity metric — consume instead of re-deriving the world from
scratch.  Only nodes whose position or effective range actually changed
since the last refresh (plus fault-state transitions) pay any edge
work; a fully static network refreshes in O(n) change detection.

The original rebuild-from-scratch path is retained (``incremental=False``
or :meth:`force_full_rebuild`) as the reference implementation: the two
are bit-identical by construction — both evaluate the same
``dist²(u, v) <= range(u)²`` predicate — and the test suite
property-checks the equivalence on randomized mobility traces, while
:meth:`consistency_problems` lets the runtime invariant checker
cross-validate the incremental state against a fresh naive recompute
every step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import TopologyError
from repro.net.battery import ExponentialDrain, LinearDrain, NoDrain
from repro.net.geometry import Arena, Point
from repro.net.graphutils import Adjacency, edge_count, is_strongly_connected
from repro.net.mobility import RandomVelocity, Stationary
from repro.net.node import Node
from repro.net.radio import BatteryCoupledRange, FixedRange, HeterogeneousRange
from repro.types import Edge, NodeId

try:  # optional fast path; the grid path below needs nothing but stdlib
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

__all__ = ["Topology", "TopologyDelta", "TopologyStats"]

#: spacing of packed grid keys: key = ix * _STRIDE + iy.  Cell indices
#: are tiny (arena size over mean radio range), so 2**16 never collides.
_STRIDE = 1 << 16

#: buffered delta edges beyond which the stream collapses into a full
#: flush — protects worlds that never attach a delta consumer.
_DELTA_CAP = 100_000


@dataclass
class TopologyStats:
    """Always-on counters describing how the engine keeps itself current."""

    #: rebuild-from-scratch passes (first build, naive mode, fallbacks).
    full_rebuilds: int = 0
    #: incremental refresh passes.
    incremental_refreshes: int = 0
    #: nodes whose edges were recomputed across all refreshes.
    dirty_nodes: int = 0
    #: nodes moved between grid buckets.
    rebucketed: int = 0
    #: directed edges added incrementally (full rebuilds not counted).
    edges_added: int = 0
    #: directed edges removed incrementally.
    edges_removed: int = 0


@dataclass
class TopologyDelta:
    """One drained batch of edge changes since the previous drain.

    ``full`` means the adjacency was rebuilt wholesale (first build,
    naive mode, or buffer overflow) and consumers must flush anything
    derived from earlier state; ``added``/``removed`` are then empty.
    """

    full: bool = False
    added: List[Edge] = field(default_factory=list)
    removed: List[Edge] = field(default_factory=list)


@dataclass
class _DrainGroup:
    """One distinct drain model: its batteries and their level mirror."""

    #: "linear" carries ``per_step``, "exp" carries ``1 - rate``.
    kind: str
    param: float
    batteries: list
    #: float64 mirror of every battery's ``_level``, updated in place.
    levels: object
    #: ``(k, node_id, base, exponent, floor)`` for the group members
    #: whose radio is battery-coupled (``k`` indexes into ``levels``);
    #: constant-range radios need no recompute after a drain step.
    coupled: List[Tuple[int, NodeId, float, float, float]]


@dataclass
class _AdvanceState:
    """Hardware classification backing the vectorized advance fast path.

    Positions, velocities and battery levels are mirrored as float64
    arrays so the steady state runs without per-node attribute reads.
    Any :meth:`Topology.invalidate` (the mandatory companion of every
    external node mutation) discards the whole state, so the mirrors
    can never go stale.
    """

    #: straight-line (RandomVelocity) nodes, with their models and ids.
    movers: List[Node]
    mover_mob: List["RandomVelocity"]
    mover_ids: List[NodeId]
    mx: object
    my: object
    vx: object
    vy: object
    drain_groups: List[_DrainGroup]


def _classify_hardware(nodes: Sequence[Node], dynamic: Sequence[Node]):
    """Build the fast-path :class:`_AdvanceState`, or ``False``.

    The fast path must know *every* way a node's position or range can
    change between refreshes, so it demands stock models throughout:
    exotic mobility, drain, or radio classes (whose state could move on
    their own schedule) disable it for the topology's lifetime and the
    scalar loop plus the full change scan stay in charge.
    """
    known_radios = (FixedRange, HeterogeneousRange, BatteryCoupledRange)
    for node in nodes:
        radio = node.radio
        radio_kind = type(radio)
        if radio_kind not in known_radios:
            return False
        if radio_kind is BatteryCoupledRange and radio.battery is not node.battery:
            # A cross-wired radio could change range without its own
            # node draining; the fast path can't see that.
            return False
    movers: List[Node] = []
    mover_mob: List[RandomVelocity] = []
    mover_ids: List[NodeId] = []
    groups: Dict[Tuple[str, float], Tuple[list, List[Node]]] = {}
    for node in dynamic:
        mobility = node.mobility
        kind = type(mobility)
        if kind is RandomVelocity:
            movers.append(node)
            mover_mob.append(mobility)
            mover_ids.append(node.node_id)
        elif kind is not Stationary:
            return False
        if node._battery_drains:
            model = node.battery._drain_model
            model_kind = type(model)
            if model_kind is LinearDrain:
                key = ("linear", model.per_step)
            elif model_kind is ExponentialDrain:
                key = ("exp", model._keep)
            else:
                return False
            group = groups.get(key)
            if group is None:
                group = groups[key] = ([], [])
            group[0].append(node.battery)
            group[1].append(node)
    m = len(movers)
    mx = _np.fromiter((node.position.x for node in movers), _np.float64, m)
    my = _np.fromiter((node.position.y for node in movers), _np.float64, m)
    vx = _np.fromiter((mob._vx for mob in mover_mob), _np.float64, m)
    vy = _np.fromiter((mob._vy for mob in mover_mob), _np.float64, m)
    drain_groups = []
    for (kind, param), (batteries, group_nodes) in groups.items():
        levels = _np.fromiter(
            (b._level for b in batteries), _np.float64, len(batteries)
        )
        coupled = [
            (
                k,
                node.node_id,
                node.radio.base,
                node.radio.exponent,
                node.radio.floor,
            )
            for k, node in enumerate(group_nodes)
            if type(node.radio) is BatteryCoupledRange
        ]
        drain_groups.append(_DrainGroup(kind, param, batteries, levels, coupled))
    return _AdvanceState(movers, mover_mob, mover_ids, mx, my, vx, vy, drain_groups)


class Topology:
    """Directed wireless topology over a fixed set of nodes."""

    def __init__(
        self, nodes: Sequence[Node], arena: Arena, incremental: bool = True
    ) -> None:
        if not nodes:
            raise TopologyError("a topology needs at least one node")
        ids = [node.node_id for node in nodes]
        if ids != list(range(len(nodes))):
            raise TopologyError("node ids must be contiguous 0..n-1 in order")
        self.nodes: List[Node] = list(nodes)
        self.arena = arena
        self._adjacency: Adjacency = {node.node_id: set() for node in nodes}
        self._reverse: Adjacency = {node.node_id: set() for node in nodes}
        self._dirty = True
        self._down: Set[NodeId] = set()
        self._blocked: Set[Edge] = set()
        self._incremental = incremental
        #: set by :mod:`repro.net.manual` for pinned (non-geometric) graphs.
        self._pinned = False
        self.stats = TopologyStats()
        # --- incremental engine state (populated on first build) -------
        self._built = False
        #: vectorize dirty-node edge recomputation with numpy when it is
        #: importable; the spatial-grid path is the pure-Python fallback
        #: (and stays the reference for the vector path in tests).
        self._vector = _np is not None
        self._ax = self._ay = self._ar = self._alive = None
        self._adj_mask = None
        #: _vector_fixups workspace (allocated with the adjacency mirror)
        self._ws_d2 = self._ws_dy = self._ws_mask = self._ws_old = None
        self._ws_smask = self._ws_oldin = self._ws_r2 = self._ws_scol = None
        self._ws_arange = None
        self._dynamic_nodes: Optional[List[Node]] = None
        #: change hint from the vectorized :meth:`advance` fast path:
        #: ``(moved_ids, xs, ys, range_changed_ids, ranges)`` holding the
        #: new values; the mirrors are written only when the hint is
        #: consumed by the refresh.  Any :meth:`invalidate` discards it,
        #: so external mutations always force the full change scan.
        self._advance_hint: Optional[Tuple[list, list, list, list, list]] = None
        #: lazily built hardware classification for the fast path;
        #: ``False`` means some node defies it (custom models) and the
        #: scalar loop is permanent.
        self._advance_state: object = None
        #: motion-only mirrors for :meth:`advance_motion` (position and
        #: range arrays over *all* nodes, kept current every call).
        #: Independent of the incremental engine's px/py/pr mirrors so a
        #: non-incremental topology can advance motion without ever
        #: paying for adjacency state.
        self._m_ax = self._m_ay = self._m_ar = None
        self._cell: Optional[float] = None
        self._grid: Dict[int, Set[NodeId]] = {}
        self._cx: List[int] = []
        self._cy: List[int] = []
        self._px: List[float] = []
        self._py: List[float] = []
        self._pr: List[float] = []
        self._applied_down: Set[NodeId] = set()
        self._applied_blocked: Set[Edge] = set()
        self._sender_grid: Dict[int, Set[NodeId]] = {}
        self._sender_stamp: Dict[NodeId, Tuple[int, int, int, int]] = {}
        # --- edge-delta stream ------------------------------------------
        self._delta_full = True
        self._delta_added: List[Edge] = []
        self._delta_removed: List[Edge] = []
        self._epoch = 0

    # ------------------------------------------------------------------
    # Recomputation
    # ------------------------------------------------------------------

    def invalidate(self) -> None:
        """Mark the cached adjacency stale (after motion or degradation)."""
        self._dirty = True
        self._advance_hint = None
        if self._advance_state is not False:
            # External mutations may have touched positions, velocities
            # or battery levels behind the fast path's mirrors; rebuild
            # them on next use.  ``False`` (unsupported models) sticks:
            # models are fixed at node construction.
            self._advance_state = None

    def recompute(self) -> None:
        """Bring the adjacency up to date with positions and ranges.

        In incremental mode (the default) only nodes whose position,
        effective range, or fault state changed since the last refresh
        have their edges recomputed; nodes marked down
        (:meth:`set_node_down`) have their radios silenced and
        blacked-out links (:meth:`block_edge`) stay suppressed, exactly
        as in the naive rebuild.
        """
        if self._incremental and self._built:
            self._refresh_incremental()
        else:
            self.force_full_rebuild()

    def force_full_rebuild(self) -> None:
        """Rebuild the adjacency from scratch (the reference path)."""
        adjacency = self._compute_adjacency()
        reverse: Adjacency = {node: set() for node in self._adjacency}
        for source, successors in adjacency.items():
            for destination in successors:
                reverse[destination].add(source)
        self._adjacency = adjacency
        self._reverse = reverse
        self._record_full_delta()
        self.stats.full_rebuilds += 1
        self._epoch += 1
        if self._incremental:
            self._init_incremental_state()
        self._applied_down = set(self._down)
        self._applied_blocked = set(self._blocked)
        self._advance_hint = None
        self._dirty = False

    @property
    def incremental(self) -> bool:
        """Whether the incremental engine is active."""
        return self._incremental

    def set_incremental(self, enabled: bool) -> None:
        """Switch engine modes; the next refresh rebuilds from scratch."""
        if enabled != self._incremental:
            self._incremental = enabled
            self._built = False
            self._dirty = True

    def set_vectorized(self, enabled: bool) -> None:
        """Choose between the numpy and spatial-grid refresh paths.

        Both are bit-identical to the naive rebuild; this exists so
        tests exercise the grid path on machines that have numpy, and as
        an escape hatch.  The next refresh rebuilds from scratch.
        """
        if enabled and _np is None:
            raise TopologyError("numpy is not available for the vectorized path")
        if enabled != self._vector:
            self._vector = enabled
            self._built = False
            self._dirty = True

    def _compute_adjacency(self) -> Adjacency:
        """A fresh adjacency from current positions, ranges, and faults.

        This is the naive rebuild-from-scratch algorithm, kept verbatim
        as the semantic ground truth the incremental engine must match.
        """
        ranges = [node.current_range() for node in self.nodes]
        positive = [
            r for node, r in zip(self.nodes, ranges)
            if r > 0.0 and node.node_id not in self._down
        ]
        adjacency: Adjacency = {node.node_id: set() for node in self.nodes}
        if positive:
            cell = sum(positive) / len(positive)
            grid: Dict[Tuple[int, int], List[Node]] = {}
            for node in self.nodes:
                if node.node_id in self._down:
                    continue
                key = (int(node.position.x / cell), int(node.position.y / cell))
                bucket = grid.get(key)
                if bucket is None:
                    grid[key] = [node]
                else:
                    bucket.append(node)
            for node, radius in zip(self.nodes, ranges):
                if radius <= 0.0 or node.node_id in self._down:
                    continue
                successors = adjacency[node.node_id]
                reach = int(radius / cell) + 1
                cx = int(node.position.x / cell)
                cy = int(node.position.y / cell)
                radius_sq = radius * radius
                for ix in range(cx - reach, cx + reach + 1):
                    for iy in range(cy - reach, cy + reach + 1):
                        for other in grid.get((ix, iy), ()):
                            if other is node:
                                continue
                            if (
                                node.position.distance_squared_to(other.position)
                                <= radius_sq
                            ):
                                successors.add(other.node_id)
        if self._blocked:
            for source, destination in self._blocked:
                successors = adjacency.get(source)
                if successors is not None:
                    successors.discard(destination)
        return adjacency

    # ------------------------------------------------------------------
    # Incremental engine
    # ------------------------------------------------------------------

    def _init_incremental_state(self) -> None:
        """(Re)build the persistent caches after a full rebuild."""
        nodes = self.nodes
        n = len(nodes)
        self._px = [node.position.x for node in nodes]
        self._py = [node.position.y for node in nodes]
        self._pr = [node.current_range() for node in nodes]
        if self._vector:
            self._ax = _np.array(self._px, dtype=_np.float64)
            self._ay = _np.array(self._py, dtype=_np.float64)
            self._ar = _np.array(self._pr, dtype=_np.float64)
            self._alive = _np.ones(n, dtype=bool)
            for i in self._down:
                self._alive[i] = False
            # Boolean mirror of the adjacency: lets a refresh diff a
            # recomputed row against the current one entirely in numpy
            # and touch only the (few) actually-changed pairs.  n^2
            # bools is tiny at this library's scales (250 nodes -> 62 kB).
            mask = _np.zeros((n, n), dtype=bool)
            for u, successors in self._adjacency.items():
                if successors:
                    mask[u, list(successors)] = True
            self._adj_mask = mask
            # Preallocated workspace for _vector_fixups: fresh n^2
            # temporaries cost more to allocate than to fill at these
            # sizes, so every per-refresh array op writes into a slice
            # of these instead.
            self._ws_d2 = _np.empty((n, n), dtype=_np.float64)
            self._ws_dy = _np.empty((n, n), dtype=_np.float64)
            self._ws_mask = _np.empty((n, n), dtype=bool)
            self._ws_old = _np.empty((n, n), dtype=bool)
            self._ws_smask = _np.empty((n, n), dtype=bool)
            self._ws_oldin = _np.empty((n, n), dtype=bool)
            self._ws_r2 = _np.empty(n, dtype=_np.float64)
            self._ws_scol = _np.empty(n, dtype=bool)
            self._ws_arange = _np.arange(n)
            self._built = True
            return
        positive = [
            r for i, r in enumerate(self._pr) if r > 0.0 and i not in self._down
        ]
        if not positive:
            # No radios on the air: defer grid construction until a
            # refresh finds a live positive range (falls back to full).
            self._built = False
            return
        self._cell = sum(positive) / len(positive)
        cell = self._cell
        self._cx = [int(x / cell) for x in self._px]
        self._cy = [int(y / cell) for y in self._py]
        grid: Dict[int, Set[NodeId]] = {}
        for i in range(n):
            if i in self._down:
                continue
            key = self._cx[i] * _STRIDE + self._cy[i]
            bucket = grid.get(key)
            if bucket is None:
                grid[key] = {i}
            else:
                bucket.add(i)
        self._grid = grid
        self._sender_grid = {}
        self._sender_stamp = {}
        for i in range(n):
            if i not in self._down:
                self._sender_add(i)
        self._built = True

    def _sender_add(self, v: NodeId) -> None:
        """Stamp ``v``'s coverage disk into the clean-sender grid."""
        cell = self._cell
        r = self._pr[v]
        x, y = self._px[v], self._py[v]
        x0, x1 = int((x - r) / cell), int((x + r) / cell)
        y0, y1 = int((y - r) / cell), int((y + r) / cell)
        self._sender_stamp[v] = (x0, x1, y0, y1)
        grid = self._sender_grid
        for ix in range(x0, x1 + 1):
            base = ix * _STRIDE
            for iy in range(y0, y1 + 1):
                bucket = grid.get(base + iy)
                if bucket is None:
                    grid[base + iy] = {v}
                else:
                    bucket.add(v)

    def _sender_remove(self, v: NodeId) -> None:
        stamp = self._sender_stamp.pop(v, None)
        if stamp is None:
            return
        x0, x1, y0, y1 = stamp
        grid = self._sender_grid
        for ix in range(x0, x1 + 1):
            base = ix * _STRIDE
            for iy in range(y0, y1 + 1):
                bucket = grid.get(base + iy)
                if bucket is not None:
                    bucket.discard(v)
                    if not bucket:
                        del grid[base + iy]

    def _grid_discard(self, u: NodeId) -> None:
        key = self._cx[u] * _STRIDE + self._cy[u]
        bucket = self._grid.get(key)
        if bucket is not None:
            bucket.discard(u)
            if not bucket:
                del self._grid[key]

    def _grid_insert(self, u: NodeId, cx: int, cy: int) -> None:
        key = cx * _STRIDE + cy
        bucket = self._grid.get(key)
        if bucket is None:
            self._grid[key] = {u}
        else:
            bucket.add(u)

    def _refresh_incremental(self) -> None:
        nodes = self.nodes
        n = len(nodes)
        vector = self._vector
        cell = self._cell
        px, py, pr = self._px, self._py, self._pr
        cxs, cys = self._cx, self._cy
        down = self._down
        adjacency = self._adjacency
        reverse = self._reverse
        stats = self.stats
        added: List[Edge] = []
        removed: List[Edge] = []

        # 1. Detect hardware changes (position / effective range).  The
        #    vectorized advance fast path hands them over pre-computed
        #    with their new values; the px/py/pr mirrors are written only
        #    here, so when an external mutation clears the hint via
        #    invalidate() the full scan still sees the stale mirrors and
        #    re-detects every change.
        hint = self._advance_hint
        if hint is not None:
            self._advance_hint = None
            moved, moved_x, moved_y, range_changed, new_ranges = hint
            for i, x, y in zip(moved, moved_x, moved_y):
                px[i] = x
                py[i] = y
            for i, r in zip(range_changed, new_ranges):
                pr[i] = r
        else:
            moved = []
            range_changed = []
            moved_append = moved.append
            range_append = range_changed.append
            for i, node in enumerate(nodes):
                pos = node.position
                x = pos.x
                y = pos.y
                if x != px[i] or y != py[i]:
                    moved_append(i)
                    px[i] = x
                    py[i] = y
                r = node.radio.current_range()
                if r != pr[i]:
                    range_append(i)
                    pr[i] = r
        if vector:
            # Bulk-refresh the float arrays from the (already updated)
            # scalar lists — cheaper than per-element numpy writes.
            if moved:
                self._ax = _np.asarray(px)
                self._ay = _np.asarray(py)
            if range_changed:
                self._ar = _np.asarray(pr)

        # 2. Fault-state transitions since the last applied refresh.
        newly_down = down - self._applied_down
        newly_up = self._applied_down - down
        blocked = self._blocked
        blocked_new = blocked - self._applied_blocked
        unblocked = self._applied_blocked - blocked

        for u in newly_down:
            out = adjacency[u]
            if out:
                for w in out:
                    reverse[w].discard(u)
                    removed.append((u, w))
                adjacency[u] = set()
            ins = reverse[u]
            if ins:
                for v in ins:
                    adjacency[v].discard(u)
                    removed.append((v, u))
                reverse[u] = set()
            if vector:
                self._alive[u] = False
                self._adj_mask[u, :] = False
                self._adj_mask[:, u] = False
            else:
                self._grid_discard(u)
                self._sender_remove(u)

        for u in newly_up:
            if vector:
                self._alive[u] = True
            else:
                cxs[u] = int(px[u] / cell)
                cys[u] = int(py[u] / cell)
                self._grid_insert(u, cxs[u], cys[u])

        # 3. Re-bucket live nodes that crossed a grid-cell boundary.
        if not vector:
            for u in moved:
                if u in down:
                    continue
                ncx = int(px[u] / cell)
                ncy = int(py[u] / cell)
                if ncx != cxs[u] or ncy != cys[u]:
                    self._grid_discard(u)
                    cxs[u] = ncx
                    cys[u] = ncy
                    self._grid_insert(u, ncx, ncy)
                    stats.rebucketed += 1

        # 4. Dirty sets: out_dirty nodes rebuild their out-edges;
        #    in_dirty (position changed) also refresh their in-edges.
        out_dirty: Set[NodeId] = set(newly_up)
        in_dirty: Set[NodeId] = set(newly_up)
        for u in moved:
            if u not in down:
                out_dirty.add(u)
                in_dirty.add(u)
        for u in range_changed:
            if u not in down:
                out_dirty.add(u)

        # 5. Clean-sender grid: dirty nodes leave; yesterday's dirty
        #    nodes that are clean again re-stamp their (current) disks.
        if not vector:
            stamped = self._sender_stamp
            for u in out_dirty:
                if u in stamped:
                    self._sender_remove(u)
            for u in range(n):
                if u not in stamped and u not in down and u not in out_dirty:
                    self._sender_add(u)

        # 6. Link blackout transitions for otherwise-clean sources.
        self._applied_blocked = set(blocked)
        blocked_by_src: Dict[NodeId, Set[NodeId]] = {}
        if blocked:
            for s, t in blocked:
                blocked_by_src.setdefault(s, set()).add(t)
        for s, t in blocked_new:
            if s not in out_dirty and t in adjacency[s]:
                adjacency[s].discard(t)
                reverse[t].discard(s)
                removed.append((s, t))
                if vector:
                    self._adj_mask[s, t] = False
        for s, t in unblocked:
            if s in out_dirty or s in down or t in down:
                continue
            r = pr[s]
            if r > 0.0 and (px[s] - px[t]) ** 2 + (py[s] - py[t]) ** 2 <= r * r:
                adjacency[s].add(t)
                reverse[t].add(s)
                added.append((s, t))
                if vector:
                    self._adj_mask[s, t] = True

        # 7 & 8. Edge recomputation for the dirty sets.
        if vector:
            self._vector_fixups(
                out_dirty, in_dirty, blocked, blocked_by_src, added, removed
            )
        else:
            self._grid_fixups(
                out_dirty, in_dirty, blocked, blocked_by_src, added, removed
            )

        # 9. Commit: delta stream, stats, epoch.
        self._applied_down = set(down)
        if not self._delta_full:
            self._delta_added.extend(added)
            self._delta_removed.extend(removed)
            if len(self._delta_added) + len(self._delta_removed) > _DELTA_CAP:
                self._record_full_delta()
        stats.incremental_refreshes += 1
        stats.dirty_nodes += len(out_dirty)
        stats.edges_added += len(added)
        stats.edges_removed += len(removed)
        self._epoch += 1
        self._dirty = False

    def _grid_fixups(
        self,
        out_dirty: Set[NodeId],
        in_dirty: Set[NodeId],
        blocked: Set[Edge],
        blocked_by_src: Dict[NodeId, Set[NodeId]],
        added: List[Edge],
        removed: List[Edge],
    ) -> None:
        """Pure-Python edge recomputation for the dirty sets.

        Out-edges of dirty nodes come from a scan of the persistent main
        grid; in-edges of moved nodes are fixed up via the reverse index
        (drops) and the clean-sender disk grid (gains).
        """
        adjacency = self._adjacency
        reverse = self._reverse
        px, py, pr = self._px, self._py, self._pr
        cxs, cys = self._cx, self._cy
        cell = self._cell
        grid_get = self._grid.get
        for u in out_dirty:
            r = pr[u]
            if r <= 0.0:
                new_out: Set[NodeId] = set()
            else:
                reach = int(r / cell) + 1
                cx, cy = cxs[u], cys[u]
                rsq = r * r
                x, y = px[u], py[u]
                new_out = set()
                add = new_out.add
                for ix in range(cx - reach, cx + reach + 1):
                    base = ix * _STRIDE
                    for iy in range(cy - reach, cy + reach + 1):
                        bucket = grid_get(base + iy)
                        if bucket:
                            for v in bucket:
                                if v != u and (
                                    (x - px[v]) ** 2 + (y - py[v]) ** 2 <= rsq
                                ):
                                    add(v)
                if blocked:
                    hidden = blocked_by_src.get(u)
                    if hidden:
                        new_out -= hidden
            old_out = adjacency[u]
            if new_out != old_out:
                for w in old_out - new_out:
                    reverse[w].discard(u)
                    removed.append((u, w))
                for w in new_out - old_out:
                    reverse[w].add(u)
                    added.append((u, w))
                adjacency[u] = new_out

        sender_get = self._sender_grid.get
        for u in in_dirty:
            x, y = px[u], py[u]
            ins = reverse[u]
            if ins:
                for v in [v for v in ins if v not in out_dirty]:
                    rv = pr[v]
                    if (px[v] - x) ** 2 + (py[v] - y) ** 2 > rv * rv:
                        adjacency[v].discard(u)
                        ins.discard(v)
                        removed.append((v, u))
            bucket = sender_get(cxs[u] * _STRIDE + cys[u])
            if bucket:
                for v in bucket:
                    if v == u or u in adjacency[v]:
                        continue
                    rv = pr[v]
                    if (px[v] - x) ** 2 + (py[v] - y) ** 2 <= rv * rv:
                        if blocked and (v, u) in blocked:
                            continue
                        adjacency[v].add(u)
                        ins.add(v)
                        added.append((v, u))

    def _vector_fixups(
        self,
        out_dirty: Set[NodeId],
        in_dirty: Set[NodeId],
        blocked: Set[Edge],
        blocked_by_src: Dict[NodeId, Set[NodeId]],
        added: List[Edge],
        removed: List[Edge],
    ) -> None:
        """Vectorized edge recomputation for the dirty sets.

        One ``dirty x all-nodes`` block gives the out-edges of every
        dirty node; one ``clean-senders x moved`` block gives the
        in-edges of moved nodes from otherwise-clean senders.  Each
        element evaluates the same ``(xu-xv)**2 + (yu-yv)**2 <= r**2``
        predicate in IEEE float64 that the scalar paths use, so the
        resulting edge sets are bit-identical.  The recomputed blocks
        are diffed against the boolean adjacency mirror wholly in
        numpy, so Python-level work scales with the number of *changed*
        edges, not with the dirty block's area.
        """
        if not out_dirty:
            return
        adjacency = self._adjacency
        reverse = self._reverse
        ax, ay, ar = self._ax, self._ay, self._ar
        alive = self._alive
        adj_mask = self._adj_mask
        dirty_list = sorted(out_dirty)
        d = len(dirty_list)
        idx = _np.fromiter(dirty_list, dtype=_np.int64, count=d)
        # dist²(dirty, all), built in place in the preallocated
        # workspace: (x_v - x_u)² + (y_v - y_u)² is bit-identical to
        # (x_u - x_v)² + ... (IEEE negation is exact), so one block
        # serves both the out- and in-edge predicates below.
        d2 = _np.subtract(ax, ax[idx][:, None], out=self._ws_d2[:d])
        _np.multiply(d2, d2, out=d2)
        dy = _np.subtract(ay, ay[idx][:, None], out=self._ws_dy[:d])
        _np.multiply(dy, dy, out=dy)
        _np.add(d2, dy, out=d2)
        radius = ar[idx]
        mask = _np.less_equal(d2, (radius * radius)[:, None], out=self._ws_mask[:d])
        if self._down:
            _np.logical_and(mask, alive, out=mask)
        mask[radius <= 0.0, :] = False
        mask[self._ws_arange[:d], idx] = False  # no self-loops
        if blocked:
            for i, u in enumerate(dirty_list):
                hidden = blocked_by_src.get(u)
                if hidden:
                    mask[i, list(hidden)] = False
        old_rows = _np.take(adj_mask, idx, axis=0, out=self._ws_old[:d])
        # flatnonzero on the contiguous bool diff is ~10x cheaper than
        # 2-D nonzero; recover (row, col) from the flat index instead.
        n = len(self.nodes)
        _np.logical_xor(mask, old_rows, out=old_rows)
        flat = _np.flatnonzero(old_rows)
        if flat.size:
            fi = flat // n
            fw = flat - fi * n
            bits = mask[fi, fw]
            for i, w, bit in zip(fi.tolist(), fw.tolist(), bits.tolist()):
                u = dirty_list[i]
                if bit:
                    adjacency[u].add(w)
                    reverse[w].add(u)
                    added.append((u, w))
                else:
                    adjacency[u].discard(w)
                    reverse[w].discard(u)
                    removed.append((u, w))
        adj_mask[idx] = mask

        if not in_dirty:
            return
        # In-edges of moved receivers from clean senders: reuse the same
        # dist² rows (distance is symmetric), compared against each
        # *sender's* range this time.  Dirty senders were handled above,
        # so their columns are masked out of both sides of the diff.
        recv_list = sorted(in_dirty)
        if recv_list == dirty_list:
            rows = d2
            ridx = idx
        else:  # in_dirty is a subset of out_dirty by construction
            ridx = _np.fromiter(recv_list, dtype=_np.int64, count=len(recv_list))
            rows = d2[_np.searchsorted(idx, ridx)]
        dr = len(recv_list)
        r2 = _np.multiply(ar, ar, out=self._ws_r2)
        # [j, v]: v's radio covers receiver j
        smask = _np.less_equal(rows, r2, out=self._ws_smask[:dr])
        sender_cols = _np.greater(ar, 0.0, out=self._ws_scol)
        if self._down:
            _np.logical_and(sender_cols, alive, out=sender_cols)
        sender_cols[idx] = False
        _np.logical_and(smask, sender_cols, out=smask)
        if blocked:
            recv_pos = {u: j for j, u in enumerate(recv_list)}
            for v, u in blocked:
                j = recv_pos.get(u)
                if j is not None:
                    smask[j, v] = False
        # [j, v] = edge v->recv_j now (strided gather from the transpose)
        old_in = _np.take(adj_mask.T, ridx, axis=0, out=self._ws_oldin[:dr])
        _np.logical_and(old_in, sender_cols, out=old_in)
        _np.logical_xor(smask, old_in, out=old_in)
        flat = _np.flatnonzero(old_in)
        if flat.size:
            fj = flat // n
            fv = flat - fj * n
            bits = smask[fj, fv]
            for j, v, bit in zip(fj.tolist(), fv.tolist(), bits.tolist()):
                u = recv_list[j]
                if bit:
                    adjacency[v].add(u)
                    reverse[u].add(v)
                    added.append((v, u))
                    adj_mask[v, u] = True
                else:
                    adjacency[v].discard(u)
                    reverse[u].discard(v)
                    removed.append((v, u))
                    adj_mask[v, u] = False

    def _record_full_delta(self) -> None:
        self._delta_full = True
        self._delta_added = []
        self._delta_removed = []

    def _install_adjacency(self, adjacency: Adjacency) -> None:
        """Adopt an externally computed adjacency (pinned topologies).

        Diffs against the current state so the reverse index, the delta
        stream, and the stats counters stay truthful.
        """
        old = self._adjacency
        reverse = self._reverse
        added: List[Edge] = []
        removed: List[Edge] = []
        for u, new_out in adjacency.items():
            old_out = old[u]
            if new_out == old_out:
                continue
            for w in old_out - new_out:
                reverse[w].discard(u)
                removed.append((u, w))
            for w in new_out - old_out:
                reverse[w].add(u)
                added.append((u, w))
        self._adjacency = adjacency
        if self._adj_mask is not None:
            for u, w in added:
                self._adj_mask[u, w] = True
            for u, w in removed:
                self._adj_mask[u, w] = False
        if not self._delta_full:
            self._delta_added.extend(added)
            self._delta_removed.extend(removed)
            if len(self._delta_added) + len(self._delta_removed) > _DELTA_CAP:
                self._record_full_delta()
        self.stats.edges_added += len(added)
        self.stats.edges_removed += len(removed)
        self._applied_down = set(self._down)
        self._applied_blocked = set(self._blocked)
        self._epoch += 1
        self._dirty = False

    def _current(self) -> Adjacency:
        if self._dirty:
            self.recompute()
        return self._adjacency

    # ------------------------------------------------------------------
    # Edge-delta stream
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Monotonic refresh counter (bumped on every applied refresh)."""
        return self._epoch

    def take_edge_delta(self) -> TopologyDelta:
        """Drain the edge changes accumulated since the previous drain.

        Refreshes the adjacency first, so the drained delta includes the
        current step.  The stream starts (and restarts after any full
        rebuild or overflow) with a ``full=True`` flush marker.
        """
        self._current()
        delta = TopologyDelta(
            full=self._delta_full,
            added=self._delta_added,
            removed=self._delta_removed,
        )
        self._delta_full = False
        self._delta_added = []
        self._delta_removed = []
        return delta

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    @property
    def node_ids(self) -> range:
        """All node ids (contiguous)."""
        return range(len(self.nodes))

    def node(self, node_id: NodeId) -> Node:
        """The node object with id ``node_id``."""
        try:
            return self.nodes[node_id]
        except IndexError:
            raise TopologyError(f"no node with id {node_id}") from None

    def out_neighbors(self, node_id: NodeId) -> Set[NodeId]:
        """Nodes currently reachable in one hop *from* ``node_id``.

        The returned set is the live internal one — treat it as read-only.
        """
        adjacency = self._current()
        if node_id not in adjacency:
            raise TopologyError(f"no node with id {node_id}")
        return adjacency[node_id]

    def in_neighbors(self, node_id: NodeId) -> Set[NodeId]:
        """Nodes that can currently reach ``node_id`` in one hop.

        Served from the maintained reverse-adjacency index in
        O(in-degree); the returned set is the live internal one — treat
        it as read-only.
        """
        self._current()
        if node_id not in self._reverse:
            raise TopologyError(f"no node with id {node_id}")
        return self._reverse[node_id]

    def has_edge(self, source: NodeId, destination: NodeId) -> bool:
        """Whether the directed link ``source -> destination`` exists now.

        Unknown ids raise :class:`~repro.errors.TopologyError`, matching
        :meth:`out_neighbors` / :meth:`in_neighbors` — an id typo must
        never read as "no link".
        """
        adjacency = self._current()
        if source not in adjacency:
            raise TopologyError(f"no node with id {source}")
        if destination not in adjacency:
            raise TopologyError(f"no node with id {destination}")
        return destination in adjacency[source]

    def edges(self) -> Iterator[Edge]:
        """Iterate all current directed edges in deterministic order."""
        adjacency = self._current()
        for source in sorted(adjacency):
            for destination in sorted(adjacency[source]):
                yield (source, destination)

    def edge_set(self) -> FrozenSet[Edge]:
        """All current directed edges as a frozen set."""
        return frozenset(self.edges())

    @property
    def edge_count(self) -> int:
        """Number of current directed edges."""
        return edge_count(self._current())

    def adjacency_copy(self) -> Adjacency:
        """A deep copy of the current adjacency (safe to mutate)."""
        return {node: set(successors) for node, successors in self._current().items()}

    def adjacency_view(self) -> Adjacency:
        """The live current adjacency mapping — treat it as read-only.

        For hot loops that would otherwise call :meth:`out_neighbors`
        per node: one refresh check up front, then plain dict lookups.
        The mapping and its sets are the engine's own state; the view is
        only valid until the next refresh.
        """
        return self._current()

    def is_strongly_connected(self) -> bool:
        """Whether every node can currently reach every other node."""
        return is_strongly_connected(self._current())

    @property
    def gateway_ids(self) -> List[NodeId]:
        """Ids of *live* gateway nodes, ascending.

        A crashed gateway is off the air: it must not anchor routes or
        count as an attachment point until it recovers.
        """
        return [
            node.node_id
            for node in self.nodes
            if node.is_gateway and node.node_id not in self._down
        ]

    @property
    def all_gateway_ids(self) -> List[NodeId]:
        """Ids of every gateway node, up or down, ascending."""
        return [node.node_id for node in self.nodes if node.is_gateway]

    # ------------------------------------------------------------------
    # Consistency checking
    # ------------------------------------------------------------------

    def consistency_problems(self) -> List[str]:
        """Cross-validate the engine's internal indices; [] when sound.

        Checks that the reverse index mirrors the adjacency exactly and
        — for geometric (non-pinned) topologies — that the maintained
        adjacency is bit-identical to a fresh rebuild-from-scratch
        computation.  Wired into the runtime invariant checker.
        """
        problems: List[str] = []
        adjacency = self._current()
        reverse = self._reverse
        for u, outs in adjacency.items():
            for w in outs:
                if u not in reverse.get(w, ()):
                    problems.append(
                        f"reverse index missing edge {u}->{w}"
                    )
        for w, ins in reverse.items():
            for u in ins:
                if w not in adjacency.get(u, ()):
                    problems.append(
                        f"reverse index has phantom edge {u}->{w}"
                    )
        if not self._pinned:
            expected = self._compute_adjacency()
            if expected != adjacency:
                for u in expected:
                    missing = expected[u] - adjacency.get(u, set())
                    phantom = adjacency.get(u, set()) - expected[u]
                    for w in sorted(missing):
                        problems.append(
                            f"incremental adjacency missing edge {u}->{w}"
                        )
                    for w in sorted(phantom):
                        problems.append(
                            f"incremental adjacency has phantom edge {u}->{w}"
                        )
        return problems

    # ------------------------------------------------------------------
    # Fault state
    # ------------------------------------------------------------------

    @property
    def down_ids(self) -> FrozenSet[NodeId]:
        """Ids of nodes currently marked down (crashed)."""
        return frozenset(self._down)

    def is_down(self, node_id: NodeId) -> bool:
        """Whether ``node_id`` is currently crashed."""
        return node_id in self._down

    def set_node_down(self, node_id: NodeId) -> bool:
        """Crash ``node_id``: silence its radio until :meth:`set_node_up`.

        Returns whether the state changed (crashing a dead node is a
        no-op, so fault plans are idempotent).
        """
        self.node(node_id)  # validate the id
        if node_id in self._down:
            return False
        self._down.add(node_id)
        self.invalidate()
        return True

    def set_node_up(self, node_id: NodeId) -> bool:
        """Recover a crashed node; returns whether the state changed."""
        self.node(node_id)
        if node_id not in self._down:
            return False
        self._down.discard(node_id)
        self.invalidate()
        return True

    def block_edge(self, source: NodeId, destination: NodeId) -> bool:
        """Black out the directed link ``source -> destination``.

        The link stays suppressed across recomputes until
        :meth:`unblock_edge`; returns whether the state changed.
        """
        self.node(source)
        self.node(destination)
        edge = (source, destination)
        if edge in self._blocked:
            return False
        self._blocked.add(edge)
        self.invalidate()
        return True

    def unblock_edge(self, source: NodeId, destination: NodeId) -> bool:
        """Lift a link blackout; returns whether the state changed."""
        edge = (source, destination)
        if edge not in self._blocked:
            return False
        self._blocked.discard(edge)
        self.invalidate()
        return True

    @property
    def blocked_edges(self) -> FrozenSet[Edge]:
        """Currently blacked-out directed links."""
        return frozenset(self._blocked)

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------

    def advance(self) -> None:
        """Advance every node one step (battery + motion) and invalidate.

        Nodes with static hardware — stationary mobility and a drainless
        battery — are skipped: for them :meth:`Node.advance` is a no-op
        by construction, and on mixed networks half the fleet is static.
        The partition is computed once (mobility and battery objects are
        fixed at node construction; faults mutate their state, never
        replace them).

        When every node's hardware is built from the stock models, the
        vectorized fast path below advances batteries and straight-line
        motion as array operations — bit-identical element-wise, since
        IEEE adds, subtracts and clamps carry over exactly — and hands
        the refresh a pre-computed change hint so it can skip its O(n)
        scan.  The fast path requires a clean (just-refreshed) topology:
        any pending :meth:`invalidate` means external state may have
        drifted, so that step takes the scalar loop and the full scan.
        """
        dynamic = self._dynamic_nodes
        if dynamic is None:
            dynamic = [
                node
                for node in self.nodes
                if not (
                    isinstance(node.mobility, Stationary)
                    and isinstance(node.battery._drain_model, NoDrain)
                )
            ]
            self._dynamic_nodes = dynamic
        if not self._dirty and self._vector and self._incremental and self._built:
            state = self._advance_state
            if state is None:
                state = self._advance_state = _classify_hardware(
                    self.nodes, dynamic
                )
            if state is not False:
                self._advance_fast(state)
                return
        arena = self.arena
        for node in dynamic:
            node.advance(arena)
        self.invalidate()

    def _advance_fast(self, state: "_AdvanceState") -> None:
        """Vectorized battery drain + straight-line motion with handover.

        Updates the node objects and leaves the change lists *with their
        new values* in ``_advance_hint`` for the next refresh; the
        px/py/pr mirrors are only written when the hint is consumed, so
        a cleared hint (external invalidate) leaves the scan able to
        re-detect every move against the un-touched mirrors.  Nodes that
        would cross the arena boundary this step are delegated to the
        scalar mobility model (reflection flips the stored velocity,
        which only the model itself may mutate).
        """
        self._advance_hint = self._advance_kinematics(state, self._pr)
        self._dirty = True

    def _advance_kinematics(
        self, state: "_AdvanceState", pr
    ) -> Tuple[list, list, list, list, list]:
        """Vectorized battery drain + motion; returns the change hint.

        ``pr`` is the previous-range lookup (node id -> last known
        range) used to suppress no-op range reports — the incremental
        engine passes its ``_pr`` list, :meth:`advance_motion` its own
        range array.  The node objects are updated in place; the hint
        ``(moved_ids, xs, ys, range_changed_ids, ranges)`` carries the
        new values for whichever mirror the caller maintains.
        """
        moved: List[NodeId] = []
        moved_x: List[float] = []
        moved_y: List[float] = []
        range_changed: List[NodeId] = []
        new_ranges: List[float] = []
        arena = self.arena
        movers = state.movers
        if movers:
            mover_ids = state.mover_ids
            mx, my = state.mx, state.my
            x = mx + state.vx
            y = my + state.vy
            oob = (x < 0.0) | (x > arena.width) | (y < 0.0) | (y > arena.height)
            changed = (x != mx) | (y != my)
            has_oob = bool(oob.any())
            if has_oob:
                changed &= ~oob
            xs = x.tolist()
            ys = y.tolist()
            for k in _np.flatnonzero(changed).tolist():
                i = mover_ids[k]
                nx = xs[k]
                ny = ys[k]
                movers[k].position = Point(nx, ny)
                moved.append(i)
                moved_x.append(nx)
                moved_y.append(ny)
            if has_oob:
                inb = ~oob
                _np.copyto(mx, x, where=inb)
                _np.copyto(my, y, where=inb)
                vx, vy = state.vx, state.vy
                for k in _np.flatnonzero(oob).tolist():
                    node = movers[k]
                    mob = node.mobility
                    pos = mob.move(node.position, arena)
                    node.position = pos
                    if pos.x != mx[k] or pos.y != my[k]:
                        i = mover_ids[k]
                        moved.append(i)
                        moved_x.append(pos.x)
                        moved_y.append(pos.y)
                    mx[k] = pos.x
                    my[k] = pos.y
                    # reflection may have flipped the stored velocity
                    vx[k] = mob._vx
                    vy[k] = mob._vy
            else:
                mx[:] = x
                my[:] = y
        for group in state.drain_groups:
            levels = group.levels
            if group.kind == "linear":
                _np.subtract(levels, group.param, out=levels)
            else:  # exponential
                _np.multiply(levels, group.param, out=levels)
            _np.maximum(levels, 0.0, out=levels)
            _np.minimum(levels, 1.0, out=levels)
            lv = levels.tolist()
            for battery, level in zip(group.batteries, lv):
                battery._level = level
            # Inlined BatteryCoupledRange.current_range(): the scaled
            # value is never negative (base > 0, level >= 0), so the
            # floor clamp below is bit-identical to max(floor, scaled).
            for k, i, base, exponent, floor in group.coupled:
                r = base * (lv[k] ** exponent)
                if r < floor:
                    r = floor
                if r != pr[i]:
                    range_changed.append(i)
                    new_ranges.append(r)
        return (moved, moved_x, moved_y, range_changed, new_ranges)

    def _init_motion_mirrors(self) -> None:
        nodes = self.nodes
        self._m_ax = _np.array([node.position.x for node in nodes], dtype=float)
        self._m_ay = _np.array([node.position.y for node in nodes], dtype=float)
        self._m_ar = _np.array([node.current_range() for node in nodes], dtype=float)

    def motion_state(self):
        """Current ``(x, y, range)`` float arrays over all nodes, by id.

        The arrays are the live motion mirrors maintained by
        :meth:`advance_motion` — callers must treat them as read-only
        snapshots that change in place on the next advance.  Requires
        numpy (the sharded runtime does too).
        """
        if _np is None:  # pragma: no cover - numpy ships with the toolchain
            raise TopologyError("motion_state requires numpy")
        if self._m_ax is None:
            self._init_motion_mirrors()
        return self._m_ax, self._m_ay, self._m_ar

    def advance_motion(self) -> None:
        """Advance batteries and motion only, leaving adjacency unbuilt.

        The sharded runtime owns adjacency per spatial tile, so the
        per-step cost it wants from the topology is *exactly* the
        kinematics: node positions, velocities, battery levels and
        coupled ranges — never the O(n) change scan or any edge state.
        Runs the same vectorized update as :meth:`advance` (bit-identical
        to the scalar :meth:`Node.advance` loop) and folds the change
        hint straight into the :meth:`motion_state` arrays.  The
        adjacency is marked stale; a later :meth:`recompute` (if anyone
        asks) starts from scratch.
        """
        if _np is None:  # pragma: no cover - numpy ships with the toolchain
            raise TopologyError("advance_motion requires numpy")
        dynamic = self._dynamic_nodes
        if dynamic is None:
            dynamic = [
                node
                for node in self.nodes
                if not (
                    isinstance(node.mobility, Stationary)
                    and isinstance(node.battery._drain_model, NoDrain)
                )
            ]
            self._dynamic_nodes = dynamic
        if self._m_ax is None:
            self._init_motion_mirrors()
        state = self._advance_state
        if state is None:
            state = self._advance_state = _classify_hardware(self.nodes, dynamic)
        if state is not False:
            moved, moved_x, moved_y, range_changed, new_ranges = (
                self._advance_kinematics(state, self._m_ar)
            )
            if moved:
                self._m_ax[moved] = moved_x
                self._m_ay[moved] = moved_y
            if range_changed:
                self._m_ar[range_changed] = new_ranges
        else:
            arena = self.arena
            for node in dynamic:
                node.advance(arena)
            self._init_motion_mirrors()
        self._dirty = True
        self._built = False
        self._advance_hint = None
