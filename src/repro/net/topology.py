"""The link topology induced by node positions and radio ranges.

There is a directed link ``u -> v`` iff ``v`` lies within ``u``'s current
radio range.  With Minar-style homogeneous radios this relation is
symmetric; with the paper's heterogeneous (and battery-shrinking) ranges
it generally is not, giving the directed graph of §II-A.

:class:`Topology` recomputes the adjacency on demand — the routing world
recomputes every step as nodes move; the mapping world recomputes only
when a degradation event fires.  Recomputation uses a uniform spatial
grid so the cost is near-linear in the number of nodes for realistic
densities instead of the naive O(n^2).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterator, List, Sequence, Set, Tuple

from repro.errors import TopologyError
from repro.net.geometry import Arena
from repro.net.graphutils import Adjacency, edge_count, is_strongly_connected
from repro.net.node import Node
from repro.types import Edge, NodeId

__all__ = ["Topology"]


class Topology:
    """Directed wireless topology over a fixed set of nodes."""

    def __init__(self, nodes: Sequence[Node], arena: Arena) -> None:
        if not nodes:
            raise TopologyError("a topology needs at least one node")
        ids = [node.node_id for node in nodes]
        if ids != list(range(len(nodes))):
            raise TopologyError("node ids must be contiguous 0..n-1 in order")
        self.nodes: List[Node] = list(nodes)
        self.arena = arena
        self._adjacency: Adjacency = {node.node_id: set() for node in nodes}
        self._dirty = True
        self._down: Set[NodeId] = set()
        self._blocked: Set[Edge] = set()

    # ------------------------------------------------------------------
    # Recomputation
    # ------------------------------------------------------------------

    def invalidate(self) -> None:
        """Mark the cached adjacency stale (after motion or degradation)."""
        self._dirty = True

    def recompute(self) -> None:
        """Rebuild the adjacency from current positions and ranges.

        Nodes marked down (:meth:`set_node_down`) have their radios
        silenced: they emit no links and appear in nobody's neighbour
        set.  Blacked-out links (:meth:`block_edge`) are removed last.
        """
        ranges = [node.current_range() for node in self.nodes]
        positive = [
            r for node, r in zip(self.nodes, ranges)
            if r > 0.0 and node.node_id not in self._down
        ]
        adjacency: Adjacency = {node.node_id: set() for node in self.nodes}
        if positive:
            cell = sum(positive) / len(positive)
            grid: Dict[Tuple[int, int], List[Node]] = defaultdict(list)
            for node in self.nodes:
                if node.node_id in self._down:
                    continue
                grid[self._cell_of(node, cell)].append(node)
            for node, radius in zip(self.nodes, ranges):
                if radius <= 0.0 or node.node_id in self._down:
                    continue
                successors = adjacency[node.node_id]
                reach = int(radius / cell) + 1
                cx, cy = self._cell_of(node, cell)
                radius_sq = radius * radius
                for ix in range(cx - reach, cx + reach + 1):
                    for iy in range(cy - reach, cy + reach + 1):
                        for other in grid.get((ix, iy), ()):
                            if other is node:
                                continue
                            if (
                                node.position.distance_squared_to(other.position)
                                <= radius_sq
                            ):
                                successors.add(other.node_id)
        if self._blocked:
            for source, destination in self._blocked:
                successors = adjacency.get(source)
                if successors is not None:
                    successors.discard(destination)
        self._adjacency = adjacency
        self._dirty = False

    @staticmethod
    def _cell_of(node: Node, cell: float) -> Tuple[int, int]:
        return (int(node.position.x / cell), int(node.position.y / cell))

    def _current(self) -> Adjacency:
        if self._dirty:
            self.recompute()
        return self._adjacency

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    @property
    def node_ids(self) -> range:
        """All node ids (contiguous)."""
        return range(len(self.nodes))

    def node(self, node_id: NodeId) -> Node:
        """The node object with id ``node_id``."""
        try:
            return self.nodes[node_id]
        except IndexError:
            raise TopologyError(f"no node with id {node_id}") from None

    def out_neighbors(self, node_id: NodeId) -> Set[NodeId]:
        """Nodes currently reachable in one hop *from* ``node_id``.

        The returned set is the live internal one — treat it as read-only.
        """
        adjacency = self._current()
        if node_id not in adjacency:
            raise TopologyError(f"no node with id {node_id}")
        return adjacency[node_id]

    def in_neighbors(self, node_id: NodeId) -> Set[NodeId]:
        """Nodes that can currently reach ``node_id`` in one hop."""
        adjacency = self._current()
        if node_id not in adjacency:
            raise TopologyError(f"no node with id {node_id}")
        return {u for u, succs in adjacency.items() if node_id in succs}

    def has_edge(self, source: NodeId, destination: NodeId) -> bool:
        """Whether the directed link ``source -> destination`` exists now."""
        return destination in self._current().get(source, ())

    def edges(self) -> Iterator[Edge]:
        """Iterate all current directed edges in deterministic order."""
        adjacency = self._current()
        for source in sorted(adjacency):
            for destination in sorted(adjacency[source]):
                yield (source, destination)

    def edge_set(self) -> FrozenSet[Edge]:
        """All current directed edges as a frozen set."""
        return frozenset(self.edges())

    @property
    def edge_count(self) -> int:
        """Number of current directed edges."""
        return edge_count(self._current())

    def adjacency_copy(self) -> Adjacency:
        """A deep copy of the current adjacency (safe to mutate)."""
        return {node: set(successors) for node, successors in self._current().items()}

    def is_strongly_connected(self) -> bool:
        """Whether every node can currently reach every other node."""
        return is_strongly_connected(self._current())

    @property
    def gateway_ids(self) -> List[NodeId]:
        """Ids of *live* gateway nodes, ascending.

        A crashed gateway is off the air: it must not anchor routes or
        count as an attachment point until it recovers.
        """
        return [
            node.node_id
            for node in self.nodes
            if node.is_gateway and node.node_id not in self._down
        ]

    @property
    def all_gateway_ids(self) -> List[NodeId]:
        """Ids of every gateway node, up or down, ascending."""
        return [node.node_id for node in self.nodes if node.is_gateway]

    # ------------------------------------------------------------------
    # Fault state
    # ------------------------------------------------------------------

    @property
    def down_ids(self) -> FrozenSet[NodeId]:
        """Ids of nodes currently marked down (crashed)."""
        return frozenset(self._down)

    def is_down(self, node_id: NodeId) -> bool:
        """Whether ``node_id`` is currently crashed."""
        return node_id in self._down

    def set_node_down(self, node_id: NodeId) -> bool:
        """Crash ``node_id``: silence its radio until :meth:`set_node_up`.

        Returns whether the state changed (crashing a dead node is a
        no-op, so fault plans are idempotent).
        """
        self.node(node_id)  # validate the id
        if node_id in self._down:
            return False
        self._down.add(node_id)
        self.invalidate()
        return True

    def set_node_up(self, node_id: NodeId) -> bool:
        """Recover a crashed node; returns whether the state changed."""
        self.node(node_id)
        if node_id not in self._down:
            return False
        self._down.discard(node_id)
        self.invalidate()
        return True

    def block_edge(self, source: NodeId, destination: NodeId) -> bool:
        """Black out the directed link ``source -> destination``.

        The link stays suppressed across recomputes until
        :meth:`unblock_edge`; returns whether the state changed.
        """
        self.node(source)
        self.node(destination)
        edge = (source, destination)
        if edge in self._blocked:
            return False
        self._blocked.add(edge)
        self.invalidate()
        return True

    def unblock_edge(self, source: NodeId, destination: NodeId) -> bool:
        """Lift a link blackout; returns whether the state changed."""
        edge = (source, destination)
        if edge not in self._blocked:
            return False
        self._blocked.discard(edge)
        self.invalidate()
        return True

    @property
    def blocked_edges(self) -> FrozenSet[Edge]:
        """Currently blacked-out directed links."""
        return frozenset(self._blocked)

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------

    def advance(self) -> None:
        """Advance every node one step (battery + motion) and invalidate."""
        for node in self.nodes:
            node.advance(self.arena)
        self.invalidate()
