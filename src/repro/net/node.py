"""The network node.

A :class:`Node` is purely physical: a position, a radio, a battery and a
mobility model.  Per the paper "the nodes themselves run no programs; all
topology mapping relies on the operation of the agents" (§III-A) — so
agent state (footprint boards) and routing tables are *not* node
attributes; they live in the stigmergy and routing substrates keyed by
node id.  That also keeps this module free of upward dependencies.
"""

from __future__ import annotations

from typing import Optional

from repro.net.battery import Battery, NoDrain
from repro.net.geometry import Arena, Point
from repro.net.mobility import MobilityModel, Stationary
from repro.net.radio import RadioModel
from repro.types import NodeId

__all__ = ["Node"]


class Node:
    """One wireless node: identity, position, radio, battery, mobility."""

    def __init__(
        self,
        node_id: NodeId,
        position: Point,
        radio: RadioModel,
        battery: Optional[Battery] = None,
        mobility: Optional[MobilityModel] = None,
        is_gateway: bool = False,
    ) -> None:
        self.node_id = node_id
        self.position = position
        self.radio = radio
        self.battery = battery if battery is not None else Battery(NoDrain())
        self.mobility = mobility if mobility is not None else Stationary()
        self.is_gateway = is_gateway
        # Drain models are fixed at construction (faults mutate battery
        # *level*, never the model), so a drainless battery can skip the
        # per-step no-op drain dispatch in :meth:`advance`.
        self._battery_drains = not isinstance(
            self.battery._drain_model, NoDrain
        )

    @property
    def is_mobile(self) -> bool:
        """Whether this node's mobility model can actually move it."""
        return not isinstance(self.mobility, Stationary)

    def current_range(self) -> float:
        """Effective radio range right now (may shrink with battery)."""
        return self.radio.current_range()

    def can_reach(self, other: "Node") -> bool:
        """Whether a directed link ``self -> other`` exists right now."""
        radius = self.current_range()
        return self.position.distance_squared_to(other.position) <= radius * radius

    def advance(self, arena: Arena) -> None:
        """Advance one step: drain the battery, then move."""
        if self._battery_drains:
            self.battery.step()
        self.position = self.mobility.move(self.position, arena)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "gateway" if self.is_gateway else "node"
        return (
            f"Node({self.node_id}, {kind}, pos=({self.position.x:.1f}, "
            f"{self.position.y:.1f}), range={self.current_range():.1f})"
        )
