"""Node mobility models.

The routing scenario gives "random velocity to half of the nodes"
(§III-A).  :class:`RandomVelocity` draws each node a speed from a range
and a random heading, then moves it in a straight line, bouncing off the
arena boundary — links break and reform as nodes drift in and out of each
other's radio ranges.  :class:`RandomWaypoint` is included as the other
classic MANET model for experiments beyond the paper's; the mapping
scenario uses :class:`Stationary`.
"""

from __future__ import annotations

import math
import random
from typing import Protocol

from repro.errors import ConfigurationError
from repro.net.geometry import Arena, Point

__all__ = ["MobilityModel", "Stationary", "RandomVelocity", "RandomWaypoint"]


class MobilityModel(Protocol):
    """Strategy yielding a node's next position each step."""

    def move(self, position: Point, arena: Arena) -> Point:
        """Return the position after one time step from ``position``."""
        ...


class Stationary:
    """The node never moves (mapping scenario, gateways)."""

    def move(self, position: Point, arena: Arena) -> Point:
        return position


class RandomVelocity:
    """Constant-speed straight-line motion with boundary bounce.

    The speed is drawn once (per node) from ``[min_speed, max_speed]`` and
    the initial heading uniformly from ``[0, 2*pi)`` — this is the paper's
    "random velocity" assignment.  On hitting an arena wall the velocity
    component normal to the wall is reflected.
    """

    def __init__(self, rng: random.Random, min_speed: float, max_speed: float) -> None:
        if min_speed < 0 or max_speed < min_speed:
            raise ConfigurationError(
                f"need 0 <= min_speed <= max_speed, got [{min_speed}, {max_speed}]"
            )
        self.speed = rng.uniform(min_speed, max_speed)
        heading = rng.uniform(0.0, 2.0 * math.pi)
        self._vx = self.speed * math.cos(heading)
        self._vy = self.speed * math.sin(heading)

    @property
    def velocity(self) -> Point:
        """Current velocity vector as a :class:`Point` (dx, dy per step)."""
        return Point(self._vx, self._vy)

    #: bound on reflections per axis per step — a node can cross the
    #: arena at most speed/dimension times, so this is never reached for
    #: any sane speed; it guards termination for adversarial configs.
    _MAX_REFLECTIONS = 10_000

    def move(self, position: Point, arena: Arena) -> Point:
        x = position.x + self._vx
        y = position.y + self._vy
        # Reflect until back in bounds: a speed larger than an arena
        # dimension can overshoot past the far wall, so one bounce per
        # axis is not enough (it used to pin such nodes to a wall).
        for __ in range(self._MAX_REFLECTIONS):
            if x < 0.0:
                x = -x
                self._vx = -self._vx
            elif x > arena.width:
                x = 2.0 * arena.width - x
                self._vx = -self._vx
            else:
                break
        for __ in range(self._MAX_REFLECTIONS):
            if y < 0.0:
                y = -y
                self._vy = -self._vy
            elif y > arena.height:
                y = 2.0 * arena.height - y
                self._vy = -self._vy
            else:
                break
        # The reflection loops leave (x, y) inside the arena already, so
        # clamping would be an identity — skip the extra Point.
        return Point(x, y)


class RandomWaypoint:
    """Classic random-waypoint mobility: pick a target, walk to it, repeat.

    ``pause`` steps are spent at each waypoint before choosing the next.
    """

    def __init__(
        self,
        rng: random.Random,
        min_speed: float,
        max_speed: float,
        pause: int = 0,
    ) -> None:
        if min_speed <= 0 or max_speed < min_speed:
            raise ConfigurationError(
                f"need 0 < min_speed <= max_speed, got [{min_speed}, {max_speed}]"
            )
        if pause < 0:
            raise ConfigurationError(f"pause must be >= 0, got {pause}")
        self._rng = rng
        self._min_speed = min_speed
        self._max_speed = max_speed
        self._pause = pause
        self._target: Point | None = None
        self._speed = 0.0
        self._pause_left = 0

    def move(self, position: Point, arena: Arena) -> Point:
        if self._pause_left > 0:
            self._pause_left -= 1
            return position
        if self._target is None:
            self._target = arena.random_point(self._rng)
            self._speed = self._rng.uniform(self._min_speed, self._max_speed)
        remaining = position.distance_to(self._target)
        if remaining <= self._speed:
            arrived = self._target
            self._target = None
            self._pause_left = self._pause
            return arrived
        fraction = self._speed / remaining
        return Point(
            position.x + (self._target.x - position.x) * fraction,
            position.y + (self._target.y - position.y) * fraction,
        )
