"""Battery model.

The paper assumes mobile nodes "run on battery power … their power will
decrease during the experiment and as a result their radio range
decreases as time goes by" (§III-A).  A :class:`Battery` holds a charge
level in ``[0, 1]`` and a drain model describing how the level decays per
simulation step.  The radio layer couples range to the current level via
:class:`~repro.net.radio.BatteryCoupledRange`.
"""

from __future__ import annotations

import math
from typing import Protocol

from repro.errors import ConfigurationError

__all__ = ["DrainModel", "NoDrain", "LinearDrain", "ExponentialDrain", "Battery"]


class DrainModel(Protocol):
    """Strategy describing per-step battery decay."""

    def drain(self, level: float) -> float:
        """Return the new level given the current ``level`` (both in [0,1])."""
        ...


class NoDrain:
    """Mains-powered: the level never changes (gateways, static nodes)."""

    def drain(self, level: float) -> float:
        return level


class LinearDrain:
    """Loses a fixed amount of charge per step."""

    def __init__(self, per_step: float) -> None:
        if per_step < 0:
            raise ConfigurationError(f"drain per step must be >= 0, got {per_step}")
        self.per_step = per_step

    def drain(self, level: float) -> float:
        return max(0.0, level - self.per_step)


class ExponentialDrain:
    """Loses a fixed *fraction* of the remaining charge per step."""

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"drain rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._keep = 1.0 - rate

    def drain(self, level: float) -> float:
        return level * self._keep


class Battery:
    """A node's energy store: a level in ``[0, 1]`` plus a drain model."""

    def __init__(self, drain_model: DrainModel, level: float = 1.0) -> None:
        if not 0.0 <= level <= 1.0:
            raise ConfigurationError(f"battery level must be in [0, 1], got {level}")
        self._drain_model = drain_model
        self._level = level

    @property
    def level(self) -> float:
        """Current charge fraction in ``[0, 1]``."""
        return self._level

    @property
    def depleted(self) -> bool:
        """Whether the battery is (numerically) empty."""
        return math.isclose(self._level, 0.0, abs_tol=1e-12) or self._level <= 0.0

    def step(self) -> float:
        """Apply one step of drain; return the new level."""
        self._level = min(1.0, max(0.0, self._drain_model.drain(self._level)))
        return self._level

    def shock(self, amount: float) -> float:
        """Instantly lose ``amount`` of charge (a fault-model event).

        Models sudden energy loss — a damaged cell, a cold snap, a burst
        of transmission — as opposed to the gradual drain model.
        Returns the new level.
        """
        if not 0.0 < amount <= 1.0:
            raise ConfigurationError(f"shock amount must be in (0, 1], got {amount}")
        self._level = max(0.0, self._level - amount)
        return self._level

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Battery(level={self._level:.3f})"
