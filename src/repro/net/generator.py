"""Random geometric network generators with paper-scale presets.

The paper evaluates mapping on "a single connected network consisting of
300 nodes with 2164 edges" and routing on a 250-node MANET with 12
gateways, half the nodes mobile.  The exact layouts are unpublished, so
these generators sample seeded random geometric networks matched on node
count, edge count (±tolerance) and gateway count; every experiment then
averages over 40 seeds exactly as the paper averages over 40 runs.

The mapping generator binary-searches a global range scale until the
directed edge count hits the target, then keeps resampling placements
until the result is strongly connected (a requirement for "perfect
knowledge" to be attainable by agents walking out-edges).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.errors import ConfigurationError, GenerationError
from repro.net.battery import Battery, LinearDrain, NoDrain
from repro.net.geometry import Arena, Point
from repro.net.mobility import RandomVelocity, Stationary
from repro.net.node import Node
from repro.net.radio import BatteryCoupledRange, HeterogeneousRange
from repro.net.topology import Topology
from repro.rng import SeedSpawner

__all__ = [
    "GeneratorConfig",
    "NetworkGenerator",
    "MAPPING_PRESET",
    "MANET_PRESET",
    "generate_mapping_network",
    "generate_manet_network",
]


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters for one generated network.

    ``range_heterogeneity`` is the paper's asymmetric-radio knob: each
    node's base range is ``scale * U(1 - h, 1 + h)``; ``h = 0`` recovers
    Minar's symmetric environment.  ``degraded_fraction`` marks that
    fraction of nodes as battery-degraded (their range multiplied by
    ``1 - degradation_amount``) — the mapping world can apply this at
    generation time or mid-run via a scheduled event.
    """

    node_count: int = 300
    arena_width: float = 1000.0
    arena_height: float = 1000.0
    target_edges: Optional[int] = 2164
    edge_tolerance: int = 60
    range_heterogeneity: float = 0.3
    require_strong_connectivity: bool = True
    max_attempts: int = 40
    # --- MANET-only knobs -------------------------------------------
    gateway_count: int = 0
    gateway_range_multiplier: float = 1.6
    mobile_fraction: float = 0.0
    min_speed: float = 2.0
    max_speed: float = 12.0
    battery_drain_per_step: float = 1.0 / 1200.0
    battery_range_floor_fraction: float = 0.35
    degraded_fraction: float = 0.0
    degradation_amount: float = 0.3

    def __post_init__(self) -> None:
        if self.node_count < 2:
            raise ConfigurationError(f"need >= 2 nodes, got {self.node_count}")
        if not 0.0 <= self.range_heterogeneity < 1.0:
            raise ConfigurationError(
                f"range_heterogeneity must be in [0, 1), got {self.range_heterogeneity}"
            )
        if not 0.0 <= self.mobile_fraction <= 1.0:
            raise ConfigurationError(
                f"mobile_fraction must be in [0, 1], got {self.mobile_fraction}"
            )
        if self.gateway_count < 0 or self.gateway_count >= self.node_count:
            raise ConfigurationError(
                f"gateway_count must be in [0, node_count), got {self.gateway_count}"
            )
        if not 0.0 <= self.degraded_fraction <= 1.0:
            raise ConfigurationError(
                f"degraded_fraction must be in [0, 1], got {self.degraded_fraction}"
            )
        if not 0.0 <= self.degradation_amount < 1.0:
            raise ConfigurationError(
                f"degradation_amount must be in [0, 1), got {self.degradation_amount}"
            )


#: Paper §II-B: mapping network of 300 nodes and 2164 directed edges.
MAPPING_PRESET = GeneratorConfig()

#: Paper §III: 250-node MANET, 12 gateways, half the nodes mobile.
MANET_PRESET = GeneratorConfig(
    node_count=250,
    target_edges=None,
    range_heterogeneity=0.25,
    require_strong_connectivity=False,
    gateway_count=12,
    mobile_fraction=0.5,
)


class NetworkGenerator:
    """Builds seeded :class:`~repro.net.topology.Topology` instances."""

    def __init__(self, config: GeneratorConfig, seed: int) -> None:
        self.config = config
        self._spawner = SeedSpawner(seed).child("netgen")

    # ------------------------------------------------------------------
    # Static mapping networks
    # ------------------------------------------------------------------

    def generate_static(self) -> Topology:
        """A static network matching ``target_edges`` (if set).

        Each attempt places nodes, fits the global range scale to the edge
        target, then — because the target density sits near the geometric
        connectivity threshold — *repairs* strong connectivity by boosting
        the radio ranges of nodes stranded outside the giant component.
        Among repaired attempts the one whose edge count lands closest to
        the target wins; raises :class:`GenerationError` only when no
        attempt could be made strongly connected at all.
        """
        config = self.config
        arena = Arena(config.arena_width, config.arena_height)
        best: Optional[Topology] = None
        best_error = float("inf")
        for attempt in range(config.max_attempts):
            rng = self._spawner.stream(f"placement:{attempt}")
            positions = [arena.random_point(rng) for __ in range(config.node_count)]
            h = config.range_heterogeneity
            factors = [rng.uniform(1.0 - h, 1.0 + h) for __ in range(config.node_count)]
            scale = self._fit_scale(arena, positions, factors)
            topology = self._build_static(arena, positions, factors, scale, rng)
            if config.require_strong_connectivity:
                if not _repair_strong_connectivity(topology):
                    continue
            if config.target_edges is None:
                return topology
            error = abs(topology.edge_count - config.target_edges)
            if error <= config.edge_tolerance:
                return topology
            if error < best_error:
                best, best_error = topology, error
        if best is not None:
            # No attempt hit the tolerance exactly after repair; the
            # closest strongly-connected network is still a faithful
            # stand-in for the paper's unpublished layout.
            return best
        raise GenerationError(
            f"could not generate a satisfying network in {config.max_attempts} attempts "
            f"(nodes={config.node_count}, target_edges={config.target_edges})"
        )

    def _fit_scale(
        self, arena: Arena, positions: List[Point], factors: List[float]
    ) -> float:
        """Binary-search the global range scale hitting ``target_edges``."""
        config = self.config
        if config.target_edges is None:
            # Without an edge target use a density heuristic: mean degree 7.
            return self._scale_for_mean_degree(arena, 7.0)
        low, high = 0.0, arena.diagonal()
        for __ in range(48):
            mid = (low + high) / 2.0
            edges = self._count_edges(positions, factors, mid)
            if edges < config.target_edges:
                low = mid
            else:
                high = mid
            if abs(edges - config.target_edges) <= config.edge_tolerance // 2:
                return mid
        return (low + high) / 2.0

    def _scale_for_mean_degree(self, arena: Arena, mean_degree: float) -> float:
        # E[degree] ~= density * pi * r^2  =>  r = sqrt(k * A / (pi * n)).
        import math

        area = arena.width * arena.height
        return math.sqrt(mean_degree * area / (math.pi * self.config.node_count))

    @staticmethod
    def _count_edges(positions: List[Point], factors: List[float], scale: float) -> int:
        count = 0
        for i, (pos, factor) in enumerate(zip(positions, factors)):
            radius_sq = (scale * factor) ** 2
            for j, other in enumerate(positions):
                if i != j and pos.distance_squared_to(other) <= radius_sq:
                    count += 1
        return count

    def _build_static(
        self,
        arena: Arena,
        positions: List[Point],
        factors: List[float],
        scale: float,
        rng,
    ) -> Topology:
        config = self.config
        degraded = set()
        if config.degraded_fraction > 0.0:
            k = int(round(config.degraded_fraction * config.node_count))
            degraded = set(rng.sample(range(config.node_count), k))
        nodes = []
        for node_id, (position, factor) in enumerate(zip(positions, factors)):
            radio = HeterogeneousRange(scale * factor)
            if node_id in degraded:
                radio.degrade(config.degradation_amount)
            nodes.append(Node(node_id, position, radio))
        topology = Topology(nodes, arena)
        topology.recompute()
        return topology

    # ------------------------------------------------------------------
    # Dynamic MANET networks
    # ------------------------------------------------------------------

    def generate_manet(self, incremental: bool = True) -> Topology:
        """A MANET: gateways + static nodes + battery-powered mobile nodes.

        ``incremental=False`` skips the incremental adjacency engine and
        its O(n²) workspaces — the sharded runtime recomputes adjacency
        per spatial tile and only wants the node fleet, so at 10k+ nodes
        the difference is gigabytes.
        """
        config = self.config
        arena = Arena(config.arena_width, config.arena_height)
        rng = self._spawner.stream("manet:placement")
        base_scale = self._scale_for_mean_degree(arena, 7.0)
        h = config.range_heterogeneity

        mobile_count = int(round(config.mobile_fraction * config.node_count))
        non_gateway = config.node_count - config.gateway_count
        mobile_count = min(mobile_count, non_gateway)
        # Ids: gateways first, then static nodes, then mobile nodes.  The
        # fixed layout keeps runs comparable across parameter settings, as
        # the paper fixes "the same configuration and movement path".
        nodes: List[Node] = []
        for node_id in range(config.node_count):
            position = arena.random_point(rng)
            factor = rng.uniform(1.0 - h, 1.0 + h)
            if node_id < config.gateway_count:
                radio = HeterogeneousRange(
                    base_scale * factor * config.gateway_range_multiplier
                )
                nodes.append(Node(node_id, position, radio, is_gateway=True))
            elif node_id < config.gateway_count + (non_gateway - mobile_count):
                radio = HeterogeneousRange(base_scale * factor)
                nodes.append(Node(node_id, position, radio))
            else:
                battery = Battery(LinearDrain(config.battery_drain_per_step))
                base = base_scale * factor
                radio = BatteryCoupledRange(
                    base,
                    battery,
                    floor=base * config.battery_range_floor_fraction,
                )
                mobility = RandomVelocity(
                    self._spawner.stream(f"manet:mobility:{node_id}"),
                    config.min_speed,
                    config.max_speed,
                )
                nodes.append(
                    Node(node_id, position, radio, battery=battery, mobility=mobility)
                )
        topology = Topology(nodes, arena, incremental=incremental)
        if incremental:
            # Sharded consumers never read this topology's adjacency, so
            # leave it unbuilt; any later accessor recomputes on demand.
            topology.recompute()
        return topology


def _repair_strong_connectivity(topology: Topology, max_rounds: int = 60) -> bool:
    """Boost stranded nodes' radios until the digraph is strongly connected.

    Each round finds the largest strongly connected component and, for
    every node outside it, enlarges that node's range (creating out-edges
    toward the component) and the range of its nearest component member
    (creating an in-edge back).  Returns whether repair succeeded within
    ``max_rounds``.
    """
    from repro.net.graphutils import strongly_connected_components

    for __ in range(max_rounds):
        adjacency = topology.adjacency_copy()
        components = strongly_connected_components(adjacency)
        if len(components) <= 1:
            return True
        giant = max(components, key=len)
        stranded = [n for n in topology.node_ids if n not in giant]
        for node_id in stranded:
            node = topology.node(node_id)
            _boost(node)
            nearest = min(
                giant,
                key=lambda g: node.position.distance_squared_to(
                    topology.node(g).position
                ),
            )
            _boost(topology.node(nearest))
        topology.invalidate()
    return topology.is_strongly_connected()


def _boost(node: Node, factor: float = 1.15) -> None:
    """Enlarge a node's base radio range by ``factor``."""
    radio = node.radio
    if isinstance(radio, HeterogeneousRange):
        radio.base *= factor
    elif isinstance(radio, BatteryCoupledRange):
        radio.base *= factor


def generate_mapping_network(seed: int, config: Optional[GeneratorConfig] = None) -> Topology:
    """Convenience wrapper: a static mapping network (paper preset default)."""
    return NetworkGenerator(config or MAPPING_PRESET, seed).generate_static()


def generate_manet_network(seed: int, config: Optional[GeneratorConfig] = None) -> Topology:
    """Convenience wrapper: a dynamic MANET (paper preset default)."""
    base = config or MANET_PRESET
    if base.gateway_count == 0:
        base = replace(base, gateway_count=MANET_PRESET.gateway_count)
    return NetworkGenerator(base, seed).generate_manet()
