"""Bundle export: one reproducible artifact per finished job.

A bundle packages everything a finished job produced — the normalized
spec, the run manifest (carrying the spec fingerprint), every saved
:class:`~repro.experiments.report.ExperimentReport`, and the optional
metrics/trace artifacts — into a single directory or ``.tar.gz`` that
can be archived, attached to a paper, or re-rendered years later with
``repro report``.  ``load_bundle`` round-trips the whole thing:
reports come back through the same
:func:`~repro.experiments.persistence.load_report` path the CLI uses,
and the index is verified against the files actually present.
"""

from __future__ import annotations

import json
import pathlib
import shutil
import tarfile
import tempfile
from typing import Dict, List, Union

from repro.errors import ExperimentError
from repro.experiments.persistence import load_report
from repro.experiments.report import ExperimentReport

__all__ = ["BUNDLE_SCHEMA", "export_bundle", "load_bundle"]

#: bumped when the bundle layout changes incompatibly.
BUNDLE_SCHEMA = 1

#: job artifacts copied into the bundle root when present.
_OPTIONAL_FILES = ("metrics.json", "trace.jsonl")


def _read_json(path: pathlib.Path, what: str) -> dict:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ExperimentError(f"cannot read {what} at {path}: {error}") from None
    if not isinstance(payload, dict):
        raise ExperimentError(f"{what} at {path} is not a JSON object")
    return payload


def export_bundle(
    job_dir: Union[str, pathlib.Path],
    out: Union[str, pathlib.Path],
) -> pathlib.Path:
    """Package a finished job directory into ``out``.

    ``out`` ending in ``.tar.gz``/``.tgz`` produces a tarball, anything
    else a directory.  The bundle's ``bundle.json`` index lists every
    packaged file and carries the spec fingerprint from the manifest, so
    a bundle is self-describing even outside its service directory.
    """
    job_dir = pathlib.Path(job_dir)
    manifest_path = job_dir / "manifest.json"
    spec_path = job_dir / "spec.json"
    reports_dir = job_dir / "reports"
    if not manifest_path.exists() or not reports_dir.is_dir():
        raise ExperimentError(
            f"{job_dir} is not a finished job directory "
            "(manifest.json and reports/ required); did the job complete?"
        )
    manifest = _read_json(manifest_path, "job manifest")
    service_block = manifest.get("service", {})

    out = pathlib.Path(out)
    as_tar = out.name.endswith((".tar.gz", ".tgz"))

    report_files = sorted(
        path.relative_to(job_dir).as_posix()
        for path in reports_dir.rglob("*.json")
    )
    if not report_files:
        raise ExperimentError(f"{job_dir} has no saved reports to bundle")
    files: List[str] = ["manifest.json"] + report_files
    if spec_path.exists():
        files.append("spec.json")
    for name in _OPTIONAL_FILES:
        if (job_dir / name).exists():
            files.append(name)
    svg_files = sorted(
        path.relative_to(job_dir).as_posix()
        for path in reports_dir.rglob("*.svg")
    )
    files.extend(svg_files)

    index = {
        "schema": BUNDLE_SCHEMA,
        "spec_fingerprint": service_block.get("spec_fingerprint"),
        "job_id": service_block.get("job_id"),
        "spec_name": service_block.get("spec_name"),
        "config_hash": manifest.get("config_hash"),
        "files": sorted(files),
        "reports": report_files,
    }

    def populate(root: pathlib.Path) -> None:
        for rel in files:
            target = root / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            shutil.copy2(job_dir / rel, target)
        (root / "bundle.json").write_text(
            json.dumps(index, indent=2, sort_keys=True) + "\n"
        )

    if as_tar:
        out.parent.mkdir(parents=True, exist_ok=True)
        with tempfile.TemporaryDirectory(prefix="repro-bundle-") as staging:
            stage_root = pathlib.Path(staging) / "bundle"
            stage_root.mkdir()
            populate(stage_root)
            with tarfile.open(out, "w:gz") as tar:
                # a stable arcname so extraction yields one tidy folder.
                tar.add(stage_root, arcname=out.name.split(".tar")[0].split(".tgz")[0])
    else:
        out.mkdir(parents=True, exist_ok=True)
        populate(out)
    return out


def _extract_tar(path: pathlib.Path, dest: pathlib.Path) -> pathlib.Path:
    try:
        with tarfile.open(path, "r:gz") as tar:
            try:
                tar.extractall(dest, filter="data")
            except TypeError:  # pragma: no cover - pre-3.11.4 fallback
                tar.extractall(dest)  # noqa: S202 - bundle we just opened
    except (OSError, tarfile.TarError) as error:
        raise ExperimentError(f"cannot extract bundle {path}: {error}") from None
    roots = [child for child in dest.iterdir() if child.is_dir()]
    if len(roots) == 1 and not (dest / "bundle.json").exists():
        return roots[0]
    return dest


def load_bundle(path: Union[str, pathlib.Path]) -> Dict[str, object]:
    """Re-load an exported bundle (directory or tarball).

    Returns ``{"index", "manifest", "spec", "reports"}`` where
    ``reports`` maps each unit label to its re-loaded
    :class:`ExperimentReport`.  Raises
    :class:`~repro.errors.ExperimentError` when the index disagrees
    with the files actually present — a truncated copy fails loudly.
    """
    path = pathlib.Path(path)
    if path.is_file():
        with tempfile.TemporaryDirectory(prefix="repro-bundle-") as scratch:
            root = _extract_tar(path, pathlib.Path(scratch))
            return _load_bundle_dir(root)
    return _load_bundle_dir(path)


def _load_bundle_dir(root: pathlib.Path) -> Dict[str, object]:
    index = _read_json(root / "bundle.json", "bundle index")
    if index.get("schema") != BUNDLE_SCHEMA:
        raise ExperimentError(
            f"bundle {root} has unsupported schema {index.get('schema')!r} "
            f"(expected {BUNDLE_SCHEMA})"
        )
    missing = [rel for rel in index.get("files", []) if not (root / rel).exists()]
    if missing:
        raise ExperimentError(
            f"bundle {root} is incomplete; missing: {', '.join(missing)}"
        )
    manifest = _read_json(root / "manifest.json", "bundle manifest")
    spec = (
        _read_json(root / "spec.json", "bundle spec")
        if (root / "spec.json").exists()
        else None
    )
    reports: Dict[str, ExperimentReport] = {}
    for rel in index.get("reports", []):
        rel_path = pathlib.PurePosixPath(rel)
        # reports/<label>/<experiment_id>.json
        label = rel_path.parent.name
        reports[label] = load_report(root / rel)
    return {"index": index, "manifest": manifest, "spec": spec, "reports": reports}
