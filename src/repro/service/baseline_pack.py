"""Calibrated baseline packs: expected-metric envelopes per scenario.

A baseline pack is a checked-in JSON file (like ``BENCH_substrate.json``
for the perf substrate) holding, per expanded sweep unit, the headline
metrics its report is expected to produce: the mean and final value of
every series plus the table shape.  Since every run is seed-driven and
deterministic, the envelope is tight — the tolerance only absorbs
floating-point drift across platforms, not run-to-run noise.

``repro calibrate SPEC --out PACK`` regenerates a pack by running the
spec directly; the drift check (run automatically by the service for
any job whose spec names a ``baseline_pack``, and by the CI smoke)
flags runs whose metrics left the envelope — the earliest possible
signal that a refactor changed simulation outcomes.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Dict, List, Mapping, Union

from repro.errors import ExperimentError
from repro.experiments.report import ExperimentReport

__all__ = [
    "PACK_SCHEMA",
    "DEFAULT_TOLERANCE",
    "metrics_from_report",
    "build_pack",
    "save_pack",
    "load_pack",
    "check_report",
    "check_drift",
]

#: bumped when the pack layout changes incompatibly.
PACK_SCHEMA = 1

#: relative tolerance absorbing cross-platform float drift only —
#: same-seed runs on one machine reproduce the baseline exactly.
DEFAULT_TOLERANCE = 0.05


def metrics_from_report(report: ExperimentReport) -> Dict[str, float]:
    """The headline metric envelope of one report.

    Every series contributes its mean and final value; the table
    contributes its shape.  All values are plain floats so packs diff
    cleanly in review.
    """
    metrics: Dict[str, float] = {
        "table.rows": float(len(report.rows)),
        "table.columns": float(len(report.columns)),
    }
    for name, series in report.series.items():
        values = series.values
        if values:
            metrics[f"series.{name}.mean"] = math.fsum(values) / len(values)
            metrics[f"series.{name}.final"] = float(values[-1])
        else:
            metrics[f"series.{name}.mean"] = 0.0
            metrics[f"series.{name}.final"] = 0.0
    return metrics


def build_pack(
    name: str,
    spec_fingerprint: str,
    reports: Mapping[str, ExperimentReport],
    tolerance: float = DEFAULT_TOLERANCE,
) -> dict:
    """Assemble a pack from one calibration run's reports (label-keyed)."""
    if tolerance <= 0:
        raise ExperimentError(f"pack tolerance must be > 0, got {tolerance}")
    return {
        "schema": PACK_SCHEMA,
        "name": name,
        "tolerance": tolerance,
        "spec_fingerprint": spec_fingerprint,
        "experiments": {
            label: {
                "experiment_id": report.experiment_id,
                "metrics": metrics_from_report(report),
            }
            for label, report in sorted(reports.items())
        },
    }


def save_pack(pack: dict, path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write a pack as pretty sorted JSON (diff-friendly); returns path."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(pack, indent=2, sort_keys=True) + "\n")
    return target


def load_pack(path: Union[str, pathlib.Path]) -> dict:
    """Load and sanity-check a pack written by :func:`save_pack`."""
    try:
        pack = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ExperimentError(f"cannot load baseline pack {path}: {error}") from None
    if not isinstance(pack, dict) or pack.get("schema") != PACK_SCHEMA:
        raise ExperimentError(
            f"baseline pack {path} has unsupported schema "
            f"{pack.get('schema') if isinstance(pack, dict) else pack!r} "
            f"(expected {PACK_SCHEMA})"
        )
    if not isinstance(pack.get("experiments"), dict):
        raise ExperimentError(f"baseline pack {path} has no 'experiments' block")
    return pack


def check_report(
    pack: dict, label: str, report: ExperimentReport
) -> List[str]:
    """Drift violations of one labelled report against the pack.

    A violation is any metric outside the relative tolerance band, a
    metric present on one side only, or a label the pack has never been
    calibrated for.  Returns an empty list when the report is in
    envelope.
    """
    entry = pack["experiments"].get(label)
    if entry is None:
        known = ", ".join(sorted(pack["experiments"])) or "(none)"
        return [f"{label}: not in baseline pack (calibrated labels: {known})"]
    tolerance = float(pack.get("tolerance", DEFAULT_TOLERANCE))
    expected = entry.get("metrics", {})
    measured = metrics_from_report(report)
    violations: List[str] = []
    for metric in sorted(set(expected) | set(measured)):
        if metric not in expected:
            violations.append(f"{label}: metric {metric!r} missing from pack")
            continue
        if metric not in measured:
            violations.append(f"{label}: metric {metric!r} missing from run")
            continue
        base = float(expected[metric])
        value = float(measured[metric])
        band = tolerance * max(abs(base), 1e-9)
        if abs(value - base) > band:
            violations.append(
                f"{label}: {metric} = {value:.6g} outside "
                f"{base:.6g} +/- {band:.3g}"
            )
    return violations


def check_drift(
    pack: dict, reports: Mapping[str, ExperimentReport]
) -> List[str]:
    """Drift violations of a whole job's reports against the pack."""
    violations: List[str] = []
    for label, report in sorted(reports.items()):
        violations.extend(check_report(pack, label, report))
    return violations
