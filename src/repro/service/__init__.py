"""The experiment service layer: specs, job queue, baselines, bundles.

The service plane turns ad-hoc experiment invocations into first-class,
reproducible objects:

* :mod:`repro.service.spec` — the declarative scenario/sweep DSL
  (JSON/YAML-loadable, schema-validated, fingerprinted, grid-expanding);
* :mod:`repro.service.queue` — the crash-safe priority job queue;
* :mod:`repro.service.service` — the worker pool executing specs
  through the hardened checkpoint/resume runner;
* :mod:`repro.service.baseline_pack` — calibrated expected-metric
  envelopes with drift checking;
* :mod:`repro.service.export_bundle` — single-artifact result export.

The CLI front ends are ``repro submit / jobs / serve / cancel /
export / calibrate``.
"""

from repro.service.baseline_pack import (
    build_pack,
    check_drift,
    load_pack,
    metrics_from_report,
    save_pack,
)
from repro.service.export_bundle import export_bundle, load_bundle
from repro.service.queue import Job, JobQueue
from repro.service.service import (
    ExperimentService,
    JobCancelled,
    build_unit_defaults,
    execute_spec,
)
from repro.service.spec import (
    SweepLimits,
    SweepOutputs,
    SweepSpec,
    SweepUnit,
    load_spec,
    spec_from_dict,
)

__all__ = [
    "SweepSpec",
    "SweepUnit",
    "SweepLimits",
    "SweepOutputs",
    "spec_from_dict",
    "load_spec",
    "Job",
    "JobQueue",
    "ExperimentService",
    "JobCancelled",
    "execute_spec",
    "build_unit_defaults",
    "metrics_from_report",
    "build_pack",
    "save_pack",
    "load_pack",
    "check_drift",
    "export_bundle",
    "load_bundle",
]
