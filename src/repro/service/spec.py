"""Declarative scenario/sweep specs: the service layer's input language.

A :class:`SweepSpec` is a plain, JSON/YAML-loadable description of a
family of experiment runs: which registered experiments, at which scale,
over which master seeds, under which fault/loss/traffic/adversary
overlays, with which resource limits.  It replaces per-experiment
argument plumbing — any sweep a ``repro run`` invocation can express
(and grids thereof) is one schema-validated document that can be
submitted to the job queue, calibrated into a baseline pack, and
exported inside a result bundle.

Specs are **fingerprinted**: a stable hash over exactly the fields that
decide simulation outcomes (experiments, scale, runs, seeds, overlays —
*not* limits, outputs, or cosmetic fields).  Two specs with equal
fingerprints describe the same logical sweep, so the fingerprint keys
baseline packs and rides in every exported bundle's manifest.

Overlay values may be lists, which become **grid axes**: the spec
expands into the cartesian product of experiments x seeds x overlay
grids, one :class:`SweepUnit` per cell.  Expansion order is
deterministic (experiments, then seeds, then axes in canonical overlay
order), so unit labels are stable across machines and reruns.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import pathlib
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.experiments.config import DEFAULT_MASTER_SEED, PAPER, QUICK, Scale

__all__ = [
    "SPEC_SCHEMA",
    "OVERLAY_KEYS",
    "SweepLimits",
    "SweepOutputs",
    "SweepUnit",
    "SweepSpec",
    "spec_from_dict",
    "load_spec",
]

#: bumped when the spec layout changes incompatibly.
SPEC_SCHEMA = 1

#: the scales a spec may name.
SCALES: Dict[str, Scale] = {"quick": QUICK, "paper": PAPER}

#: every overlay key, in canonical (expansion) order.  String-spec
#: overlays reuse the CLI's parsers; boolean overlays are flags.
OVERLAY_KEYS: Tuple[str, ...] = (
    "faults",
    "loss",
    "traffic",
    "adversary",
    "route_ttl",
    "quarantine",
    "check_invariants",
)

#: overlay keys whose values may be lists (grid axes).
_GRID_KEYS = frozenset({"faults", "loss", "traffic", "adversary", "route_ttl"})

_TOP_KEYS = frozenset(
    {
        "schema",
        "name",
        "description",
        "experiments",
        "scale",
        "runs",
        "seeds",
        "overlays",
        "limits",
        "outputs",
        "baseline_pack",
        "priority",
    }
)


@dataclass(frozen=True)
class SweepLimits:
    """Resource limits for executing one spec (not fingerprinted)."""

    workers: int = 1
    task_timeout: Optional[float] = None
    task_retries: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "workers": self.workers,
            "task_timeout": self.task_timeout,
            "task_retries": self.task_retries,
        }


@dataclass(frozen=True)
class SweepOutputs:
    """Which optional artifacts a job writes besides its reports."""

    metrics: bool = False
    trace: bool = False
    svg: bool = False

    def to_dict(self) -> dict:
        return {"metrics": self.metrics, "trace": self.trace, "svg": self.svg}


@dataclass(frozen=True)
class SweepUnit:
    """One expanded cell of a spec's grid: a single experiment sweep."""

    experiment_id: str
    scale_name: str
    runs: Optional[int]
    seed: int
    #: scalar overlay values for this cell, canonical key order.
    overlays: Tuple[Tuple[str, Any], ...]
    #: stable slug naming this unit's report directory.
    label: str

    @property
    def overlay_dict(self) -> Dict[str, Any]:
        return dict(self.overlays)

    def scale(self) -> Scale:
        """The concrete :class:`Scale` (runs override applied)."""
        scale = SCALES[self.scale_name]
        if self.runs is not None and self.runs != scale.runs:
            scale = replace(scale, runs=self.runs)
        return scale


@dataclass(frozen=True)
class SweepSpec:
    """A validated, fingerprintable scenario/sweep description."""

    name: str
    experiments: Tuple[str, ...]
    scale_name: str = "quick"
    runs: Optional[int] = None
    seeds: Tuple[int, ...] = (DEFAULT_MASTER_SEED,)
    overlays: Tuple[Tuple[str, Any], ...] = ()
    limits: SweepLimits = field(default_factory=SweepLimits)
    outputs: SweepOutputs = field(default_factory=SweepOutputs)
    baseline_pack: Optional[str] = None
    priority: int = 0
    description: str = ""

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """The normalized JSON-safe form (round-trips via
        :func:`spec_from_dict`)."""
        return {
            "schema": SPEC_SCHEMA,
            "name": self.name,
            "description": self.description,
            "experiments": list(self.experiments),
            "scale": self.scale_name,
            "runs": self.runs,
            "seeds": list(self.seeds),
            "overlays": {
                key: (list(value) if isinstance(value, tuple) else value)
                for key, value in self.overlays
            },
            "limits": self.limits.to_dict(),
            "outputs": self.outputs.to_dict(),
            "baseline_pack": self.baseline_pack,
            "priority": self.priority,
        }

    def fingerprint(self) -> str:
        """A stable 16-hex-digit hash of the result-shaping fields.

        Limits, outputs, priority, name and description are excluded —
        they change how (or how visibly) a sweep runs, never what its
        reports contain.
        """
        payload = json.dumps(
            {
                "schema": SPEC_SCHEMA,
                "experiments": list(self.experiments),
                "scale": self.scale_name,
                "runs": self.runs,
                "seeds": list(self.seeds),
                "overlays": [
                    [key, list(value) if isinstance(value, tuple) else value]
                    for key, value in self.overlays
                ],
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    # ------------------------------------------------------------------
    # Grid expansion
    # ------------------------------------------------------------------

    def grid_axes(self) -> List[Tuple[str, List[Any]]]:
        """The overlay keys that fan out, with their value lists."""
        return [
            (key, list(value))
            for key, value in self.overlays
            if isinstance(value, tuple)
        ]

    def expand(self) -> List[SweepUnit]:
        """Every (experiment, seed, overlay-combination) unit, in order."""
        scalars = [
            (key, value)
            for key, value in self.overlays
            if not isinstance(value, tuple)
        ]
        axes = self.grid_axes()
        combos = list(itertools.product(*(values for _, values in axes))) or [()]
        units: List[SweepUnit] = []
        for experiment_id in self.experiments:
            for seed in self.seeds:
                for index, combo in enumerate(combos):
                    cell = dict(scalars)
                    for (key, _), value in zip(axes, combo):
                        cell[key] = value
                    ordered = tuple(
                        (key, cell[key]) for key in OVERLAY_KEYS if key in cell
                    )
                    label = f"{experiment_id}-s{seed}"
                    if len(combos) > 1:
                        label += f"-g{index}"
                    units.append(
                        SweepUnit(
                            experiment_id=experiment_id,
                            scale_name=self.scale_name,
                            runs=self.runs,
                            seed=seed,
                            overlays=ordered,
                            label=label,
                        )
                    )
        return units


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


def _fail(message: str) -> None:
    raise ConfigurationError(f"invalid sweep spec: {message}")


def _check_overlay_value(key: str, value: Any) -> Any:
    """Validate one scalar overlay value by parsing it like the CLI would."""
    if key in ("faults", "loss", "traffic", "adversary"):
        if not isinstance(value, str) or not value:
            _fail(f"overlay {key!r} takes a non-empty spec string, got {value!r}")
        try:
            if key == "faults":
                from repro.faults.plan import parse_fault_plan

                parse_fault_plan(value)
            elif key == "loss":
                from repro.net.channel import parse_channel_spec

                parse_channel_spec(value)
            elif key == "traffic":
                from repro.traffic.plane import parse_traffic_spec

                parse_traffic_spec(value)
            else:
                from repro.faults.plan import parse_adversary_spec

                parse_adversary_spec(value)
        except Exception as error:
            _fail(f"overlay {key!r} spec {value!r} does not parse: {error}")
    elif key == "route_ttl":
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            _fail(f"overlay 'route_ttl' takes an int >= 1, got {value!r}")
    elif key in ("quarantine", "check_invariants"):
        if not isinstance(value, bool):
            _fail(f"overlay {key!r} takes a boolean, got {value!r}")
    return value


def _normalize_overlays(payload: Any) -> Tuple[Tuple[str, Any], ...]:
    if payload is None:
        return ()
    if not isinstance(payload, dict):
        _fail(f"'overlays' must be a mapping, got {type(payload).__name__}")
    unknown = set(payload) - set(OVERLAY_KEYS)
    if unknown:
        _fail(
            f"unknown overlay key(s) {sorted(unknown)}; "
            f"valid: {', '.join(OVERLAY_KEYS)}"
        )
    normalized: List[Tuple[str, Any]] = []
    for key in OVERLAY_KEYS:
        if key not in payload:
            continue
        value = payload[key]
        if isinstance(value, list):
            if key not in _GRID_KEYS:
                _fail(f"overlay {key!r} cannot be a grid axis (list)")
            if not value:
                _fail(f"overlay {key!r} grid axis is empty")
            normalized.append(
                (key, tuple(_check_overlay_value(key, v) for v in value))
            )
        else:
            normalized.append((key, _check_overlay_value(key, value)))
    return tuple(normalized)


def _normalize_limits(payload: Any) -> SweepLimits:
    if payload is None:
        return SweepLimits()
    if not isinstance(payload, dict):
        _fail(f"'limits' must be a mapping, got {type(payload).__name__}")
    unknown = set(payload) - {"workers", "task_timeout", "task_retries"}
    if unknown:
        _fail(f"unknown limits key(s) {sorted(unknown)}")
    workers = payload.get("workers", 1)
    if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
        _fail(f"limits.workers must be an int >= 1, got {workers!r}")
    timeout = payload.get("task_timeout")
    if timeout is not None and (
        not isinstance(timeout, (int, float)) or isinstance(timeout, bool) or timeout <= 0
    ):
        _fail(f"limits.task_timeout must be > 0, got {timeout!r}")
    retries = payload.get("task_retries")
    if retries is not None and (
        not isinstance(retries, int) or isinstance(retries, bool) or retries < 0
    ):
        _fail(f"limits.task_retries must be >= 0, got {retries!r}")
    return SweepLimits(
        workers=workers,
        task_timeout=None if timeout is None else float(timeout),
        task_retries=retries,
    )


def _normalize_outputs(payload: Any) -> SweepOutputs:
    if payload is None:
        return SweepOutputs()
    if not isinstance(payload, dict):
        _fail(f"'outputs' must be a mapping, got {type(payload).__name__}")
    unknown = set(payload) - {"metrics", "trace", "svg"}
    if unknown:
        _fail(f"unknown outputs key(s) {sorted(unknown)}")
    for key in ("metrics", "trace", "svg"):
        if key in payload and not isinstance(payload[key], bool):
            _fail(f"outputs.{key} must be a boolean, got {payload[key]!r}")
    return SweepOutputs(
        metrics=payload.get("metrics", False),
        trace=payload.get("trace", False),
        svg=payload.get("svg", False),
    )


def spec_from_dict(payload: Dict[str, Any]) -> SweepSpec:
    """Validate a plain dict into a :class:`SweepSpec`.

    Unknown keys, malformed overlay specs, unregistered experiment ids,
    and out-of-range numbers all raise
    :class:`~repro.errors.ConfigurationError` *at submit time*, so a
    queued job can no longer die hours later on an argument typo.
    """
    if not isinstance(payload, dict):
        _fail(f"spec must be a mapping, got {type(payload).__name__}")
    unknown = set(payload) - _TOP_KEYS
    if unknown:
        _fail(f"unknown key(s) {sorted(unknown)}; valid: {sorted(_TOP_KEYS)}")
    schema = payload.get("schema", SPEC_SCHEMA)
    if schema != SPEC_SCHEMA:
        _fail(f"unsupported schema {schema!r} (expected {SPEC_SCHEMA})")

    name = payload.get("name")
    if not isinstance(name, str) or not name:
        _fail("'name' is required and must be a non-empty string")
    if not all(ch.isalnum() or ch in "-_." for ch in name):
        _fail(f"'name' must be a slug ([a-zA-Z0-9._-]), got {name!r}")

    experiments = payload.get("experiments")
    if not isinstance(experiments, list) or not experiments:
        _fail("'experiments' is required and must be a non-empty list of ids")
    from repro.experiments.registry import get_experiment

    for experiment_id in experiments:
        get_experiment(experiment_id)  # raises with valid ids listed
    if len(set(experiments)) != len(experiments):
        _fail("'experiments' contains duplicate ids")

    scale_name = payload.get("scale", "quick")
    if scale_name not in SCALES:
        _fail(f"'scale' must be one of {sorted(SCALES)}, got {scale_name!r}")

    runs = payload.get("runs")
    if runs is not None and (
        not isinstance(runs, int) or isinstance(runs, bool) or runs < 1
    ):
        _fail(f"'runs' must be an int >= 1, got {runs!r}")

    seeds = payload.get("seeds", [DEFAULT_MASTER_SEED])
    if not isinstance(seeds, list) or not seeds:
        _fail("'seeds' must be a non-empty list of ints")
    for seed in seeds:
        if not isinstance(seed, int) or isinstance(seed, bool):
            _fail(f"'seeds' entries must be ints, got {seed!r}")
    if len(set(seeds)) != len(seeds):
        _fail("'seeds' contains duplicates")

    priority = payload.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        _fail(f"'priority' must be an int, got {priority!r}")

    baseline_pack = payload.get("baseline_pack")
    if baseline_pack is not None and (
        not isinstance(baseline_pack, str) or not baseline_pack
    ):
        _fail(f"'baseline_pack' must be a non-empty path string, got {baseline_pack!r}")

    description = payload.get("description", "")
    if not isinstance(description, str):
        _fail(f"'description' must be a string, got {description!r}")

    return SweepSpec(
        name=name,
        experiments=tuple(experiments),
        scale_name=scale_name,
        runs=runs,
        seeds=tuple(seeds),
        overlays=_normalize_overlays(payload.get("overlays")),
        limits=_normalize_limits(payload.get("limits")),
        outputs=_normalize_outputs(payload.get("outputs")),
        baseline_pack=baseline_pack,
        priority=priority,
        description=description,
    )


def load_spec(path: Union[str, pathlib.Path]) -> SweepSpec:
    """Load and validate a spec from a ``.json``/``.yaml``/``.yml`` file."""
    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise ConfigurationError(f"cannot read spec {path}: {error}") from None
    if path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError:  # pragma: no cover - yaml ships with the image
            raise ConfigurationError(
                f"spec {path} is YAML but PyYAML is unavailable; use JSON"
            ) from None
        try:
            payload = yaml.safe_load(text)
        except yaml.YAMLError as error:
            raise ConfigurationError(f"spec {path} is not valid YAML: {error}") from None
    else:
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"spec {path} is not valid JSON: {error}") from None
    return spec_from_dict(payload)


def specs_equal(a: SweepSpec, b: SweepSpec) -> bool:
    """Whether two specs describe the same logical sweep."""
    return a.fingerprint() == b.fingerprint()


def iter_specs(paths: Iterable[Union[str, pathlib.Path]]) -> List[SweepSpec]:
    """Load several spec files, failing on the first invalid one."""
    return [load_spec(path) for path in paths]
