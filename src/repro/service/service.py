"""The experiment service: executes queued sweep specs on a worker pool.

This is the front door of the repo: many submitted sweeps share one
long-running process with bounded concurrency.  Each job runs through
the *existing* hardened runner — per-task timeouts, bounded retries,
worker-crash isolation, checkpoint/resume — inside a
:func:`~repro.experiments.runner.defaults_scope`, so concurrent jobs
each see their own hermetic overlay set and never touch the module
globals the CLI flags mutate.

Per job, the service materializes a directory::

    <service-dir>/jobs/<job-id>/
        spec.json          the normalized spec that ran
        manifest.json      run manifest + service provenance block
        checkpoints/       the runner's sweep journals (resume lives here)
        reports/<label>/   one saved ExperimentReport per expanded unit
        metrics.json       merged obs counters   (outputs.metrics)
        trace.jsonl        event stream          (outputs.trace)

Cancellation is cooperative at *task* granularity: the runner's progress
callback doubles as the cancellation point, so a cancel lands within one
(variant, run) simulation and everything already completed stays
journalled.  A cancelled or crashed job that is requeued therefore
resumes from its checkpoints instead of restarting.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time
import traceback
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.errors import ExperimentError, ReproError
from repro.experiments.persistence import save_report, save_svg
from repro.experiments.registry import get_experiment
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import RunDefaults, defaults_scope
from repro.obs.collector import ObsConfig
from repro.obs.manifest import build_manifest
from repro.obs.output import ObsAccumulator
from repro.service.baseline_pack import check_drift, load_pack
from repro.service.queue import Job, JobQueue
from repro.service.spec import SweepSpec, SweepUnit

__all__ = [
    "JobCancelled",
    "ExperimentService",
    "build_unit_defaults",
    "execute_spec",
]


class JobCancelled(ReproError):
    """Raised inside an executing job when its cancel flag is observed."""


def build_unit_defaults(
    unit: SweepUnit,
    limits,
    checkpoint_dir: Optional[pathlib.Path] = None,
    obs_config: Optional[ObsConfig] = None,
    obs_accumulator: Optional[ObsAccumulator] = None,
) -> RunDefaults:
    """Materialize one unit's overlays into a scoped :class:`RunDefaults`.

    This is the service-side twin of the CLI's flag plumbing in
    ``repro run``: the same parsers, producing the same configs, but
    into a fresh defaults instance instead of the module globals.
    """
    defaults = RunDefaults(
        workers=limits.workers,
        checkpoint_dir=checkpoint_dir,
        task_timeout=limits.task_timeout,
        obs=obs_config,
        obs_accumulator=obs_accumulator,
    )
    if limits.task_retries is not None:
        defaults.task_retries = limits.task_retries
    overlays = unit.overlay_dict
    if "faults" in overlays:
        from repro.faults.plan import parse_fault_plan

        defaults.fault_plan = parse_fault_plan(overlays["faults"])
    if "loss" in overlays:
        from repro.net.channel import parse_channel_spec

        defaults.channel = parse_channel_spec(overlays["loss"])
    if "traffic" in overlays:
        from repro.traffic.plane import parse_traffic_spec

        defaults.traffic = parse_traffic_spec(overlays["traffic"])
    if "adversary" in overlays:
        from repro.faults.plan import parse_adversary_spec

        defaults.adversary = parse_adversary_spec(overlays["adversary"])
    if overlays.get("quarantine"):
        from repro.net.health import HealthConfig
        from repro.routing.table import TableGuard

        defaults.health = HealthConfig()
        defaults.table_guard = TableGuard()
    if "route_ttl" in overlays:
        defaults.route_ttl = overlays["route_ttl"]
    if "check_invariants" in overlays:
        defaults.check_invariants = overlays["check_invariants"]
    return defaults


ProgressFn = Callable[[str, str, int, int], None]


def _job_manifest(spec: SweepSpec, job_id: Optional[str]) -> dict:
    """The manifest for one job, carrying the spec fingerprint."""
    units = spec.expand()
    return build_manifest(
        master_seed=spec.seeds[0],
        scale=spec.scale_name,
        experiments=list(spec.experiments),
        options={
            "seeds": list(spec.seeds),
            "runs": spec.runs,
            "overlays": spec.to_dict()["overlays"],
            "workers": spec.limits.workers,
        },
        service={
            "job_id": job_id,
            "spec_name": spec.name,
            "spec_fingerprint": spec.fingerprint(),
            "units": [unit.label for unit in units],
        },
    )


def execute_spec(
    spec: SweepSpec,
    job_dir: Union[str, pathlib.Path],
    job_id: Optional[str] = None,
    progress: Optional[ProgressFn] = None,
    cancel_event: Optional[threading.Event] = None,
) -> Tuple[Dict[str, ExperimentReport], List[str]]:
    """Run every unit of ``spec`` under ``job_dir``; returns
    ``(label -> report, drift violations)``.

    Raises :class:`JobCancelled` as soon as ``cancel_event`` is observed
    set — between units, or between tasks via the progress callback.
    Completed tasks are already journalled under
    ``job_dir/checkpoints``, so re-executing the same spec in the same
    ``job_dir`` resumes instead of restarting.
    """
    job_dir = pathlib.Path(job_dir)
    job_dir.mkdir(parents=True, exist_ok=True)
    (job_dir / "spec.json").write_text(
        json.dumps(spec.to_dict(), indent=2, sort_keys=True) + "\n"
    )
    checkpoint_dir = job_dir / "checkpoints"

    obs_wanted = spec.outputs.metrics or spec.outputs.trace
    accumulator = ObsAccumulator() if obs_wanted else None
    obs_config = (
        ObsConfig(metrics=spec.outputs.metrics, events=spec.outputs.trace)
        if obs_wanted
        else None
    )

    def check_cancel() -> None:
        if cancel_event is not None and cancel_event.is_set():
            raise JobCancelled(
                f"job {job_id or spec.name} cancelled; completed tasks "
                "remain checkpointed for resume"
            )

    reports: Dict[str, ExperimentReport] = {}
    for unit in spec.expand():
        check_cancel()

        def unit_progress(scenario: str, done: int, total: int) -> None:
            check_cancel()
            if progress is not None:
                progress(unit.label, scenario, done, total)

        if accumulator is not None:
            accumulator.start_experiment(unit.label)
        defaults = build_unit_defaults(
            unit,
            spec.limits,
            checkpoint_dir=checkpoint_dir,
            obs_config=obs_config,
            obs_accumulator=accumulator,
        )
        experiment = get_experiment(unit.experiment_id)
        with defaults_scope(defaults):
            report = experiment.run(
                unit.scale(), master_seed=unit.seed, progress=unit_progress
            )
        unit_dir = job_dir / "reports" / unit.label
        save_report(report, unit_dir)
        if spec.outputs.svg:
            save_svg(report, unit_dir)
        reports[unit.label] = report

    manifest = _job_manifest(spec, job_id)
    (job_dir / "manifest.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    if accumulator is not None:
        if spec.outputs.metrics:
            accumulator.write_metrics(job_dir / "metrics.json", manifest)
        if spec.outputs.trace:
            accumulator.write_trace(job_dir / "trace.jsonl", manifest)

    violations: List[str] = []
    if spec.baseline_pack is not None:
        pack = load_pack(spec.baseline_pack)
        violations = check_drift(pack, reports)
    return reports, violations


class ExperimentService:
    """A worker pool draining one :class:`JobQueue` directory."""

    def __init__(
        self,
        directory: Union[str, pathlib.Path],
        workers: int = 1,
        poll_interval: float = 0.05,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        if workers < 1:
            raise ExperimentError(f"service workers must be >= 1, got {workers}")
        self.directory = pathlib.Path(directory)
        self.queue = JobQueue(self.directory, recover=True)
        self.workers = workers
        self.poll_interval = poll_interval
        self.progress = progress
        self._cancel_events: Dict[str, threading.Event] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Submission-side API (also usable without a running pool)
    # ------------------------------------------------------------------

    def submit(self, spec: SweepSpec, priority: Optional[int] = None) -> Job:
        """Validate-free enqueue (the spec is already validated)."""
        with self._lock:
            return self.queue.submit(spec, priority)

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job now; flag a running one to stop."""
        with self._lock:
            job = self.queue.request_cancel(job_id)
            event = self._cancel_events.get(job_id)
            if event is not None:
                event.set()
        return job

    def job_dir(self, job_id: str) -> pathlib.Path:
        return self.directory / "jobs" / job_id

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _run_job(self, job: Job) -> None:
        event = threading.Event()
        with self._lock:
            self._cancel_events[job.job_id] = event
            if job.cancel_requested:
                event.set()
        try:
            spec = job.sweep_spec()
            reports, violations = execute_spec(
                spec,
                self.job_dir(job.job_id),
                job_id=job.job_id,
                progress=self.progress,
                cancel_event=event,
            )
            with self._lock:
                if violations:
                    self.queue.transition(
                        job.job_id,
                        "failed",
                        error=(
                            f"baseline-pack drift: {len(violations)} "
                            "metric(s) outside tolerance"
                        ),
                        drift=violations,
                    )
                else:
                    self.queue.transition(job.job_id, "done")
        except JobCancelled as error:
            with self._lock:
                self.queue.transition(job.job_id, "cancelled", error=str(error))
        except Exception as error:  # noqa: BLE001 - job isolation boundary
            detail = f"{type(error).__name__}: {error}"
            if not isinstance(error, ReproError):
                detail += "\n" + traceback.format_exc(limit=5)
            with self._lock:
                self.queue.transition(job.job_id, "failed", error=detail)
        finally:
            with self._lock:
                self._cancel_events.pop(job.job_id, None)

    def serve(
        self,
        forever: bool = False,
        max_jobs: Optional[int] = None,
    ) -> Dict[str, int]:
        """Drain the queue with ``workers`` concurrent job threads.

        Returns the final state counts.  ``forever`` keeps polling the
        journal for new submissions (from other processes) after the
        queue drains; ``max_jobs`` bounds how many jobs this call will
        start (tests use it).
        """
        threads: Dict[str, threading.Thread] = {}
        started = 0
        try:
            while True:
                with self._lock:
                    self.queue.refresh()
                    # cross-process cancels: flag any running job whose
                    # journal shows a cancel record.
                    for job in self.queue.jobs():
                        if job.cancel_requested and job.job_id in self._cancel_events:
                            self._cancel_events[job.job_id].set()
                    # reap finished workers.
                    for job_id in [
                        job_id
                        for job_id, thread in threads.items()
                        if not thread.is_alive()
                    ]:
                        threads.pop(job_id).join()
                    # dispatch while there is capacity.
                    while len(threads) < self.workers and (
                        max_jobs is None or started < max_jobs
                    ):
                        job = self.queue.claim_next()
                        if job is None:
                            break
                        thread = threading.Thread(
                            target=self._run_job,
                            args=(job,),
                            name=f"repro-job-{job.job_id}",
                            daemon=True,
                        )
                        threads[job.job_id] = thread
                        started += 1
                        thread.start()
                    drained = not threads and (
                        not self.queue.pending()
                        or (max_jobs is not None and started >= max_jobs)
                    )
                if drained and not forever:
                    break
                time.sleep(self.poll_interval)
        finally:
            for thread in threads.values():
                thread.join()
        with self._lock:
            self.queue.refresh()
            return self.queue.counts()
