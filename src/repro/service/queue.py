"""The async job queue: priority FIFO over a crash-safe JSONL journal.

A :class:`Job` is one submitted :class:`~repro.service.spec.SweepSpec`
plus its lifecycle state (``queued -> running -> done | failed |
cancelled``).  Every submission, state transition, and cancellation
request is appended to ``jobs.jsonl`` in the service directory and
flushed immediately, so the queue's full state is reconstructible after
a crash by replaying the journal — the same design as the runner's
:class:`~repro.experiments.persistence.SweepCheckpoint`.  A torn
trailing line (the process died mid-write) is tolerated and dropped.

Jobs found ``running`` during recovery are re-queued: the process that
owned them is gone, and their sweeps resume from the per-job checkpoint
directory instead of restarting.  ``refresh()`` replays any records
other processes appended since the last read, so ``repro submit`` and
``repro cancel`` work against a live ``repro serve``.

Multiple service processes may drain one directory: claims are
serialized by per-job lock files under ``<directory>/locks/``.  A
server only transitions a job to ``running`` after atomically creating
``locks/<job_id>.lock`` (``O_CREAT | O_EXCL``); the file is removed
when the job reaches a terminal state, and stale locks left by a dead
server are swept during recovery alongside the ``running`` re-queue.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.errors import ExperimentError
from repro.service.spec import SweepSpec, spec_from_dict

__all__ = ["JOB_STATES", "JOURNAL_SCHEMA", "Job", "JobQueue"]

#: bumped when the journal layout changes incompatibly.
JOURNAL_SCHEMA = 1

#: every legal job state, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: states a job can be re-queued from.
_REQUEUEABLE = ("failed", "cancelled")

#: states that end a job's lifecycle.
TERMINAL_STATES = ("done", "failed", "cancelled")


@dataclass
class Job:
    """One submitted sweep spec and its lifecycle state."""

    job_id: str
    seq: int
    spec: Dict[str, Any]
    fingerprint: str
    priority: int = 0
    state: str = "queued"
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    #: baseline-pack drift violations recorded at completion.
    drift: List[str] = field(default_factory=list)
    #: a cancel record exists; the executor stops at its next check.
    cancel_requested: bool = False

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    def sweep_spec(self) -> SweepSpec:
        """The validated spec object this job will execute."""
        return spec_from_dict(self.spec)

    def to_dict(self) -> dict:
        """The JSON-safe view ``repro jobs --json`` emits."""
        return {
            "job_id": self.job_id,
            "name": self.spec.get("name", ""),
            "state": self.state,
            "priority": self.priority,
            "fingerprint": self.fingerprint,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "drift": list(self.drift),
            "cancel_requested": self.cancel_requested,
        }


class JobQueue:
    """Priority FIFO of jobs, journalled to ``<directory>/jobs.jsonl``."""

    def __init__(
        self, directory: Union[str, pathlib.Path], recover: bool = False
    ) -> None:
        """Open (or create) the journal under ``directory``.

        ``recover=True`` is for the owning service process only: it
        re-queues jobs left ``running`` by a previous, dead server.
        Client processes (submit / cancel / status) must leave it off —
        a live server's running jobs are not orphans.
        """
        self.directory = pathlib.Path(directory)
        self.path = self.directory / "jobs.jsonl"
        self.locks_dir = self.directory / "locks"
        self._jobs: Dict[str, Job] = {}
        self._submit_count = 0
        if self.path.exists():
            self._replay()
            if recover:
                self._recover()
        else:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._append({"kind": "header", "schema": JOURNAL_SCHEMA})

    # ------------------------------------------------------------------
    # Journal plumbing
    # ------------------------------------------------------------------

    @staticmethod
    def _parse(line: str) -> Optional[dict]:
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            return None  # torn tail line: the writer died mid-append
        return payload if isinstance(payload, dict) else None

    def _append(self, payload: dict) -> None:
        with self.path.open("a+b") as handle:
            # Seal off a torn trailing line (a writer died mid-append) so
            # this record starts a fresh line instead of merging with it.
            handle.seek(0, 2)
            if handle.tell() > 0:
                handle.seek(-1, 2)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
            handle.write(json.dumps(payload, sort_keys=True).encode() + b"\n")
            handle.flush()

    def _replay(self) -> None:
        """Rebuild the whole in-memory state from the journal."""
        lines = self.path.read_text().splitlines()
        if not lines:
            raise ExperimentError(
                f"job journal {self.path} is empty; delete it to restart"
            )
        header = self._parse(lines[0])
        if header is None or header.get("schema") != JOURNAL_SCHEMA:
            raise ExperimentError(
                f"job journal {self.path} has an unsupported header; "
                "delete it to restart"
            )
        jobs: Dict[str, Job] = {}
        submit_count = 0
        for line in lines[1:]:
            record = self._parse(line)
            if record is None:
                continue
            kind = record.get("kind")
            if kind == "submit":
                submit_count += 1
                job = Job(
                    job_id=record["job_id"],
                    seq=submit_count,
                    spec=record["spec"],
                    fingerprint=record["fingerprint"],
                    priority=record.get("priority", 0),
                    submitted_at=record.get("at", 0.0),
                )
                jobs[job.job_id] = job
            elif kind == "state":
                job = jobs.get(record.get("job_id", ""))
                if job is None:
                    continue
                state = record.get("state")
                if state not in JOB_STATES:
                    continue
                job.state = state
                at = record.get("at")
                if state == "running":
                    job.started_at = at
                    job.error = None
                elif state in TERMINAL_STATES:
                    job.finished_at = at
                    job.error = record.get("error")
                    job.drift = list(record.get("drift", []))
                elif state == "queued":
                    # a requeue: clear the previous attempt's outcome.
                    job.error = None
                    job.drift = []
                    job.cancel_requested = False
            elif kind == "cancel":
                job = jobs.get(record.get("job_id", ""))
                if job is not None and not job.done:
                    job.cancel_requested = True
        self._jobs = jobs
        self._submit_count = submit_count

    # ------------------------------------------------------------------
    # Claim locks
    # ------------------------------------------------------------------

    def _lock_path(self, job_id: str) -> pathlib.Path:
        return self.locks_dir / f"{job_id}.lock"

    def _acquire_lock(self, job_id: str) -> bool:
        """Atomically create the job's lock file; False if held."""
        self.locks_dir.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(
                self._lock_path(job_id),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            return False
        try:
            os.write(fd, f"{os.getpid()}\n".encode())
        finally:
            os.close(fd)
        return True

    def _release_lock(self, job_id: str) -> None:
        try:
            self._lock_path(job_id).unlink()
        except FileNotFoundError:
            pass

    def _recover(self) -> None:
        """Re-queue jobs a dead process left ``running``.

        Their claim locks are stale — the owning process is gone — so
        they are swept here too; otherwise no live server could ever
        re-claim the recovered jobs.
        """
        for job in self._jobs.values():
            if job.state == "running":
                self._append(
                    {
                        "kind": "state",
                        "job_id": job.job_id,
                        "state": "queued",
                        "at": time.time(),
                        "note": "recovered: owning process died mid-run",
                    }
                )
                job.state = "queued"
                job.error = None
                self._release_lock(job.job_id)

    def refresh(self) -> None:
        """Replay records other processes appended since the last read."""
        self._replay()

    # ------------------------------------------------------------------
    # Queue operations
    # ------------------------------------------------------------------

    def submit(self, spec: SweepSpec, priority: Optional[int] = None) -> Job:
        """Enqueue a validated spec; returns the journalled job."""
        self.refresh()
        fingerprint = spec.fingerprint()
        seq = self._submit_count + 1
        job_id = f"j{seq:04d}-{fingerprint[:8]}"
        job = Job(
            job_id=job_id,
            seq=seq,
            spec=spec.to_dict(),
            fingerprint=fingerprint,
            priority=spec.priority if priority is None else priority,
            submitted_at=time.time(),
        )
        self._append(
            {
                "kind": "submit",
                "job_id": job.job_id,
                "spec": job.spec,
                "fingerprint": fingerprint,
                "priority": job.priority,
                "at": job.submitted_at,
            }
        )
        self._jobs[job.job_id] = job
        self._submit_count = seq
        return job

    def get(self, job_id: str) -> Job:
        """Look up a job by id; raise with the known ids listed."""
        try:
            return self._jobs[job_id]
        except KeyError:
            known = ", ".join(sorted(self._jobs)) or "(none)"
            raise ExperimentError(
                f"unknown job {job_id!r}; known jobs: {known}"
            ) from None

    def jobs(self) -> List[Job]:
        """Every job, in submission order."""
        return sorted(self._jobs.values(), key=lambda job: job.seq)

    def pending(self) -> List[Job]:
        """Queued jobs in claim order: priority desc, then FIFO."""
        queued = [
            job
            for job in self._jobs.values()
            if job.state == "queued" and not job.cancel_requested
        ]
        return sorted(queued, key=lambda job: (-job.priority, job.seq))

    def claim_next(self) -> Optional[Job]:
        """Lock and mark the best claimable queued job ``running``.

        Candidates are tried in claim order; one whose lock file is held
        by another server is skipped.  After winning a lock the journal
        is re-read — the previous holder may have finished the job since
        our last refresh — and the claim is abandoned (lock released)
        unless the job is still queued.
        """
        for candidate in self.pending():
            if not self._acquire_lock(candidate.job_id):
                continue
            self.refresh()
            job = self._jobs.get(candidate.job_id)
            if job is None or job.state != "queued" or job.cancel_requested:
                self._release_lock(candidate.job_id)
                continue
            self.transition(job.job_id, "running")
            return job
        return None

    def transition(
        self,
        job_id: str,
        state: str,
        error: Optional[str] = None,
        drift: Optional[List[str]] = None,
    ) -> Job:
        """Journal and apply one lifecycle transition."""
        if state not in JOB_STATES:
            raise ExperimentError(f"unknown job state {state!r}")
        job = self.get(job_id)
        at = time.time()
        record = {"kind": "state", "job_id": job_id, "state": state, "at": at}
        if error is not None:
            record["error"] = error
        if drift:
            record["drift"] = list(drift)
        self._append(record)
        job.state = state
        if state == "running":
            job.started_at = at
            job.error = None
        elif state in TERMINAL_STATES:
            job.finished_at = at
            job.error = error
            job.drift = list(drift or [])
            self._release_lock(job_id)
        elif state == "queued":
            job.error = None
            job.drift = []
            job.cancel_requested = False
        return job

    def request_cancel(self, job_id: str) -> Job:
        """Cancel a queued job now; flag a running one to stop.

        A queued job goes straight to ``cancelled``.  A running job gets
        a journal flag its executor observes at the next task boundary;
        completed work stays checkpointed, so a later requeue resumes
        rather than restarts.
        """
        job = self.get(job_id)
        if job.done:
            raise ExperimentError(
                f"job {job_id} already finished ({job.state}); cannot cancel"
            )
        if job.state == "queued":
            return self.transition(job_id, "cancelled", error="cancelled before start")
        self._append({"kind": "cancel", "job_id": job_id, "at": time.time()})
        job.cancel_requested = True
        return job

    def requeue(self, job_id: str) -> Job:
        """Put a failed or cancelled job back in the queue.

        Its sweeps resume from the per-job checkpoint directory: every
        (variant, run) the previous attempt completed is served from the
        journal instead of re-simulated.
        """
        job = self.get(job_id)
        if job.state not in _REQUEUEABLE:
            raise ExperimentError(
                f"job {job_id} is {job.state}; only failed or cancelled "
                "jobs can be requeued"
            )
        return self.transition(job_id, "queued")

    def counts(self) -> Dict[str, int]:
        """How many jobs sit in each state."""
        counts = {state: 0 for state in JOB_STATES}
        for job in self._jobs.values():
            counts[job.state] += 1
        return counts

    def idle(self) -> bool:
        """True when nothing is queued or running."""
        return all(job.done for job in self._jobs.values())
