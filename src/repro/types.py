"""Shared light-weight types and aliases used across the library.

Keeping these in one tiny module avoids import cycles between the network
substrate, the agents, and the worlds: everything depends on
:mod:`repro.types`, and :mod:`repro.types` depends on nothing.
"""

from __future__ import annotations

from typing import Tuple

#: Identifier of a network node.  Nodes are always numbered ``0..n-1``.
NodeId = int

#: Identifier of a mobile agent.  Agents are numbered ``0..k-1``.
AgentId = int

#: A directed wireless link ``(source, destination)``.
Edge = Tuple[NodeId, NodeId]

#: Simulated time, measured in whole time steps.
Time = int

#: Sentinel used where "never happened" must sort before every real time.
NEVER: Time = -1
