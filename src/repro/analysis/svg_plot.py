"""Standalone SVG charts — publication-style output without matplotlib.

The ASCII charts are for terminals; this module renders the same
series as self-contained SVG files (axes, ticks, legend, one polyline
per series) so figures can be embedded in docs or viewed in a browser.
Pure string assembly, no dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.series import TimeSeries
from repro.errors import ExperimentError

__all__ = ["svg_plot"]

#: distinguishable series colours (colour-blind-safe-ish palette).
_COLORS = [
    "#4477aa",
    "#ee6677",
    "#228833",
    "#ccbb44",
    "#66ccee",
    "#aa3377",
    "#bbbbbb",
    "#000000",
]

_MARGIN_LEFT = 64
_MARGIN_RIGHT = 16
_MARGIN_TOP = 40
_MARGIN_BOTTOM = 48


def svg_plot(
    series_map: Dict[str, TimeSeries],
    title: str = "",
    x_label: str = "time (steps)",
    y_label: str = "",
    width: int = 720,
    height: int = 420,
) -> str:
    """Render the series as one SVG document (returned as a string)."""
    if not series_map:
        raise ExperimentError("nothing to plot")
    all_times = [t for s in series_map.values() for t in s.times]
    all_values = [v for s in series_map.values() for v in s.values]
    if not all_times:
        raise ExperimentError("cannot plot empty series")
    t_min, t_max = min(all_times), max(all_times)
    v_min, v_max = min(all_values), max(all_values)
    if t_max == t_min:
        t_max = t_min + 1
    if v_max == v_min:
        v_max = v_min + 1.0

    plot_width = width - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_height = height - _MARGIN_TOP - _MARGIN_BOTTOM

    def x_of(time: float) -> float:
        return _MARGIN_LEFT + (time - t_min) / (t_max - t_min) * plot_width

    def y_of(value: float) -> float:
        return _MARGIN_TOP + (1.0 - (value - v_min) / (v_max - v_min)) * plot_height

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.0f}" y="20" text-anchor="middle" '
            f'font-family="sans-serif" font-size="14" font-weight="bold">'
            f"{_escape(title)}</text>"
        )

    # Axes box and grid lines with tick labels.
    parts.append(
        f'<rect x="{_MARGIN_LEFT}" y="{_MARGIN_TOP}" width="{plot_width}" '
        f'height="{plot_height}" fill="none" stroke="#333" stroke-width="1"/>'
    )
    for frac, time, value in _ticks(t_min, t_max, v_min, v_max):
        x = _MARGIN_LEFT + frac * plot_width
        y = _MARGIN_TOP + (1.0 - frac) * plot_height
        parts.append(
            f'<line x1="{x:.1f}" y1="{_MARGIN_TOP}" x2="{x:.1f}" '
            f'y2="{_MARGIN_TOP + plot_height}" stroke="#ddd" stroke-width="0.5"/>'
        )
        parts.append(
            f'<line x1="{_MARGIN_LEFT}" y1="{y:.1f}" '
            f'x2="{_MARGIN_LEFT + plot_width}" y2="{y:.1f}" '
            f'stroke="#ddd" stroke-width="0.5"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{_MARGIN_TOP + plot_height + 16}" '
            f'text-anchor="middle" font-family="sans-serif" font-size="10">'
            f"{time:g}</text>"
        )
        parts.append(
            f'<text x="{_MARGIN_LEFT - 6}" y="{y + 3:.1f}" text-anchor="end" '
            f'font-family="sans-serif" font-size="10">{value:.2f}</text>'
        )

    # Axis labels.
    parts.append(
        f'<text x="{_MARGIN_LEFT + plot_width / 2:.0f}" y="{height - 10}" '
        f'text-anchor="middle" font-family="sans-serif" font-size="11">'
        f"{_escape(x_label)}</text>"
    )
    if y_label:
        parts.append(
            f'<text x="14" y="{_MARGIN_TOP + plot_height / 2:.0f}" '
            f'text-anchor="middle" font-family="sans-serif" font-size="11" '
            f'transform="rotate(-90 14 {_MARGIN_TOP + plot_height / 2:.0f})">'
            f"{_escape(y_label)}</text>"
        )

    # Series polylines and legend.
    legend_y = _MARGIN_TOP + 6
    for color, (name, series) in zip(_cycle(_COLORS), sorted(series_map.items())):
        points = " ".join(
            f"{x_of(t):.1f},{y_of(v):.1f}" for t, v in zip(series.times, series.values)
        )
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="1.6"/>'
        )
        parts.append(
            f'<line x1="{_MARGIN_LEFT + 8}" y1="{legend_y}" '
            f'x2="{_MARGIN_LEFT + 28}" y2="{legend_y}" stroke="{color}" '
            f'stroke-width="2"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_LEFT + 32}" y="{legend_y + 3}" '
            f'font-family="sans-serif" font-size="10">{_escape(name)}</text>'
        )
        legend_y += 14

    parts.append("</svg>")
    return "\n".join(parts)


def _ticks(
    t_min: float, t_max: float, v_min: float, v_max: float, count: int = 5
) -> List[Tuple[float, float, float]]:
    """(fraction, time-tick, value-tick) triples at even fractions."""
    ticks = []
    for index in range(count + 1):
        frac = index / count
        ticks.append(
            (frac, t_min + frac * (t_max - t_min), v_min + frac * (v_max - v_min))
        )
    return ticks


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _cycle(colors: List[str]):
    while True:
        for color in colors:
            yield color
