"""Statistics and presentation helpers for multi-run experiments."""

from repro.analysis.ascii_plot import ascii_plot, ascii_series_table
from repro.analysis.compare import WelchResult, compare_samples, welch_t_test
from repro.analysis.series import (
    TimeSeries,
    average_series,
    converged_mean,
    convergence_time,
)
from repro.analysis.stats import RunSummary, confidence_interval, summarize
from repro.analysis.svg_plot import svg_plot

__all__ = [
    "RunSummary",
    "summarize",
    "confidence_interval",
    "TimeSeries",
    "average_series",
    "converged_mean",
    "convergence_time",
    "ascii_plot",
    "ascii_series_table",
    "svg_plot",
    "WelchResult",
    "welch_t_test",
    "compare_samples",
]
