"""Time-series utilities for the knowledge and connectivity curves."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import ExperimentError
from repro.types import Time

__all__ = ["TimeSeries", "average_series", "converged_mean"]


@dataclass(frozen=True)
class TimeSeries:
    """An aligned (times, values) pair."""

    times: List[Time]
    values: List[float]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.values):
            raise ExperimentError(
                f"times ({len(self.times)}) and values ({len(self.values)}) differ"
            )

    def __len__(self) -> int:
        return len(self.times)

    def value_at(self, time: Time) -> float:
        """Value at exactly ``time`` (raises if absent)."""
        try:
            return self.values[self.times.index(time)]
        except ValueError:
            raise ExperimentError(f"no sample at time {time}") from None

    def window(self, start: Time, end: Time) -> "TimeSeries":
        """The sub-series with ``start <= time <= end``."""
        pairs = [(t, v) for t, v in zip(self.times, self.values) if start <= t <= end]
        return TimeSeries([t for t, __ in pairs], [v for __, v in pairs])

    def tail_mean(self, start: Time) -> float:
        """Mean of values at ``time >= start``."""
        window = [v for t, v in zip(self.times, self.values) if t >= start]
        if not window:
            raise ExperimentError(f"no samples at or after time {start}")
        return sum(window) / len(window)


def average_series(series_list: Sequence[TimeSeries]) -> TimeSeries:
    """Pointwise mean of several runs' series.

    Runs may stop at different times (mapping runs stop when finished);
    shorter runs are carried forward at their final value, matching how
    the paper plots teams that have already reached perfect knowledge.
    """
    if not series_list:
        raise ExperimentError("cannot average zero series")
    by_time: Dict[Time, List[float]] = {}
    horizon = max(series.times[-1] for series in series_list if series.times)
    for series in series_list:
        if not series.times:
            raise ExperimentError("cannot average an empty series")
        lookup = dict(zip(series.times, series.values))
        last = series.values[0]
        for time in range(min(series.times), horizon + 1):
            if time in lookup:
                last = lookup[time]
            by_time.setdefault(time, []).append(last)
    times = sorted(by_time)
    values = [sum(by_time[t]) / len(by_time[t]) for t in times]
    return TimeSeries(times, values)


def converged_mean(series: TimeSeries, after: Time) -> float:
    """The paper's converged-window average: mean value at ``time >= after``."""
    return series.tail_mean(after)


def convergence_time(series: TimeSeries, tolerance: float = 0.1) -> Time:
    """First time the series enters — and stays within — its settled band.

    The settled level is the mean of the final quarter of the series;
    the band is ``level * (1 ± tolerance)`` (or an absolute ``tolerance``
    band when the level is ~0).  Backs the paper's claim that "the
    simulation converges to its mean behaviour at time 150 or well
    before": measure it instead of assuming it.
    """
    if not series.times:
        raise ExperimentError("cannot find convergence of an empty series")
    tail_start = max(1, (3 * len(series)) // 4)
    tail = series.values[tail_start:]
    level = sum(tail) / len(tail)
    if abs(level) > 1e-9:
        low, high = level * (1.0 - tolerance), level * (1.0 + tolerance)
        if low > high:  # negative level
            low, high = high, low
    else:
        low, high = -tolerance, tolerance
    for index in range(len(series)):
        if all(low <= v <= high for v in series.values[index:]):
            return series.times[index]
    return series.times[-1]
