"""Terminal rendering of the paper's figures.

The original simulator had a Swing GUI; this reproduction renders every
figure as an ASCII chart plus a numeric series table, so results are
inspectable over ssh, in CI logs, and in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.series import TimeSeries
from repro.errors import ExperimentError

__all__ = ["ascii_plot", "ascii_series_table"]

_GLYPHS = "ox+*#@%&"


def ascii_plot(
    series_map: Dict[str, TimeSeries],
    width: int = 72,
    height: int = 18,
    title: str = "",
    y_label: str = "",
    x_label: str = "time",
) -> str:
    """Render one or more series as a shared-axes ASCII chart."""
    if not series_map:
        raise ExperimentError("nothing to plot")
    all_times = [t for s in series_map.values() for t in s.times]
    all_values = [v for s in series_map.values() for v in s.values]
    if not all_times:
        raise ExperimentError("cannot plot empty series")
    t_min, t_max = min(all_times), max(all_times)
    v_min, v_max = min(all_values), max(all_values)
    if v_max == v_min:
        v_max = v_min + 1.0
    if t_max == t_min:
        t_max = t_min + 1

    grid: List[List[str]] = [[" "] * width for __ in range(height)]
    for glyph, (__, series) in zip(_cycle(_GLYPHS), sorted(series_map.items())):
        for time, value in zip(series.times, series.values):
            col = int((time - t_min) / (t_max - t_min) * (width - 1))
            row = int((value - v_min) / (v_max - v_min) * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines: List[str] = []
    if title:
        lines.append(title)
    for index, row in enumerate(grid):
        if index == 0:
            label = f"{v_max:8.3f} |"
        elif index == height - 1:
            label = f"{v_min:8.3f} |"
        else:
            label = " " * 8 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 10 + f"{t_min:<10d}{x_label:^{max(0, width - 20)}}{t_max:>10d}")
    legend = "   ".join(
        f"{glyph}={name}"
        for glyph, (name, __) in zip(_cycle(_GLYPHS), sorted(series_map.items()))
    )
    lines.append("legend: " + legend)
    if y_label:
        lines.append(f"y: {y_label}")
    return "\n".join(lines)


def ascii_series_table(
    series_map: Dict[str, TimeSeries],
    sample_times: Optional[Sequence[int]] = None,
    digits: int = 3,
) -> str:
    """A compact numeric table sampling each series at shared times."""
    if not series_map:
        raise ExperimentError("nothing to tabulate")
    names = sorted(series_map)
    if sample_times is None:
        longest = max(series_map.values(), key=len)
        count = min(12, len(longest))
        step = max(1, len(longest) // count)
        sample_times = longest.times[::step]
    header = ["time"] + names
    rows: List[List[str]] = [list(header)]
    for time in sample_times:
        row = [str(time)]
        for name in names:
            series = series_map[name]
            value = _value_at_or_before(series, time)
            row.append("-" if value is None else f"{value:.{digits}f}")
        rows.append(row)
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = [
        "  ".join(cell.rjust(width) for cell, width in zip(row, widths)) for row in rows
    ]
    lines.insert(1, "  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _value_at_or_before(series: TimeSeries, time: int) -> Optional[float]:
    best = None
    for t, v in zip(series.times, series.values):
        if t <= time:
            best = v
        else:
            break
    return best


def _cycle(glyphs: str):
    while True:
        for glyph in glyphs:
            yield glyph
