"""Statistical comparison of two experiment variants.

The paper reports bare means over 40 runs; when this reproduction
claims "visiting hurts oldest-node agents" we want to say *how sure* we
are.  :func:`welch_t_test` implements Welch's unequal-variance t-test
with a normal approximation of the tail probability (adequate at the
suite's n=40; the unit tests cross-check p-values against scipy where
available), and :func:`compare_samples` packages the verdict.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ExperimentError

__all__ = ["WelchResult", "welch_t_test", "compare_samples"]


@dataclass(frozen=True)
class WelchResult:
    """Outcome of a two-sided Welch t-test."""

    statistic: float
    degrees_of_freedom: float
    p_value: float
    mean_difference: float

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the difference is significant at level ``alpha``."""
        return self.p_value < alpha


def _mean_var(values: Sequence[float]):
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    else:
        variance = 0.0
    return n, mean, variance


def _student_t_sf(t: float, df: float) -> float:
    """Upper-tail probability of Student's t via a normal-ish approximation.

    Uses the Cornish–Fisher style correction t* = t (1 - 1/(4 df)) /
    sqrt(1 + t^2/(2 df)) mapped through the normal survival function —
    accurate to a few 1e-3 for df >= 5, which is all the harness needs
    (per-figure sample sizes are 40).
    """
    if df <= 0:
        raise ExperimentError(f"degrees of freedom must be positive, got {df}")
    z = t * (1.0 - 1.0 / (4.0 * df)) / math.sqrt(1.0 + t * t / (2.0 * df))
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def welch_t_test(a: Sequence[float], b: Sequence[float]) -> WelchResult:
    """Two-sided Welch t-test for the means of two independent samples."""
    if len(a) < 2 or len(b) < 2:
        raise ExperimentError("each sample needs at least 2 observations")
    n_a, mean_a, var_a = _mean_var(a)
    n_b, mean_b, var_b = _mean_var(b)
    se_sq = var_a / n_a + var_b / n_b
    difference = mean_a - mean_b
    if se_sq == 0.0:
        # Identical constants: either no difference at all or a certain one.
        p = 1.0 if difference == 0.0 else 0.0
        return WelchResult(
            statistic=math.inf if difference else 0.0,
            degrees_of_freedom=float(n_a + n_b - 2),
            p_value=p,
            mean_difference=difference,
        )
    statistic = difference / math.sqrt(se_sq)
    df_num = se_sq**2
    df_den = (var_a / n_a) ** 2 / (n_a - 1) + (var_b / n_b) ** 2 / (n_b - 1)
    df = df_num / df_den if df_den > 0 else float(n_a + n_b - 2)
    p_value = 2.0 * _student_t_sf(abs(statistic), df)
    return WelchResult(
        statistic=statistic,
        degrees_of_freedom=df,
        p_value=min(1.0, p_value),
        mean_difference=difference,
    )


def compare_samples(a: Sequence[float], b: Sequence[float], alpha: float = 0.05) -> str:
    """A one-line human verdict: direction, magnitude, significance."""
    result = welch_t_test(a, b)
    direction = "higher" if result.mean_difference > 0 else "lower"
    verdict = "significant" if result.significant(alpha) else "not significant"
    return (
        f"mean difference {result.mean_difference:+.4g} ({direction}), "
        f"p={result.p_value:.3g} ({verdict} at alpha={alpha})"
    )
