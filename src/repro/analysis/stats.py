"""Summary statistics over a set of independent runs.

Everything the paper reports is a mean over 40 seeded runs; to make
comparisons honest we also carry standard deviation and a normal-
approximation 95% confidence interval.  Implemented on plain floats —
the library core has no numpy dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import ExperimentError

__all__ = ["RunSummary", "summarize", "confidence_interval"]

#: two-sided 95% normal quantile.
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class RunSummary:
    """Mean / spread / extremes of one measured quantity over runs."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.count < 1:
            return 0.0
        return self.std / math.sqrt(self.count)

    @property
    def ci95(self) -> Tuple[float, float]:
        """Normal-approximation 95% confidence interval for the mean."""
        half = _Z95 * self.stderr
        return (self.mean - half, self.mean + half)

    def format(self, unit: str = "", digits: int = 1) -> str:
        """Human-readable ``mean ± half-width unit [min..max]``."""
        low, high = self.ci95
        half = (high - low) / 2.0
        suffix = f" {unit}" if unit else ""
        return (
            f"{self.mean:.{digits}f} ± {half:.{digits}f}{suffix} "
            f"[{self.minimum:.{digits}f}..{self.maximum:.{digits}f}]"
        )


def summarize(values: Sequence[float]) -> RunSummary:
    """Summarize a non-empty sequence of per-run measurements."""
    if not values:
        raise ExperimentError("cannot summarize an empty set of runs")
    count = len(values)
    mean = sum(values) / count
    if count > 1:
        variance = sum((v - mean) ** 2 for v in values) / (count - 1)
        std = math.sqrt(variance)
    else:
        std = 0.0
    return RunSummary(
        count=count,
        mean=mean,
        std=std,
        minimum=min(values),
        maximum=max(values),
    )


def confidence_interval(values: Sequence[float]) -> Tuple[float, float]:
    """95% confidence interval for the mean of ``values``."""
    return summarize(values).ci95
