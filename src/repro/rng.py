"""Deterministic random-number management.

Every run of every experiment is fully determined by ``(config, seed)``.
To guarantee that, no module in the library ever touches the global
:mod:`random` state.  Instead a single master seed is turned into a
:class:`SeedSpawner`, which hands out independent, reproducible
:class:`random.Random` streams — one per concern (placement, mobility,
each agent, …).  Adding a consumer of randomness never perturbs the
streams of existing consumers as long as stream *names* are stable.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator

__all__ = ["SeedSpawner", "derive_seed", "spawn_run_seeds"]

_SEED_BYTES = 8


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed from ``master_seed`` and a stream name.

    The derivation is a SHA-256 hash, so distinct names yield
    independent-looking seeds and the mapping never changes across Python
    versions (unlike ``hash()``, which is salted per process).
    """
    payload = f"{master_seed}:{name}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:_SEED_BYTES], "big")


class SeedSpawner:
    """Factory of named, independent ``random.Random`` streams.

    >>> spawner = SeedSpawner(42)
    >>> a = spawner.stream("placement")
    >>> b = spawner.stream("mobility")
    >>> a is b
    False

    Requesting the same name twice returns *fresh* generators seeded
    identically, so a stream can be replayed:

    >>> spawner.stream("placement").random() == spawner.stream("placement").random()
    True
    """

    def __init__(self, master_seed: int) -> None:
        self._master_seed = int(master_seed)

    @property
    def master_seed(self) -> int:
        """The master seed this spawner derives every stream from."""
        return self._master_seed

    def seed_for(self, name: str) -> int:
        """Return the derived integer seed for stream ``name``."""
        return derive_seed(self._master_seed, name)

    def stream(self, name: str) -> random.Random:
        """Return a fresh ``random.Random`` for the named stream."""
        return random.Random(self.seed_for(name))

    def child(self, name: str) -> "SeedSpawner":
        """Return a spawner whose streams are namespaced under ``name``."""
        return SeedSpawner(self.seed_for(name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedSpawner(master_seed={self._master_seed})"


def spawn_run_seeds(master_seed: int, runs: int) -> Iterator[int]:
    """Yield one independent seed per run for a multi-run experiment."""
    spawner = SeedSpawner(master_seed)
    for index in range(runs):
        yield spawner.seed_for(f"run:{index}")
