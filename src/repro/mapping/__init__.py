"""The network-mapping scenario (paper §II)."""

from repro.mapping.metrics import KnowledgeTracker
from repro.mapping.world import MappingResult, MappingWorld, MappingWorldConfig, run_mapping

__all__ = [
    "MappingWorld",
    "MappingWorldConfig",
    "MappingResult",
    "KnowledgeTracker",
    "run_mapping",
]
