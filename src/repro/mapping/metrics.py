"""Mapping-scenario metrics.

The paper's headline metric is *finishing time*: "the simulation time
step where all agents have a perfect knowledge about the network
topology" — a team metric, reached only when the *worst-informed* agent
is complete.  Figures 3 and 4 also plot knowledge over time, so the
tracker records per-step average and minimum completeness.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence

from repro.core.mapping_agents import MappingAgent
from repro.types import Edge, Time

__all__ = ["KnowledgeTracker"]


class KnowledgeTracker:
    """Records team knowledge over time and detects finishing.

    Completeness is normally the cheap count ``known / total``; when the
    world mutates the topology mid-run (link degradation) it must instead
    check coverage of the *live* edge set — an agent may "know" edges that
    no longer exist, and those must not count toward finishing.  The
    world switches modes by passing ``live_edges``.
    """

    def __init__(self, total_edges: int) -> None:
        self.total_edges = total_edges
        self.times: List[Time] = []
        self.average_knowledge: List[float] = []
        self.minimum_knowledge: List[float] = []
        self.finishing_time: Optional[Time] = None

    def record(
        self,
        time: Time,
        agents: Sequence[MappingAgent],
        live_edges: Optional[FrozenSet[Edge]] = None,
    ) -> bool:
        """Record one step; return True the first time the team finishes."""
        if live_edges is None:
            fractions = [
                agent.knowledge.completeness(self.total_edges) for agent in agents
            ]
        else:
            fractions = [
                _coverage(agent, live_edges) for agent in agents
            ]
        average = sum(fractions) / len(fractions)
        minimum = min(fractions)
        self.times.append(time)
        self.average_knowledge.append(average)
        self.minimum_knowledge.append(minimum)
        if self.finishing_time is None and minimum >= 1.0:
            self.finishing_time = time
            return True
        return False

    @property
    def finished(self) -> bool:
        """Whether the team has reached perfect knowledge."""
        return self.finishing_time is not None


def _coverage(agent: MappingAgent, live_edges: FrozenSet[Edge]) -> float:
    """Fraction of the currently existing edges the agent knows."""
    if not live_edges:
        return 1.0
    known = sum(1 for edge in live_edges if agent.knowledge.knows_edge(edge))
    return known / len(live_edges)
