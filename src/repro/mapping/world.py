"""The mapping world: network + agents + engine, wired per the paper.

Each simulated step (§II-B.1) every agent, in id order:

1. learns the out-edges of the node it stands on (first-hand),
2. learns everything co-located agents know (second-hand),
3. chooses its next node,
4. leaves a footprint if stigmergic,

then all moves commit *simultaneously* — the iteration order of agents
within a step can never leak information.  The run stops at the first
step where every agent knows every directed edge (the finishing time) or
at ``max_steps``.

Optional mid-run link degradation (§II-A's "degradation on a percentage
of radio links") is modelled by scheduling an event that degrades a
sample of node radios and recomputes the topology; after the event the
*current* edge set is what agents must learn, so earlier knowledge of
vanished edges does not block finishing (knowledge is measured against
the live topology).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.comms import exchange_mapping_knowledge
from repro.core.mapping_agents import MappingAgent, make_mapping_agent
from repro.core.migration import ABANDONED, DELIVERED, ReliableMigration
from repro.core.overhead import aggregate_overheads
from repro.core.stigmergy import StigmergyField
from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.metrics import ResilienceReport, ResilienceTracker
from repro.faults.plan import FaultPlan
from repro.mapping.metrics import KnowledgeTracker
from repro.net.channel import ChannelConfig, ChannelModel
from repro.net.health import HealthConfig, HealthMonitor, HealthReport
from repro.net.radio import HeterogeneousRange
from repro.net.topology import Topology
from repro.obs.collector import ObsCollector, ObsConfig, ObsReport
from repro.rng import SeedSpawner
from repro.sim.engine import StopSimulation, TimeStepEngine
from repro.sim.invariants import InvariantChecker, default_invariants_enabled
from repro.traffic.plane import TrafficConfig, TrafficPlane, TrafficReport
from repro.types import NodeId, Time

__all__ = ["MappingWorldConfig", "MappingResult", "MappingWorld"]


@dataclass(frozen=True)
class MappingWorldConfig:
    """Agent-team and protocol parameters for one mapping run."""

    agent_kind: str = "conscientious"
    population: int = 1
    stigmergic: bool = False
    #: probability of a uniformly random move (Minar's dispersal fix).
    epsilon: float = 0.0
    cooperation: bool = True
    footprint_capacity: int = 16
    # Marks repel for a short window only: a footprint says "someone just
    # went that way", not "that node is claimed forever".  Permanent marks
    # measurably wall off the last unexplored nodes and stall teams (see
    # the abl1 ablation); 10 steps reproduced the paper's team speed-ups.
    footprint_freshness: Optional[int] = 10
    max_steps: int = 50_000
    degrade_at: Optional[Time] = None
    degrade_fraction: float = 0.1
    degrade_amount: float = 0.3
    fault_plan: Optional[FaultPlan] = None
    #: ``None`` means a lossless channel (identical to ``ChannelConfig()``).
    channel: Optional[ChannelConfig] = None
    #: ``None`` (default) attaches no health monitor — next-hop choice
    #: never consults quarantine state; a
    #: :class:`~repro.net.health.HealthConfig` switches the defense on.
    health: Optional[HealthConfig] = None
    #: ``None`` defers to the ``REPRO_CHECK_INVARIANTS`` environment
    #: variable (tests switch it on); ``True``/``False`` force it.
    check_invariants: Optional[bool] = None
    #: ``None`` (default) records nothing — the zero-overhead path;
    #: an :class:`~repro.obs.collector.ObsConfig` switches layers on.
    obs: Optional[ObsConfig] = None
    #: ``None`` (default) moves no payloads; a
    #: :class:`~repro.traffic.plane.TrafficConfig` builds the data plane
    #: (unicast destinations — the mapping world has no gateways, so the
    #: replication routers apply, not ``store-and-forward``).
    traffic: Optional[TrafficConfig] = None

    def __post_init__(self) -> None:
        if self.population < 1:
            raise ConfigurationError(f"population must be >= 1, got {self.population}")
        if self.max_steps < 1:
            raise ConfigurationError(f"max_steps must be >= 1, got {self.max_steps}")
        if not 0.0 <= self.degrade_fraction <= 1.0:
            raise ConfigurationError(
                f"degrade_fraction must be in [0, 1], got {self.degrade_fraction}"
            )
        if not 0.0 <= self.epsilon <= 1.0:
            raise ConfigurationError(f"epsilon must be in [0, 1], got {self.epsilon}")


@dataclass
class MappingResult:
    """Outcome of one mapping run."""

    finishing_time: Optional[Time]
    steps_simulated: Time
    times: List[Time] = field(default_factory=list)
    average_knowledge: List[float] = field(default_factory=list)
    minimum_knowledge: List[float] = field(default_factory=list)
    meetings: int = 0
    overhead: Dict[str, float] = field(default_factory=dict)
    resilience: Optional[ResilienceReport] = None
    obs: Optional[ObsReport] = None
    traffic: Optional[TrafficReport] = None
    health: Optional[HealthReport] = None

    @property
    def finished(self) -> bool:
        """Whether every agent reached a perfect map."""
        return self.finishing_time is not None


class MappingWorld:
    """One seeded mapping simulation."""

    def __init__(self, topology: Topology, config: MappingWorldConfig, seed: int) -> None:
        self.topology = topology
        self.config = config
        self._spawner = SeedSpawner(seed).child("mapping")
        self.engine = TimeStepEngine()
        self.field = StigmergyField(
            capacity=config.footprint_capacity,
            freshness=config.footprint_freshness,
        )
        self.channel = ChannelModel(
            topology,
            config.channel if config.channel is not None else ChannelConfig(),
            self._spawner.seed_for("channel"),
        )
        self._migration = ReliableMigration(self.channel)
        # Health monitoring is strictly opt-in: with health unset nothing
        # is built and the hot loop takes only `is None` branches.
        self.health: Optional[HealthMonitor] = None
        if config.health is not None:
            self.health = HealthMonitor(config.health, self.engine.hooks)
        self.agents: List[MappingAgent] = self._spawn_agents()
        self.tracker = KnowledgeTracker(topology.edge_count)
        # Once the topology can mutate mid-run, completeness has to be
        # checked against the live edge set, not a simple count.
        mutable = config.degrade_at is not None or config.fault_plan is not None
        self._live_edges = topology.edge_set() if mutable else None
        self.meetings = 0
        self.injector: Optional[FaultInjector] = None
        self.resilience: Optional[ResilienceTracker] = None
        if config.fault_plan is not None:
            self.injector = FaultInjector(
                self, config.fault_plan, self._spawner.stream("faults")
            )
            self.injector.install()
            self.resilience = ResilienceTracker(
                self.engine.hooks, "knowledge_recorded", "average"
            )
        self.invariants: Optional[InvariantChecker] = None
        check = config.check_invariants
        if check or (check is None and default_invariants_enabled()):
            self.invariants = InvariantChecker(self)
            self.invariants.install()
        # Observability is strictly opt-in: with obs unset no collector
        # exists and the hot loop below takes only `is None` branches.
        self._obs: Optional[ObsCollector] = None
        self._profiler = None
        if config.obs is not None and config.obs.enabled:
            self._obs = ObsCollector(config.obs, self.engine, scenario="mapping")
            self._profiler = self._obs.profiler
            self._obs_last_losses = 0
            stats = topology.stats
            self._obs_last_topo = (
                stats.edges_added,
                stats.edges_removed,
                stats.rebucketed,
            )
        self.engine.add_process(self._step)
        # The data plane runs after the world step; with traffic unset
        # nothing is built — the zero-overhead path.
        self.traffic: Optional[TrafficPlane] = None
        if config.traffic is not None:
            traffic_config = config.traffic
            if traffic_config.router == "store-and-forward":
                # The mapping scenario has no routing tables for custody
                # forwarding to ride; degrade to the table-less epidemic
                # router instead of refusing the workload outright.
                traffic_config = dataclasses.replace(traffic_config, router="epidemic")
            self.traffic = TrafficPlane(
                topology,
                traffic_config,
                self._spawner.child("traffic"),
                channel=self.channel,
                tables=None,
                obs=self._obs,
                unicast=True,
                health=self.health,
            )
            self.traffic.install(self.engine)
        if config.degrade_at is not None:
            self.engine.schedule_at(
                config.degrade_at, self._apply_degradation, label="degrade-links"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _spawn_agents(self) -> List[MappingAgent]:
        placement_rng = self._spawner.stream("placement")
        node_ids = list(self.topology.node_ids)
        agents = []
        for agent_id in range(self.config.population):
            start = placement_rng.choice(node_ids)
            agent_rng = self._spawner.stream(f"agent:{agent_id}")
            agents.append(
                make_mapping_agent(
                    self.config.agent_kind,
                    agent_id,
                    start,
                    agent_rng,
                    stigmergic=self.config.stigmergic,
                    epsilon=self.config.epsilon,
                )
            )
        return agents

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------

    def _apply_degradation(self) -> None:
        """Degrade a sample of node radios and refresh the topology."""
        config = self.config
        rng = self._spawner.stream("degradation")
        count = int(round(config.degrade_fraction * self.topology.node_count))
        victims = rng.sample(list(self.topology.node_ids), count)
        for node_id in victims:
            radio = self.topology.node(node_id).radio
            if isinstance(radio, HeterogeneousRange):
                radio.degrade(config.degrade_amount)
        self.topology.invalidate()
        self.fault_topology_changed()

    def fault_topology_changed(self) -> None:
        """Re-baseline completeness after the topology mutated mid-run.

        The map to learn changed (degradation, crash, recovery, link
        blackout); the tracker target and the live edge set completeness
        is measured against must follow the current topology.
        """
        self.tracker.total_edges = self.topology.edge_count
        self._live_edges = self.topology.edge_set()

    def _active_agents(self) -> List[MappingAgent]:
        """Agents acting this step (faults may kill or suspend some)."""
        if self.injector is None:
            return self.agents
        return self.injector.active_agents()

    def _step(self, now: Time) -> None:
        # Profiling laps partition the step into the paper's phases; with
        # no profiler (the default) each guard is a single None check.
        profiler = self._profiler
        if profiler is not None:
            step_started = phase_started = perf_counter()
        agents = self._active_agents()
        if not agents:
            raise StopSimulation("all-agents-dead")
        topology = self.topology
        if self.health is not None:
            self.health.advance(now)
        # Phase 1: first-hand observation.
        neighbor_cache: Dict[NodeId, Sequence[NodeId]] = {}
        for agent in agents:
            neighbors = neighbor_cache.get(agent.location)
            if neighbors is None:
                neighbors = sorted(topology.out_neighbors(agent.location))
                neighbor_cache[agent.location] = neighbors
            agent.observe(neighbors, now)
        if profiler is not None:
            phase_started = profiler.lap("observe", phase_started)
        # Phase 2: meetings.
        if self.config.cooperation and len(agents) > 1:
            held = exchange_mapping_knowledge(agents, channel=self.channel, now=now)
            self.meetings += held
            if self._obs is not None:
                self._obs.meetings(now, held)
        if profiler is not None:
            phase_started = profiler.lap("meet", phase_started)
        # Phases 3 & 4: choose (or retry a pending hop), footprint; moves
        # commit afterwards, each gated on the channel delivering it.
        moves: List[Tuple[MappingAgent, NodeId]] = []
        for agent in agents:
            neighbors = neighbor_cache[agent.location]
            needs_decision, forced = self._migration.resolve_intent(
                agent, now, neighbors
            )
            if needs_decision:
                if self.health is not None:
                    neighbors = self.health.filter_targets(
                        agent.location, neighbors
                    )
                target = agent.choose_next(neighbors, now, field=self.field)
                if target is None:
                    continue
                agent.leave_footprint(target, now, self.field)
            elif forced is None:
                continue  # waiting out a backoff
            else:
                target = forced  # retry without re-planning or re-stamping
            moves.append((agent, target))
        if profiler is not None:
            phase_started = profiler.lap("decide", phase_started)
        for agent, target in moves:
            origin = agent.location
            outcome = self._migration.attempt_hop(agent, target, now)
            if self.health is not None:
                self.health.observe(origin, target, outcome == DELIVERED, now)
            if outcome != DELIVERED:
                if outcome == ABANDONED:
                    self.engine.hooks.fire(
                        "link_suspected",
                        time=now,
                        node=agent.location,
                        neighbor=target,
                        dropped=0,
                    )
                continue
            agent.move_to(target)
            self.engine.hooks.fire(
                "agent_moved", time=now, agent=agent.agent_id, to=target
            )
        if profiler is not None:
            phase_started = profiler.lap("move", phase_started)
        if self._obs is not None:
            losses = self.channel.stats.losses
            self._obs.channel_losses(now, losses - self._obs_last_losses)
            self._obs_last_losses = losses
            if self.health is not None:
                self._obs.health_step(
                    now,
                    self.health.quarantined_count(),
                    self.health.max_suspicion(),
                )
            stats = topology.stats
            last = self._obs_last_topo
            self._obs.topology_churn(
                now,
                added=stats.edges_added - last[0],
                removed=stats.edges_removed - last[1],
                rebucketed=stats.rebucketed - last[2],
            )
            self._obs_last_topo = (
                stats.edges_added,
                stats.edges_removed,
                stats.rebucketed,
            )
        finished = self.tracker.record(now, agents, live_edges=self._live_edges)
        self.engine.hooks.fire(
            "knowledge_recorded",
            time=now,
            average=self.tracker.average_knowledge[-1],
            minimum=self.tracker.minimum_knowledge[-1],
        )
        if profiler is not None:
            phase_started = profiler.lap("record", phase_started)
            profiler.add("step", phase_started - step_started)
        if finished:
            raise StopSimulation("perfect-knowledge")

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run(self) -> MappingResult:
        """Run to finishing time or ``max_steps``; return the result."""
        steps = self.engine.run(self.config.max_steps)
        team_overhead = aggregate_overheads(agent.overhead for agent in self.agents)
        resilience = None
        agents_total = agents_alive = len(self.agents)
        if self.resilience is not None and self.injector is not None:
            agents_total, agents_alive = self.injector.resilience_counts()
            resilience = self.resilience.report(agents_total, agents_alive)
        traffic_report = None
        if self.traffic is not None:
            traffic_report = self.traffic.report()
            if self._obs is not None:
                self._obs.traffic_totals(traffic_report)
        obs_report = None
        if self._obs is not None:
            obs_report = self._obs.finalize(
                overhead=team_overhead,
                channel_stats=self.channel.stats,
                agents_total=agents_total,
                agents_alive=agents_alive,
                steps=steps,
            )
        return MappingResult(
            finishing_time=self.tracker.finishing_time,
            steps_simulated=steps,
            times=list(self.tracker.times),
            average_knowledge=list(self.tracker.average_knowledge),
            minimum_knowledge=list(self.tracker.minimum_knowledge),
            meetings=self.meetings,
            overhead=team_overhead.per_decision(),
            resilience=resilience,
            obs=obs_report,
            traffic=traffic_report,
            health=self.health.report() if self.health is not None else None,
        )


def run_mapping(
    topology: Topology, config: MappingWorldConfig, seed: int
) -> MappingResult:
    """Convenience: build a world and run it."""
    return MappingWorld(topology, config, seed).run()
