"""The traffic plane: one world's data plane, wired into the step loop.

:class:`TrafficConfig` is the frozen, picklable switchboard that rides
inside the world configs (``traffic=None`` — the default — builds
nothing, so baseline runs stay bit-identical).  When set, the world
builds one :class:`TrafficPlane`, registered as its own engine process
*after* the world's step, so payloads move over the tables the agents
just wrote and the topology the substrate just advanced.

Each plane step:

1. **generate** — the seeded :class:`PayloadGenerator` emits arrivals;
   each is registered in the :class:`TrafficLedger` and offered to its
   source's bounded queue (a full source buffer sheds per policy, with
   exact ledger accounting),
2. **expire** — payloads past their TTL are purged from every buffer
   and retired together,
3. **collect** — copies already sitting on their delivery point (a
   destination that recovered from a crash, say) are delivered,
4. **forward** — the configured router runs one forwarding round,
5. **account** — buffered/in-flight levels go to the obs rings, and the
   conservation invariant is checkable by the
   :class:`~repro.sim.invariants.InvariantChecker`.

Crash semantics: a payload buffered on a node that dies stays in that
buffer, alive and accounted — custody survives the crash.  Forwarding
simply skips down nodes (as sender and as target), so the backlog
drains when the node recovers.  Faults delay data; only queue overflow
and TTL expiry may retire it, and both leave receipts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.net.topology import Topology
from repro.rng import SeedSpawner
from repro.traffic.generator import TRAFFIC_PROFILES, PayloadGenerator
from repro.traffic.payload import (
    ALIVE,
    LATENCY_BUCKETS,
    Payload,
    PayloadCopy,
    TrafficLedger,
)
from repro.traffic.queues import QUEUE_POLICIES, PayloadQueue
from repro.traffic.routers import ROUTERS, make_router
from repro.types import NodeId, Time

__all__ = [
    "TrafficConfig",
    "TrafficPlane",
    "TrafficReport",
    "parse_traffic_spec",
    "TRAFFIC_REPORT_SCHEMA",
]

#: bumped when the report layout changes incompatibly.
TRAFFIC_REPORT_SCHEMA = 1

#: plane counter names, fixed so reports are stable and comparable.
_COUNTER_NAMES = (
    "custody_transfers",
    "retransmissions",
    "abandons",
    "reroutes",
    "custody_refusals",
    "replications",
    "source_drops",
    "overflow_drops",
    "stranded_copies",
)


@dataclass(frozen=True)
class TrafficConfig:
    """Workload, buffering, and routing knobs for one world's data plane.

    Frozen and hashable so it can ride inside the (also frozen) world
    configs, pickle across ``multiprocessing`` workers, and key sweep
    checkpoints.
    """

    #: arrival profile: ``poisson``, ``burst``, or ``cbr``.
    profile: str = "poisson"
    #: expected payloads per step (poisson / cbr).
    rate: float = 0.5
    #: payloads per burst (burst profile).
    burst_size: int = 8
    #: steps between bursts (burst profile).
    burst_every: int = 10
    #: per-node buffer capacity.
    queue_capacity: int = 16
    #: overflow policy: ``drop-tail``, ``drop-oldest``, or ``priority``.
    queue_policy: str = "drop-tail"
    #: payload lifetime in steps.
    payload_ttl: int = 60
    #: ``store-and-forward``, ``epidemic``, or ``spray-and-wait``.
    router: str = "store-and-forward"
    #: failed custody transfers tolerated before abandoning a next hop.
    max_retransmit: int = 3
    #: first retry waits this many steps; each further retry doubles it.
    backoff_base: int = 1
    #: longest wait between retransmissions (clamps the exponential).
    backoff_cap: int = 64
    #: custody/spray transfer attempts per node per step.
    forward_budget: int = 4
    #: epidemic replications per node per step.
    epidemic_fanout: int = 2
    #: initial spray-and-wait ticket budget per payload.
    spray_copies: int = 8
    #: distinct priority classes (uniformly drawn; 1 = everything equal).
    priority_levels: int = 1
    #: first step payloads arrive.
    start: int = 0
    #: stop generating at this step (``None`` = the whole run).
    stop: Optional[int] = None

    def __post_init__(self) -> None:
        if self.profile not in TRAFFIC_PROFILES:
            raise ConfigurationError(
                f"unknown traffic profile {self.profile!r}; "
                f"expected one of {TRAFFIC_PROFILES}"
            )
        if self.router not in ROUTERS:
            raise ConfigurationError(
                f"unknown traffic router {self.router!r}; expected one of {ROUTERS}"
            )
        if self.queue_policy not in QUEUE_POLICIES:
            raise ConfigurationError(
                f"unknown queue policy {self.queue_policy!r}; "
                f"expected one of {QUEUE_POLICIES}"
            )
        if self.rate < 0:
            raise ConfigurationError(f"traffic rate must be >= 0, got {self.rate}")
        for name in (
            "burst_size",
            "burst_every",
            "queue_capacity",
            "payload_ttl",
            "backoff_base",
            "backoff_cap",
            "forward_budget",
            "epidemic_fanout",
            "spray_copies",
            "priority_levels",
        ):
            value = getattr(self, name)
            if value < 1:
                raise ConfigurationError(f"{name} must be >= 1, got {value}")
        if self.max_retransmit < 0:
            raise ConfigurationError(
                f"max_retransmit must be >= 0, got {self.max_retransmit}"
            )
        if self.start < 0:
            raise ConfigurationError(f"start must be >= 0, got {self.start}")
        if self.stop is not None and self.stop <= self.start:
            raise ConfigurationError(
                f"stop must be after start, got start={self.start} stop={self.stop}"
            )


@dataclass
class TrafficReport:
    """One run's data-plane outcome (picklable, JSON-safe fields).

    Compares by value, so the serial ≡ pooled bit-identity tests can
    assert on whole reports.
    """

    schema: int = TRAFFIC_REPORT_SCHEMA
    router: str = "store-and-forward"
    generated: int = 0
    delivered: int = 0
    expired: int = 0
    dropped: int = 0
    in_flight: int = 0
    buffered: int = 0
    delivery_ratio: float = 0.0
    mean_latency: float = 0.0
    mean_hops: float = 0.0
    latency_bounds: List[int] = field(default_factory=lambda: list(LATENCY_BUCKETS))
    latency_counts: List[int] = field(
        default_factory=lambda: [0] * (len(LATENCY_BUCKETS) + 1)
    )
    counters: Dict[str, int] = field(
        default_factory=lambda: {name: 0 for name in _COUNTER_NAMES}
    )
    queues: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """The JSON-safe form (checkpoint journal entry)."""
        return {
            "schema": self.schema,
            "router": self.router,
            "generated": self.generated,
            "delivered": self.delivered,
            "expired": self.expired,
            "dropped": self.dropped,
            "in_flight": self.in_flight,
            "buffered": self.buffered,
            "delivery_ratio": self.delivery_ratio,
            "mean_latency": self.mean_latency,
            "mean_hops": self.mean_hops,
            "latency_bounds": list(self.latency_bounds),
            "latency_counts": list(self.latency_counts),
            "counters": dict(self.counters),
            "queues": dict(self.queues),
        }

    @staticmethod
    def from_dict(payload: Optional[dict]) -> Optional["TrafficReport"]:
        """Rebuild a report from :meth:`to_dict` output (``None`` safe)."""
        if payload is None:
            return None
        return TrafficReport(
            schema=payload.get("schema", TRAFFIC_REPORT_SCHEMA),
            router=payload.get("router", "store-and-forward"),
            generated=payload.get("generated", 0),
            delivered=payload.get("delivered", 0),
            expired=payload.get("expired", 0),
            dropped=payload.get("dropped", 0),
            in_flight=payload.get("in_flight", 0),
            buffered=payload.get("buffered", 0),
            delivery_ratio=payload.get("delivery_ratio", 0.0),
            mean_latency=payload.get("mean_latency", 0.0),
            mean_hops=payload.get("mean_hops", 0.0),
            latency_bounds=list(payload.get("latency_bounds", LATENCY_BUCKETS)),
            latency_counts=list(payload.get("latency_counts", [])),
            counters=dict(payload.get("counters", {})),
            queues=dict(payload.get("queues", {})),
        )


class TrafficPlane:
    """One world's store-and-forward data plane."""

    def __init__(
        self,
        topology: Topology,
        config: TrafficConfig,
        spawner: SeedSpawner,
        channel: Any = None,
        tables: Any = None,
        obs: Any = None,
        unicast: bool = False,
        health: Any = None,
    ) -> None:
        self.topology = topology
        self.config = config
        self.channel = channel
        self.tables = tables
        #: the world's :class:`~repro.net.health.HealthMonitor` (or
        #: ``None``): routers exclude quarantined neighbors from custody
        #: transfer and replication, and feed ack outcomes back in.
        self.health = health
        self.ledger = TrafficLedger()
        self.counters: Dict[str, int] = {name: 0 for name in _COUNTER_NAMES}
        self._queues: Dict[NodeId, PayloadQueue] = {}
        self._payloads: Dict[int, Payload] = {}
        self._gateways: Set[NodeId] = set(topology.gateway_ids)
        self._obs = obs
        sources = [
            node for node in topology.node_ids if node not in self._gateways
        ]
        if not sources:  # all-gateway networks still generate somewhere
            sources = list(topology.node_ids)
        self.generator = PayloadGenerator(
            profile=config.profile,
            rate=config.rate,
            sources=sources,
            spawner=spawner,
            ttl=config.payload_ttl,
            burst_size=config.burst_size,
            burst_every=config.burst_every,
            unicast_targets=list(topology.node_ids) if unicast else None,
            priority_levels=config.priority_levels,
            start=config.start,
            stop=config.stop,
        )
        self.router = make_router(config.router, self)

    # ------------------------------------------------------------------
    # Wiring helpers
    # ------------------------------------------------------------------

    def install(self, engine: Any) -> None:
        """Register the plane's step process and fault listener."""
        engine.add_process(self.step)
        engine.hooks.subscribe("fault_injected", self._on_fault)

    def _on_fault(self, *, time: Time, kind: str, target: Any, applied: bool) -> None:
        """Count the copies a node crash strands (custody still holds)."""
        if kind != "crash" or not applied:
            return
        for node in target:
            queue = self._queues.get(node)
            if queue is not None:
                self.counters["stranded_copies"] += len(queue)

    # ------------------------------------------------------------------
    # State the routers program against
    # ------------------------------------------------------------------

    def queue(self, node: NodeId) -> PayloadQueue:
        """The node's buffer (created lazily, shared capacity/policy)."""
        queue = self._queues.get(node)
        if queue is None:
            queue = PayloadQueue(self.config.queue_capacity, self.config.queue_policy)
            self._queues[node] = queue
        return queue

    def sorted_queues(self) -> List[Tuple[NodeId, PayloadQueue]]:
        """Every materialised buffer in node order (deterministic scans)."""
        return sorted(self._queues.items())

    def is_delivery_point(self, node: NodeId, payload: Payload) -> bool:
        """Whether a live ``node`` completes ``payload``'s journey."""
        if self.topology.is_down(node):
            return False
        if payload.destination is not None:
            return node == payload.destination
        return node in self._gateways

    def attempt(self, source: NodeId, destination: NodeId, now: Time, key: str) -> bool:
        """One keyed channel draw (always succeeds with no channel)."""
        if self.channel is None:
            return True
        return self.channel.attempt(source, destination, now, key)

    def deliver(self, pid: int, now: Time, hops: int) -> None:
        """Retire a delivered payload and purge its other copies."""
        self.ledger.deliver(pid, now, hops)
        self._purge_everywhere({pid})
        del self._payloads[pid]

    def drop_shed_copy(self, copy: PayloadCopy) -> None:
        """Account one copy shed by a queue's overflow policy."""
        self.counters["overflow_drops"] += 1
        if self.ledger.drop_copy(copy.payload.pid):
            self._payloads.pop(copy.payload.pid, None)

    def _purge_everywhere(self, pids: Set[int]) -> None:
        for __, queue in self.sorted_queues():
            queue.purge(pids)

    # ------------------------------------------------------------------
    # The per-step process
    # ------------------------------------------------------------------

    def step(self, now: Time) -> None:
        """One data-plane round: generate, expire, collect, forward."""
        self._generate(now)
        self._expire(now)
        self._collect(now)
        self.router.forward(now)
        if self._obs is not None:
            in_flight, buffered = self.flight_split()
            self._obs.traffic_step(
                now,
                generated=self.ledger.generated,
                delivered=self.ledger.delivered,
                buffered=buffered,
                in_flight=in_flight,
            )

    def _generate(self, now: Time) -> None:
        for payload in self.generator.step(now):
            self.ledger.register(payload)
            self._payloads[payload.pid] = payload
            if self.is_delivery_point(payload.source, payload):
                # Degenerate but legal: the source already is the
                # destination (single-candidate unicast).  Zero hops.
                self.ledger.deliver(payload.pid, now, 0)
                continue
            tickets = (
                self.config.spray_copies
                if self.config.router == "spray-and-wait"
                else 1
            )
            copy = PayloadCopy(payload, tickets=tickets)
            accepted, evicted = self.queue(payload.source).offer(copy)
            if evicted is not None:
                self.drop_shed_copy(evicted)
            if not accepted:
                self.counters["source_drops"] += 1
                if self.ledger.drop_copy(payload.pid):
                    del self._payloads[payload.pid]

    def _expire(self, now: Time) -> None:
        doomed = {
            pid
            for pid, payload in self._payloads.items()
            if self.ledger.entry_status(pid) == ALIVE and payload.expired_at(now)
        }
        if not doomed:
            return
        self._purge_everywhere(doomed)
        for pid in sorted(doomed):
            self.ledger.expire(pid)
            del self._payloads[pid]

    def _collect(self, now: Time) -> None:
        """Deliver copies already standing on their delivery point."""
        for node, queue in self.sorted_queues():
            if not len(queue) or self.topology.is_down(node):
                continue
            for copy in queue.copies():
                pid = copy.payload.pid
                if self.ledger.entry_status(pid) != ALIVE:
                    continue
                if self.is_delivery_point(node, copy.payload):
                    self.deliver(pid, now, copy.hops)

    # ------------------------------------------------------------------
    # Accounting views
    # ------------------------------------------------------------------

    def flight_split(self) -> Tuple[int, int]:
        """``(in_flight, buffered)`` — a partition of the alive payloads.

        A payload is *in flight* when any of its copies is mid
        custody-transfer (a pending retransmission); otherwise it is
        *buffered*.  ``in_flight + buffered == ledger.alive`` always.
        """
        pending: Set[int] = set()
        for __, queue in self.sorted_queues():
            for copy in queue.copies():
                if copy.in_flight:
                    pending.add(copy.payload.pid)
        in_flight = len(pending)
        return in_flight, self.ledger.alive - in_flight

    def physical_copy_counts(self) -> Dict[int, int]:
        """Copies per payload actually present in buffers (cross-check)."""
        counts: Dict[int, int] = {}
        for __, queue in self.sorted_queues():
            for copy in queue.copies():
                pid = copy.payload.pid
                counts[pid] = counts.get(pid, 0) + 1
        return counts

    def consistency_problems(self) -> List[str]:
        """Every way the plane's books could disagree with its buffers."""
        problems: List[str] = []
        error = self.ledger.conservation_error()
        if error is not None:
            problems.append(error)
        physical = self.physical_copy_counts()
        recorded = self.ledger.copy_counts()
        for pid in sorted(set(physical) | set(recorded)):
            have = physical.get(pid, 0)
            want = recorded.get(pid, 0)
            if have != want:
                problems.append(
                    f"payload {pid}: ledger records {want} copies, "
                    f"buffers hold {have}"
                )
        for node, queue in self.sorted_queues():
            if len(queue) > queue.capacity:
                problems.append(
                    f"queue on node {node} holds {len(queue)} copies "
                    f"over capacity {queue.capacity}"
                )
        return problems

    def report(self) -> TrafficReport:
        """The run's final data-plane outcome."""
        in_flight, buffered = self.flight_split()
        queue_totals: Dict[str, int] = {
            "offered": 0,
            "accepted": 0,
            "rejected": 0,
            "evicted": 0,
            "duplicates": 0,
            "peak": 0,
        }
        for __, queue in self.sorted_queues():
            for name, value in queue.counters().items():
                if name == "peak":
                    queue_totals["peak"] = max(queue_totals["peak"], value)
                else:
                    queue_totals[name] += value
        ledger = self.ledger
        return TrafficReport(
            router=self.config.router,
            generated=ledger.generated,
            delivered=ledger.delivered,
            expired=ledger.expired,
            dropped=ledger.dropped,
            in_flight=in_flight,
            buffered=buffered,
            delivery_ratio=ledger.delivery_ratio,
            mean_latency=ledger.mean_latency,
            mean_hops=ledger.mean_hops,
            latency_counts=list(ledger.latency_counts),
            counters=dict(self.counters),
            queues=queue_totals,
        )


def parse_traffic_spec(spec: str) -> TrafficConfig:
    """Parse the CLI's ``--traffic`` spec into a :class:`TrafficConfig`.

    A bare number is a Poisson rate (``--traffic 0.5``); the long form
    is comma-separated ``key=value`` pairs::

        profile=burst,burst=12,every=8,cap=32,policy=drop-oldest,ttl=40,
        router=epidemic,retries=4,backoff=2,budget=6,fanout=3,copies=16

    Raises :class:`~repro.errors.ConfigurationError` on malformed input.
    """
    text = spec.strip()
    if not text:
        raise ConfigurationError("empty traffic spec")
    try:
        return TrafficConfig(rate=float(text))
    except ValueError:
        pass
    aliases = {
        "profile": "profile",
        "rate": "rate",
        "burst": "burst_size",
        "burst_size": "burst_size",
        "every": "burst_every",
        "burst_every": "burst_every",
        "cap": "queue_capacity",
        "queue_cap": "queue_capacity",
        "queue_capacity": "queue_capacity",
        "policy": "queue_policy",
        "queue_policy": "queue_policy",
        "ttl": "payload_ttl",
        "payload_ttl": "payload_ttl",
        "router": "router",
        "retries": "max_retransmit",
        "max_retransmit": "max_retransmit",
        "backoff": "backoff_base",
        "backoff_base": "backoff_base",
        "backoff_cap": "backoff_cap",
        "budget": "forward_budget",
        "forward_budget": "forward_budget",
        "fanout": "epidemic_fanout",
        "epidemic_fanout": "epidemic_fanout",
        "copies": "spray_copies",
        "spray_copies": "spray_copies",
        "priorities": "priority_levels",
        "priority_levels": "priority_levels",
        "start": "start",
        "stop": "stop",
    }
    string_fields = {"profile", "queue_policy", "router"}
    float_fields = {"rate"}
    kwargs: Dict[str, Any] = {}
    for raw_pair in text.split(","):
        pair = raw_pair.strip()
        if not pair:
            continue
        name, separator, value = pair.partition("=")
        if not separator:
            raise ConfigurationError(
                f"malformed traffic spec segment {pair!r}; expected 'key=value'"
            )
        target = aliases.get(name.strip())
        if target is None:
            raise ConfigurationError(
                f"unknown traffic spec key {name.strip()!r}; "
                f"expected one of {sorted(set(aliases))}"
            )
        value = value.strip()
        if target in string_fields:
            kwargs[target] = value
        else:
            try:
                kwargs[target] = (
                    float(value) if target in float_fields else int(value)
                )
            except ValueError:
                raise ConfigurationError(
                    f"malformed traffic spec value in {pair!r}"
                ) from None
    return TrafficConfig(**kwargs)
