"""Seeded payload workload generation (Poisson / burst / CBR).

The generator is the data plane's only source of randomness besides the
channel, and it follows the repo's seeding discipline: it owns a single
named :mod:`repro.rng` stream, so adding traffic to a world never
perturbs placement, mobility, or agent streams, and the same seed always
produces the same workload.

Three arrival profiles cover the usual workload shapes:

* ``poisson`` — independent per-step arrivals, ``rate`` expected
  payloads per step (drawn via inverse-CDF sampling of the Poisson
  distribution, bounded for sanity),
* ``burst`` — ``burst_size`` payloads every ``burst_every`` steps, an
  on/off workload that stresses queue capacity,
* ``cbr`` — constant bit rate: a payload every ``1/rate`` steps
  (accumulator-based so fractional rates work exactly).

Sources are drawn uniformly from the eligible node set each arrival;
destinations are either ``None`` (anycast to any live gateway — the
routing world) or a uniformly drawn node distinct from the source
(unicast — the mapping world).  Priorities are drawn from a configured
distribution so the ``priority`` queue policy has something to rank.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.rng import SeedSpawner
from repro.traffic.payload import Payload
from repro.types import NodeId, Time

__all__ = ["TRAFFIC_PROFILES", "PayloadGenerator"]

#: Recognised arrival profiles.
TRAFFIC_PROFILES = ("poisson", "burst", "cbr")

#: Hard cap on arrivals in a single step (keeps a misconfigured rate
#: from allocating unboundedly).
_MAX_ARRIVALS_PER_STEP = 1024


class PayloadGenerator:
    """Seeded arrival process producing :class:`Payload` batches per step."""

    def __init__(
        self,
        *,
        profile: str,
        rate: float,
        sources: Sequence[NodeId],
        spawner: SeedSpawner,
        ttl: int,
        burst_size: int = 8,
        burst_every: int = 10,
        unicast_targets: Optional[Sequence[NodeId]] = None,
        priority_levels: int = 1,
        start: Time = 0,
        stop: Optional[Time] = None,
    ) -> None:
        if profile not in TRAFFIC_PROFILES:
            raise ConfigurationError(
                f"unknown traffic profile {profile!r}; expected one of {TRAFFIC_PROFILES}"
            )
        if rate < 0:
            raise ConfigurationError(f"traffic rate must be >= 0, got {rate}")
        if not sources:
            raise ConfigurationError("traffic generator needs at least one source")
        if ttl < 1:
            raise ConfigurationError(f"payload ttl must be >= 1, got {ttl}")
        if burst_size < 1 or burst_every < 1:
            raise ConfigurationError(
                "burst_size and burst_every must both be >= 1, got "
                f"{burst_size}/{burst_every}"
            )
        if priority_levels < 1:
            raise ConfigurationError(
                f"priority_levels must be >= 1, got {priority_levels}"
            )
        self.profile = profile
        self.rate = rate
        self.ttl = ttl
        self.burst_size = burst_size
        self.burst_every = burst_every
        self.priority_levels = priority_levels
        self.start = start
        self.stop = stop
        self._sources = sorted(sources)
        self._unicast_targets = (
            sorted(unicast_targets) if unicast_targets is not None else None
        )
        self._rng = spawner.stream("traffic:arrivals")
        self._next_pid = 0
        self._cbr_credit = 0.0

    # ------------------------------------------------------------------

    def step(self, now: Time) -> List[Payload]:
        """Payloads arriving at step ``now`` (possibly empty)."""
        if now < self.start or (self.stop is not None and now >= self.stop):
            return []
        count = self._arrival_count(now)
        return [self._make_payload(now) for _ in range(count)]

    def _arrival_count(self, now: Time) -> int:
        if self.profile == "burst":
            if (now - self.start) % self.burst_every == 0:
                return min(self.burst_size, _MAX_ARRIVALS_PER_STEP)
            return 0
        if self.profile == "cbr":
            self._cbr_credit += self.rate
            count = int(self._cbr_credit)
            self._cbr_credit -= count
            return min(count, _MAX_ARRIVALS_PER_STEP)
        return self._poisson(self.rate)

    def _poisson(self, lam: float) -> int:
        """Inverse-CDF Poisson sample from the generator's own stream."""
        if lam <= 0.0:
            return 0
        draw = self._rng.random()
        cumulative = term = math.exp(-lam)
        count = 0
        while draw >= cumulative and count < _MAX_ARRIVALS_PER_STEP:
            count += 1
            term *= lam / count
            cumulative += term
        return count

    def _make_payload(self, now: Time) -> Payload:
        source = self._sources[self._rng.randrange(len(self._sources))]
        destination: Optional[NodeId] = None
        if self._unicast_targets is not None:
            candidates = [t for t in self._unicast_targets if t != source]
            if not candidates:
                candidates = list(self._unicast_targets)
            destination = candidates[self._rng.randrange(len(candidates))]
        priority = (
            self._rng.randrange(self.priority_levels)
            if self.priority_levels > 1
            else 0
        )
        payload = Payload(
            pid=self._next_pid,
            source=source,
            created_at=now,
            ttl=self.ttl,
            destination=destination,
            priority=priority,
        )
        self._next_pid += 1
        return payload
