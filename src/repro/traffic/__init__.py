"""The data plane: payload workloads over agent-built routing state.

The paper's tables exist so "an average packet will use a multi-hop path
to reach one of those gateways" — this package moves that data.  It
layers a reliable DTN-style store-and-forward plane (bounded per-node
queues, custody transfer with per-hop ack and bounded exponential
backoff, TTL expiry, replication baselines) over the substrate the rest
of the repo already simulates, with exact payload-conservation
accounting the invariant checker verifies every step.
"""

from repro.traffic.generator import TRAFFIC_PROFILES, PayloadGenerator
from repro.traffic.payload import (
    ALIVE,
    DELIVERED,
    DROPPED,
    EXPIRED,
    LATENCY_BUCKETS,
    Payload,
    PayloadCopy,
    TrafficLedger,
)
from repro.traffic.plane import (
    TrafficConfig,
    TrafficPlane,
    TrafficReport,
    parse_traffic_spec,
)
from repro.traffic.queues import QUEUE_POLICIES, PayloadQueue
from repro.traffic.routers import (
    ROUTERS,
    EpidemicRouter,
    SprayAndWaitRouter,
    StoreAndForwardRouter,
    TrafficRouter,
    make_router,
)

__all__ = [
    "ALIVE",
    "DELIVERED",
    "DROPPED",
    "EXPIRED",
    "LATENCY_BUCKETS",
    "Payload",
    "PayloadCopy",
    "TrafficLedger",
    "TRAFFIC_PROFILES",
    "PayloadGenerator",
    "QUEUE_POLICIES",
    "PayloadQueue",
    "ROUTERS",
    "TrafficRouter",
    "StoreAndForwardRouter",
    "EpidemicRouter",
    "SprayAndWaitRouter",
    "make_router",
    "TrafficConfig",
    "TrafficPlane",
    "TrafficReport",
    "parse_traffic_spec",
]
