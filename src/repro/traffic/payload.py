"""Payloads, payload copies, and the conservation ledger.

The paper's routing tables exist so "an average packet will use a
multi-hop path to reach one of those gateways" — user *data*, not just
agents, must cross the network.  This module supplies the data plane's
identity layer:

* :class:`Payload` — the immutable identity of one unit of user data:
  who sent it, where it must go (a specific node, or any live gateway),
  when it was created, how long it may live, and its priority class;
* :class:`PayloadCopy` — one physical manifestation of a payload inside
  a node's buffer.  Single-copy custody routing keeps exactly one copy
  per payload; replication routers (epidemic, spray-and-wait) fan
  copies out, each carrying its own hop count and spray-ticket budget;
* :class:`TrafficLedger` — the authoritative accounting of every
  payload ever generated.  Each payload is in exactly one state —
  ``alive``, ``delivered``, ``expired``, or ``dropped`` — and the
  ledger maintains the per-payload live-copy count, so the cross-layer
  conservation invariant

      generated == delivered + expired + dropped + alive

  is checkable after every step with no tolerance for slop.  Fault
  churn (crash / respawn / loss bursts) may *delay* payloads, never
  leak them: a payload stranded on a crashed node stays ``alive`` and
  buffered until it is delivered, expires, or is explicitly dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import SimulationError
from repro.types import NodeId, Time

__all__ = [
    "ALIVE",
    "DELIVERED",
    "EXPIRED",
    "DROPPED",
    "Payload",
    "PayloadCopy",
    "TrafficLedger",
    "LATENCY_BUCKETS",
]

#: Payload lifecycle states (mutually exclusive; ``ALIVE`` is the only
#: non-terminal one).
ALIVE = "alive"
DELIVERED = "delivered"
EXPIRED = "expired"
DROPPED = "dropped"

#: End-to-end latency histogram buckets, in steps (power-of-two rims;
#: anything slower than the last bound lands in the overflow bucket).
LATENCY_BUCKETS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@dataclass(frozen=True)
class Payload:
    """The immutable identity of one unit of user data.

    ``destination=None`` means "any live gateway" — the routing world's
    anycast semantics; a concrete node id is strict unicast (the mapping
    world, which has no gateways, uses this form).
    """

    pid: int
    source: NodeId
    created_at: Time
    ttl: int
    destination: Optional[NodeId] = None
    priority: int = 0

    def expired_at(self, now: Time) -> bool:
        """Whether the payload's lifetime is over at step ``now``."""
        return now - self.created_at >= self.ttl


@dataclass
class PayloadCopy:
    """One buffered manifestation of a payload at some node.

    ``hops`` counts the custody transfers this copy has survived;
    ``tickets`` is the spray-and-wait copy budget this copy may still
    delegate (1 = wait phase: direct delivery only).  Retransmission
    state (``pending_target`` / ``failures`` / ``retry_at``) mirrors the
    agent-migration hop state machine: a failed transfer backs off
    exponentially toward the *same* next hop, and abandons it after the
    configured retry budget, falling back to buffering.
    """

    payload: Payload
    hops: int = 0
    tickets: int = 1
    pending_target: Optional[NodeId] = None
    failures: int = 0
    retry_at: Time = 0

    def reset_pending(self) -> None:
        """Forget the in-flight transfer (success, abandonment, reroute)."""
        self.pending_target = None
        self.failures = 0
        self.retry_at = 0

    @property
    def in_flight(self) -> bool:
        """Whether this copy is mid custody-transfer (awaiting a retry)."""
        return self.pending_target is not None


@dataclass
class _LedgerEntry:
    """Per-payload accounting: state, live copies, and outcome stamps."""

    payload: Payload
    status: str = ALIVE
    copies: int = 0
    delivered_at: Optional[Time] = None
    delivered_hops: int = 0


class TrafficLedger:
    """Authoritative per-payload state with exact conservation.

    Every state transition is funneled through the ledger so the
    invariant checker can recompute ``generated == delivered + expired +
    dropped + alive`` from first principles every step.  Transitions out
    of a terminal state raise — a router bug that double-delivers or
    drops a delivered payload fails the step it happens.
    """

    def __init__(self) -> None:
        self._entries: Dict[int, _LedgerEntry] = {}
        self.generated = 0
        self.delivered = 0
        self.expired = 0
        self.dropped = 0
        #: end-to-end latency histogram over delivered payloads:
        #: ``len(LATENCY_BUCKETS)`` rims plus one overflow bucket.
        self.latency_counts: List[int] = [0] * (len(LATENCY_BUCKETS) + 1)
        self.latency_total = 0
        self.hops_total = 0

    # -- lifecycle ------------------------------------------------------

    def register(self, payload: Payload) -> None:
        """Record a freshly generated payload (one live copy)."""
        if payload.pid in self._entries:
            raise SimulationError(f"payload {payload.pid} generated twice")
        self._entries[payload.pid] = _LedgerEntry(payload, copies=1)
        self.generated += 1

    def entry_status(self, pid: int) -> str:
        """The payload's current lifecycle state."""
        return self._entries[pid].status

    def copy_count(self, pid: int) -> int:
        """Live physical copies of the payload across all buffers."""
        return self._entries[pid].copies

    def add_copy(self, pid: int) -> None:
        """A replication router duplicated a live payload."""
        entry = self._require_alive(pid, "replicate")
        entry.copies += 1

    def drop_copy(self, pid: int) -> bool:
        """One copy was destroyed (queue overflow / eviction).

        Returns ``True`` when that was the payload's *last* copy, which
        transitions the payload to ``dropped``.
        """
        entry = self._require_alive(pid, "drop a copy of")
        if entry.copies < 1:
            raise SimulationError(f"payload {pid} has no copies to drop")
        entry.copies -= 1
        if entry.copies == 0:
            entry.status = DROPPED
            self.dropped += 1
            return True
        return False

    def deliver(self, pid: int, now: Time, hops: int) -> None:
        """The payload reached its destination; all copies are retired."""
        entry = self._require_alive(pid, "deliver")
        entry.status = DELIVERED
        entry.copies = 0
        entry.delivered_at = now
        entry.delivered_hops = hops
        self.delivered += 1
        latency = now - entry.payload.created_at
        self.latency_total += latency
        self.hops_total += hops
        for index, bound in enumerate(LATENCY_BUCKETS):
            if latency <= bound:
                self.latency_counts[index] += 1
                break
        else:
            self.latency_counts[-1] += 1

    def expire(self, pid: int) -> None:
        """The payload's TTL ran out; every copy is purged together."""
        entry = self._require_alive(pid, "expire")
        entry.status = EXPIRED
        entry.copies = 0
        self.expired += 1

    def _require_alive(self, pid: int, verb: str) -> _LedgerEntry:
        entry = self._entries.get(pid)
        if entry is None:
            raise SimulationError(f"cannot {verb} unknown payload {pid}")
        if entry.status != ALIVE:
            raise SimulationError(
                f"cannot {verb} payload {pid}: already {entry.status}"
            )
        return entry

    # -- conservation views --------------------------------------------

    @property
    def alive(self) -> int:
        """Payloads not yet delivered, expired, or dropped."""
        return self.generated - self.delivered - self.expired - self.dropped

    def alive_pids(self) -> Set[int]:
        """The ids of every live payload (for physical cross-checks)."""
        return {
            pid for pid, entry in self._entries.items() if entry.status == ALIVE
        }

    def copy_counts(self) -> Dict[int, int]:
        """Live-copy count per live payload id."""
        return {
            pid: entry.copies
            for pid, entry in self._entries.items()
            if entry.status == ALIVE
        }

    def conservation_error(self) -> Optional[str]:
        """``None`` when the books balance, else a human-readable message."""
        balance = self.delivered + self.expired + self.dropped + self.alive
        if balance != self.generated:
            return (
                f"payload conservation broken: generated={self.generated} != "
                f"delivered={self.delivered} + expired={self.expired} + "
                f"dropped={self.dropped} + alive={self.alive}"
            )
        return None

    @property
    def delivery_ratio(self) -> float:
        """Delivered fraction of everything generated so far."""
        return self.delivered / self.generated if self.generated else 0.0

    @property
    def mean_latency(self) -> float:
        """Mean end-to-end latency over delivered payloads (steps)."""
        return self.latency_total / self.delivered if self.delivered else 0.0

    @property
    def mean_hops(self) -> float:
        """Mean custody-transfer count over delivered payloads."""
        return self.hops_total / self.delivered if self.delivered else 0.0
