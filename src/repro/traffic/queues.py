"""Per-node bounded payload buffers with explicit overflow policies.

Every node that carries traffic owns one :class:`PayloadQueue`.  The
queue is FIFO and *bounded*: production store-and-forward systems never
buffer unbounded backlogs, they shed load — and which payload they shed
is a first-class policy decision:

* ``drop-tail`` — a full queue rejects the arriving copy (classic
  tail-drop; the backlog keeps its head-of-line order),
* ``drop-oldest`` — a full queue evicts its oldest copy to admit the
  new one (fresh data beats stale data under DTN-style TTLs),
* ``priority`` — a full queue evicts the lowest-priority copy (oldest
  among ties) provided the arrival outranks it; otherwise the arrival
  is rejected.

Every shed copy is reported back to the caller so the
:class:`~repro.traffic.payload.TrafficLedger` accounts it — overflow is
*graceful degradation with receipts*, never silent loss.  Backpressure
counters (offered / accepted / rejected / evicted / peak occupancy)
feed the observability subsystem's queue-occupancy rings.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.traffic.payload import PayloadCopy

__all__ = ["QUEUE_POLICIES", "PayloadQueue"]

#: Recognised overflow policies.
QUEUE_POLICIES = ("drop-tail", "drop-oldest", "priority")


class PayloadQueue:
    """One node's bounded FIFO payload buffer.

    Holds at most ``capacity`` copies and at most one copy per payload
    id (replication routers never need two copies of the same payload
    in one place; a duplicate offer is rejected and counted, which is
    how retransmitted custody transfers stay idempotent).
    """

    def __init__(self, capacity: int, policy: str = "drop-tail") -> None:
        if capacity < 1:
            raise ConfigurationError(f"queue capacity must be >= 1, got {capacity}")
        if policy not in QUEUE_POLICIES:
            raise ConfigurationError(
                f"unknown queue policy {policy!r}; expected one of {QUEUE_POLICIES}"
            )
        self.capacity = capacity
        self.policy = policy
        self._copies: List[PayloadCopy] = []
        self._pids: Set[int] = set()
        # -- backpressure counters -------------------------------------
        self.offered = 0
        self.accepted = 0
        self.rejected = 0
        self.evicted = 0
        self.duplicates = 0
        self.peak = 0

    def __len__(self) -> int:
        return len(self._copies)

    def __contains__(self, pid: int) -> bool:
        return pid in self._pids

    def copies(self) -> List[PayloadCopy]:
        """The buffered copies, oldest first (a shallow copy)."""
        return list(self._copies)

    @property
    def full(self) -> bool:
        """Whether another copy cannot be admitted without shedding."""
        return len(self._copies) >= self.capacity

    def offer(self, copy: PayloadCopy) -> Tuple[bool, Optional[PayloadCopy]]:
        """Try to admit ``copy``; returns ``(accepted, evicted_copy)``.

        ``evicted_copy`` is the buffered copy shed to make room (only
        ever non-``None`` under ``drop-oldest`` / ``priority``); the
        caller owns its ledger accounting.
        """
        self.offered += 1
        pid = copy.payload.pid
        if pid in self._pids:
            self.duplicates += 1
            return False, None
        evicted: Optional[PayloadCopy] = None
        if self.full:
            victim_index = self._victim_index(copy)
            if victim_index is None:
                self.rejected += 1
                return False, None
            evicted = self._copies.pop(victim_index)
            self._pids.discard(evicted.payload.pid)
            self.evicted += 1
        self._copies.append(copy)
        self._pids.add(pid)
        self.accepted += 1
        if len(self._copies) > self.peak:
            self.peak = len(self._copies)
        return True, evicted

    def _victim_index(self, arriving: PayloadCopy) -> Optional[int]:
        """Which buffered copy the policy sheds for ``arriving`` (or none)."""
        if self.policy == "drop-tail":
            return None
        if self.policy == "drop-oldest":
            return 0
        # priority: shed the lowest-priority (oldest among ties) copy,
        # but only when the arrival strictly outranks it.
        victim = min(
            range(len(self._copies)),
            key=lambda index: self._copies[index].payload.priority,
        )
        if self._copies[victim].payload.priority < arriving.payload.priority:
            return victim
        return None

    def remove(self, pid: int) -> Optional[PayloadCopy]:
        """Take the copy of payload ``pid`` out of the buffer (or ``None``)."""
        if pid not in self._pids:
            return None
        for index, copy in enumerate(self._copies):
            if copy.payload.pid == pid:
                self._pids.discard(pid)
                return self._copies.pop(index)
        raise AssertionError("pid index out of sync")  # pragma: no cover

    def purge(self, pids: Set[int]) -> List[PayloadCopy]:
        """Remove every copy whose payload id is in ``pids``."""
        if not pids or not self._pids & pids:
            return []
        removed = [c for c in self._copies if c.payload.pid in pids]
        self._copies = [c for c in self._copies if c.payload.pid not in pids]
        self._pids -= pids
        return removed

    def counters(self) -> Dict[str, int]:
        """The backpressure counters as a plain dict."""
        return {
            "offered": self.offered,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "evicted": self.evicted,
            "duplicates": self.duplicates,
            "peak": self.peak,
        }
