"""Traffic routers: custody store-and-forward plus replication baselines.

Three routers behind one protocol, mirroring the DTN taxonomy:

* :class:`StoreAndForwardRouter` — single-copy custody routing over the
  agent-built routing tables.  A custody transfer needs the *data* to
  cross the lossy channel **and** the receiver's *ack* to make it back;
  either loss leaves custody with the sender, which backs off
  exponentially toward the same next hop (the agent-migration retry
  state machine, re-applied to data) and falls back to buffering after
  the retry budget — payloads are delayed by faults, never leaked.
* :class:`EpidemicRouter` — replicate to every encountered neighbor
  (bounded per-step fanout).  No acks, no retries: a lost replication
  just means that neighbor has no copy yet; the next step tries again.
* :class:`SprayAndWaitRouter` — binary spray-and-wait: each copy
  carries a ticket budget; a successful spray hands half the tickets to
  the new copy.  At one ticket the copy enters the *wait* phase and
  only delivers directly.

All routers deliver greedily: a neighbor that *is* the payload's
delivery point (its unicast destination, or any live gateway for
anycast) is preferred over every table entry, so a lossless
fully-connected topology gives 100% delivery for all three.

Determinism: nodes and candidate targets are iterated in sorted order
and every channel decision is keyed by ``(kind, src, dst, pid)``, so
outcomes are independent of incidental iteration order and identical
between serial and pooled runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.traffic.payload import ALIVE, Payload, PayloadCopy
from repro.types import NodeId, Time

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.traffic.plane import TrafficPlane

__all__ = [
    "ROUTERS",
    "TrafficRouter",
    "StoreAndForwardRouter",
    "EpidemicRouter",
    "SprayAndWaitRouter",
    "make_router",
]

#: Recognised router names (CLI ``--router`` values).
ROUTERS = ("store-and-forward", "epidemic", "spray-and-wait")


class TrafficRouter:
    """Common machinery: snapshotting, next-hop choice, delivery checks."""

    name = "abstract"

    def __init__(self, plane: "TrafficPlane") -> None:
        self.plane = plane

    # -- per-step entry point ------------------------------------------

    def forward(self, now: Time) -> None:
        """Run one forwarding round over every live node's buffer.

        The buffers are snapshotted up front: a copy that moves (or is
        replicated) this step is not forwarded again from its new home
        until the next step — one hop per copy per step, like agent
        migration.
        """
        snapshot: List[Tuple[NodeId, List[PayloadCopy]]] = [
            (node, queue.copies())
            for node, queue in self.plane.sorted_queues()
            if len(queue) and not self.plane.topology.is_down(node)
        ]
        for node, copies in snapshot:
            self._forward_node(node, copies, now)

    def _forward_node(
        self, node: NodeId, copies: List[PayloadCopy], now: Time
    ) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------

    def _still_held(self, node: NodeId, copy: PayloadCopy) -> bool:
        """Whether ``copy``'s payload is still alive and buffered here."""
        pid = copy.payload.pid
        if self.plane.ledger.entry_status(pid) != ALIVE:
            return False
        return pid in self.plane.queue(node)

    def _live_neighbors(self, node: NodeId) -> List[NodeId]:
        """Sorted out-neighbors that are currently up."""
        topology = self.plane.topology
        return sorted(
            neighbor
            for neighbor in topology.out_neighbors(node)
            if not topology.is_down(neighbor)
        )

    def _usable_neighbors(
        self, node: NodeId, neighbors: List[NodeId]
    ) -> List[NodeId]:
        """``neighbors`` minus quarantined ones (identity with no monitor).

        The monitor's filter falls back to the full list rather than
        return empty, so quarantine degrades preference without ever
        stranding a payload with zero candidates.
        """
        health = self.plane.health
        if health is None:
            return neighbors
        return health.filter_targets(node, neighbors)

    def _delivery_neighbor(
        self, neighbors: List[NodeId], payload: Payload
    ) -> Optional[NodeId]:
        """A neighbor that *is* the payload's delivery point, if any."""
        for neighbor in neighbors:
            if self.plane.is_delivery_point(neighbor, payload):
                return neighbor
        return None

    def _table_next_hop(
        self, node: NodeId, neighbors: List[NodeId], payload: Payload
    ) -> Optional[NodeId]:
        """Best next hop from the routing tables (anycast only)."""
        if payload.destination is not None:
            return None  # unicast: no tables toward arbitrary nodes
        tables = self.plane.tables
        if tables is None:
            return None
        neighbor_set = set(neighbors)
        for entry in tables.table(node).entries_by_preference():
            if entry.next_hop in neighbor_set:
                return entry.next_hop
        return None


class StoreAndForwardRouter(TrafficRouter):
    """Single-copy custody routing with per-hop ack and bounded backoff."""

    name = "store-and-forward"

    def _forward_node(
        self, node: NodeId, copies: List[PayloadCopy], now: Time
    ) -> None:
        plane = self.plane
        config = plane.config
        budget = config.forward_budget
        live = self._live_neighbors(node)
        # Quarantine is a preference, not a wall: targets resolve from
        # the usable list first and fall back to the full live list when
        # that yields nothing — blocking the only route toward a gateway
        # would strand custody worse than a lossy link does.
        usable = self._usable_neighbors(node, live)
        for copy in copies:
            if budget <= 0:
                break
            if not self._still_held(node, copy):
                continue
            target = self._resolve_target(node, copy, usable, live, now)
            if target is None:
                continue  # custody fallback: keep buffering
            budget -= 1
            if copy.failures > 0:
                plane.counters["retransmissions"] += 1
            pid = copy.payload.pid
            data_ok = plane.attempt(node, target, now, f"pay:{node}:{pid}")
            ack_ok = data_ok and plane.attempt(
                target, node, now, f"payack:{target}:{pid}"
            )
            if plane.health is not None:
                # The missing ack is the sender's only evidence — a gray
                # receiver that swallows data and a dead link look alike,
                # and both belong in the quality estimate.
                plane.health.observe(node, target, data_ok and ack_ok, now)
            if data_ok and ack_ok:
                self._complete_transfer(node, target, copy, now)
            else:
                self._register_failure(copy, target, now)

    def _resolve_target(
        self,
        node: NodeId,
        copy: PayloadCopy,
        usable: List[NodeId],
        live: List[NodeId],
        now: Time,
    ) -> Optional[NodeId]:
        """Where this copy goes this step — or ``None`` to keep buffering."""
        if copy.in_flight:
            if copy.pending_target in live:
                # An in-flight attempt keeps its target even if the hop
                # was quarantined since the last try: the retry budget is
                # nearly spent, abandoning it re-pays the whole backoff
                # ladder elsewhere, and measurements show the churn costs
                # more TTL than the suspect link does.  Quarantine shapes
                # *fresh* target choices only.
                if now < copy.retry_at:
                    return None  # backing off toward the same next hop
                return copy.pending_target
            else:
                # The pending next hop left radio range or died: re-route.
                copy.reset_pending()
                self.plane.counters["reroutes"] += 1
        return self._fresh_target(node, copy, usable, live)

    def _fresh_target(
        self,
        node: NodeId,
        copy: PayloadCopy,
        usable: List[NodeId],
        live: List[NodeId],
    ) -> Optional[NodeId]:
        """Pick a next hop, preferring non-quarantined neighbors.

        Each decision tries the usable list first and falls back to the
        full live list only when the usable one yields nothing — so a
        partially-quarantined neighborhood routes around the suspects,
        while a route reachable *only* through a suspect is still tried
        (a 10%-success link beats buffering until the TTL burns out).
        """
        direct = self._delivery_neighbor(usable, copy.payload)
        if direct is None and usable is not live:
            direct = self._delivery_neighbor(live, copy.payload)
        if direct is not None:
            return direct
        target = self._table_next_hop(node, usable, copy.payload)
        if target is None and usable is not live:
            target = self._table_next_hop(node, live, copy.payload)
        return target

    def _complete_transfer(
        self, node: NodeId, target: NodeId, copy: PayloadCopy, now: Time
    ) -> None:
        """Data and ack both crossed: custody moves (or the payload lands)."""
        plane = self.plane
        pid = copy.payload.pid
        taken = plane.queue(node).remove(pid)
        assert taken is copy
        copy.hops += 1
        copy.reset_pending()
        if plane.is_delivery_point(target, copy.payload):
            plane.deliver(pid, now, copy.hops)
            return
        accepted, evicted = plane.queue(target).offer(copy)
        if evicted is not None:
            plane.drop_shed_copy(evicted)
        if accepted:
            plane.counters["custody_transfers"] += 1
            return
        # The receiver's buffer refused the arrival (backpressure):
        # custody stays with the sender — undo the hop, treat it like a
        # failed attempt so the retry backoff paces the re-offer.
        copy.hops -= 1
        plane.counters["custody_refusals"] += 1
        readmitted, _ = plane.queue(node).offer(copy)
        assert readmitted  # we just freed this slot
        self._register_failure(copy, target, now)

    def _register_failure(
        self, copy: PayloadCopy, target: NodeId, now: Time
    ) -> None:
        """A transfer attempt failed: back off, abandon past the budget."""
        config = self.plane.config
        copy.pending_target = target
        copy.failures += 1
        if copy.failures > config.max_retransmit:
            copy.reset_pending()  # abandon this next hop; re-route next step
            self.plane.counters["abandons"] += 1
            return
        copy.retry_at = now + min(
            config.backoff_cap, config.backoff_base * 2 ** (copy.failures - 1)
        )


class _ReplicationRouter(TrafficRouter):
    """Shared forwarding loop for the replication baselines.

    Replication has no custody handshake: a single keyed channel draw
    decides whether the replica (or the final delivery) arrives.  A lost
    attempt costs nothing but the try — the sender keeps its copy and
    the next step offers again, which is the protocol's natural
    retransmission.
    """

    #: channel key prefix (distinct per router for ``losses_by_kind``).
    kind = "rep"

    def _forward_node(
        self, node: NodeId, copies: List[PayloadCopy], now: Time
    ) -> None:
        budget = self._node_budget()
        for copy in copies:
            if budget <= 0:
                break
            if not self._still_held(node, copy):
                continue
            budget = self._handle_copy(node, copy, now, budget)

    def _node_budget(self) -> int:  # pragma: no cover - overridden
        raise NotImplementedError

    def _handle_copy(
        self, node: NodeId, copy: PayloadCopy, now: Time, budget: int
    ) -> int:  # pragma: no cover - overridden
        raise NotImplementedError

    def _try_direct_delivery(
        self, node: NodeId, copy: PayloadCopy, now: Time, target: NodeId
    ) -> bool:
        """Attempt the final hop to a delivery-point neighbor."""
        plane = self.plane
        pid = copy.payload.pid
        if plane.attempt(node, target, now, f"{self.kind}:{node}:{pid}:{target}"):
            plane.deliver(pid, now, copy.hops + 1)
            return True
        return False

    def _try_replicate(
        self, node: NodeId, copy: PayloadCopy, now: Time, target: NodeId, tickets: int
    ) -> bool:
        """Attempt to stand up a new copy at ``target``; True on success."""
        plane = self.plane
        pid = copy.payload.pid
        if pid in plane.queue(target):
            return False
        if not plane.attempt(node, target, now, f"{self.kind}:{node}:{pid}:{target}"):
            return False
        replica = PayloadCopy(copy.payload, hops=copy.hops + 1, tickets=tickets)
        accepted, evicted = plane.queue(target).offer(replica)
        if evicted is not None:
            plane.drop_shed_copy(evicted)
        if not accepted:
            plane.counters["custody_refusals"] += 1
            return False
        plane.ledger.add_copy(pid)
        plane.counters["replications"] += 1
        return True


class EpidemicRouter(_ReplicationRouter):
    """Flood bounded-fanout replicas to every neighbor lacking the payload."""

    name = "epidemic"
    kind = "epi"

    def _node_budget(self) -> int:
        return self.plane.config.epidemic_fanout

    def _handle_copy(
        self, node: NodeId, copy: PayloadCopy, now: Time, budget: int
    ) -> int:
        live = self._live_neighbors(node)
        neighbors = self._usable_neighbors(node, live)
        direct = self._delivery_neighbor(live, copy.payload)
        if direct is not None:
            budget -= 1
            self._try_direct_delivery(node, copy, now, direct)
            return budget
        # Replicas go to non-quarantined neighbors only: a copy parked
        # on a gray node is a wasted transmission, and replication keeps
        # the original, so skipping suspects costs nothing.
        for target in neighbors:
            if budget <= 0:
                break
            if copy.payload.pid in self.plane.queue(target):
                continue
            budget -= 1
            self._try_replicate(node, copy, now, target, tickets=1)
        return budget


class SprayAndWaitRouter(_ReplicationRouter):
    """Binary spray-and-wait: halve the ticket budget on every spray."""

    name = "spray-and-wait"
    kind = "spr"

    def _node_budget(self) -> int:
        return self.plane.config.forward_budget

    def _handle_copy(
        self, node: NodeId, copy: PayloadCopy, now: Time, budget: int
    ) -> int:
        live = self._live_neighbors(node)
        neighbors = self._usable_neighbors(node, live)
        direct = self._delivery_neighbor(live, copy.payload)
        if direct is not None:
            budget -= 1
            self._try_direct_delivery(node, copy, now, direct)
            return budget
        # Wait phase: one ticket means direct delivery only.
        if copy.tickets <= 1:
            return budget
        for target in neighbors:
            if budget <= 0 or copy.tickets <= 1:
                break
            if copy.payload.pid in self.plane.queue(target):
                continue
            budget -= 1
            give = copy.tickets // 2
            if self._try_replicate(node, copy, now, target, tickets=give):
                copy.tickets -= give
        return budget


def make_router(name: str, plane: "TrafficPlane") -> TrafficRouter:
    """Instantiate the named router bound to ``plane``."""
    if name == "store-and-forward":
        if plane.tables is None:
            raise ConfigurationError(
                "the store-and-forward router needs routing tables; "
                "use 'epidemic' or 'spray-and-wait' in table-less worlds"
            )
        return StoreAndForwardRouter(plane)
    if name == "epidemic":
        return EpidemicRouter(plane)
    if name == "spray-and-wait":
        return SprayAndWaitRouter(plane)
    raise ConfigurationError(
        f"unknown traffic router {name!r}; expected one of {ROUTERS}"
    )
