"""Stigmergic footprints — the paper's main mechanism.

"Every agent leaves behind his footprint on the current node.  Agents
imprint their next target node in the current node … so that subsequent
agents avoid following previous ones" (§II-B).  Unlike ant pheromones
that *attract*, these marks *repel*: an agent about to leave a node skips
candidate targets that fresh footprints on that node already point at,
spreading the team across the network.

A :class:`FootprintBoard` lives (conceptually) on each node: a bounded
list of ``(agent, target, time)`` marks with a freshness window.  The
:class:`StigmergyField` owns one board per node and is what worlds and
agents talk to.  Filtering a candidate set is O(candidates + fresh
marks), honouring the paper's "negligible overhead" claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.types import AgentId, NodeId, Time

__all__ = ["Footprint", "FootprintBoard", "StigmergyField"]

#: Default number of marks a node's board retains.
DEFAULT_CAPACITY = 16

#: Default steps a mark stays "fresh" (None = never goes stale).
DEFAULT_FRESHNESS: Optional[int] = None


@dataclass(frozen=True)
class Footprint:
    """One mark: who stamped it, where they said they were going, when."""

    agent: AgentId
    target: NodeId
    time: Time


class FootprintBoard:
    """The marks on one node: the *latest* mark per agent.

    A later visit by the same agent replaces its earlier mark — the paper
    frames the mechanism as "the mark it left behind during its previous
    visit", not an accumulating trail.  Keeping only the latest intent
    per agent also bounds the veto pressure: stale plans from many past
    visits must not wall a node off from all its neighbours (that was
    measurably harmful to conscientious agents when prototyping this
    reproduction).  ``capacity`` bounds how many distinct agents' marks a
    node retains; the oldest mark is evicted first.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        freshness: Optional[int] = DEFAULT_FRESHNESS,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"board capacity must be >= 1, got {capacity}")
        if freshness is not None and freshness < 1:
            raise ConfigurationError(f"freshness must be >= 1 or None, got {freshness}")
        self.capacity = capacity
        self.freshness = freshness
        self._marks: Dict[AgentId, Footprint] = {}

    def __len__(self) -> int:
        return len(self._marks)

    def stamp(self, agent: AgentId, target: NodeId, time: Time) -> None:
        """Record that ``agent`` is leaving toward ``target`` at ``time``.

        Replaces the agent's previous mark on this node, if any.
        """
        self._marks[agent] = Footprint(agent=agent, target=target, time=time)
        if len(self._marks) > self.capacity:
            oldest = min(self._marks, key=lambda a: (self._marks[a].time, a))
            del self._marks[oldest]

    def _is_fresh(self, mark: Footprint, now: Time) -> bool:
        return self.freshness is None or now - mark.time < self.freshness

    def fresh_marks(self, now: Time) -> List[Footprint]:
        """Fresh marks, oldest first (at most one per agent)."""
        return sorted(
            (m for m in self._marks.values() if self._is_fresh(m, now)),
            key=lambda m: (m.time, m.agent),
        )

    def fresh_targets(self, now: Time) -> Set[NodeId]:
        """Targets pointed at by any fresh mark."""
        return {m.target for m in self._marks.values() if self._is_fresh(m, now)}

    def all_marks(self) -> List[Footprint]:
        """Every mark, fresh or stale, oldest first (inspection)."""
        return sorted(self._marks.values(), key=lambda m: (m.time, m.agent))

    def clear(self) -> None:
        """Remove every mark."""
        self._marks.clear()


class StigmergyField:
    """All footprint boards of a network, keyed by node id.

    Boards are created lazily, so an unmarked network costs nothing.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        freshness: Optional[int] = DEFAULT_FRESHNESS,
    ) -> None:
        self.capacity = capacity
        self.freshness = freshness
        self._boards: Dict[NodeId, FootprintBoard] = {}

    def board(self, node: NodeId) -> FootprintBoard:
        """The board on ``node`` (created on first access)."""
        existing = self._boards.get(node)
        if existing is None:
            existing = FootprintBoard(self.capacity, self.freshness)
            self._boards[node] = existing
        return existing

    def stamp(self, node: NodeId, agent: AgentId, target: NodeId, time: Time) -> None:
        """Leave ``agent``'s mark on ``node`` pointing at ``target``."""
        self.board(node).stamp(agent, target, time)

    def avoided_targets(self, node: NodeId, now: Time) -> Set[NodeId]:
        """Candidate targets fresh marks on ``node`` tell agents to avoid."""
        existing = self._boards.get(node)
        if existing is None:
            return set()
        return existing.fresh_targets(now)

    def filter_candidates(
        self, node: NodeId, candidates: Iterable[NodeId], now: Time
    ) -> List[NodeId]:
        """Candidates minus freshly-targeted nodes; falls back when empty.

        The fallback to the unfiltered candidates is essential: an agent
        boxed in (every neighbour recently targeted) must still move, or
        stigmergy would deadlock small networks.
        """
        ordered = list(candidates)
        avoided = self.avoided_targets(node, now)
        if not avoided:
            return ordered
        filtered = [candidate for candidate in ordered if candidate not in avoided]
        return filtered if filtered else ordered

    def clear_board(self, node: NodeId) -> int:
        """Wipe the board on ``node`` (a crashed node loses its marks).

        Returns how many marks were dropped.
        """
        existing = self._boards.pop(node, None)
        return len(existing) if existing is not None else 0

    def items(self) -> List[Tuple[NodeId, FootprintBoard]]:
        """Every instantiated ``(node, board)`` pair in node order."""
        return [(node, self._boards[node]) for node in sorted(self._boards)]

    def total_marks(self) -> int:
        """Total marks across every board (diagnostics)."""
        return sum(len(board) for board in self._boards.values())

    def clear(self) -> None:
        """Wipe every board."""
        self._boards.clear()
