"""Direct communication: what happens when agents meet on a node.

Both scenarios let co-located agents talk.  Exchanges must be
*order-independent* — the outcome cannot depend on which agent the world
iterates first — so every protocol here works from snapshots taken
before anyone absorbs anything.

Mapping (§II-B.1 phase 2): every agent on a node learns everything every
other agent there knows, stored as second-hand knowledge.  We compute the
group's combined knowledge once and let each member absorb it; absorbing
one's own contribution is a harmless no-op for movement (an agent's own
first-hand recency already dominates its combined view), and it turns a
quadratic all-pairs exchange into a linear one.

Routing (§III-F, only when ``visiting`` is enabled): the group adopts the
best gateway track per gateway and every member ends up with the merged
visit history — the paper's "after a meeting, all participating agents
are going to be identical in terms of history knowledge".
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.core.history import VisitHistory
from repro.core.mapping_agents import MappingAgent
from repro.core.routing_agents import GatewayTrack, RoutingAgent
from repro.net.channel import ChannelModel
from repro.types import Edge, NEVER, NodeId, Time

__all__ = [
    "group_by_location",
    "exchange_mapping_knowledge",
    "exchange_routing_knowledge",
]


def group_by_location(agents: Sequence) -> Dict[NodeId, List]:
    """Bucket agents by the node they currently stand on."""
    groups: Dict[NodeId, List] = defaultdict(list)
    for agent in agents:
        groups[agent.location].append(agent)
    return groups


def _payload_received(
    channel: Optional[ChannelModel], agent, now: Time
) -> bool:
    """Whether one meeting payload reached ``agent`` over the channel.

    Loss is modelled at reception: the group broadcast is computed once
    but each listener may independently miss it (short-range collisions
    and fading hit receivers, not the shared medium).  Keying the draw
    by the receiving agent keeps the outcome independent of iteration
    order.  With no channel (or a lossless one) every payload arrives.
    """
    if channel is None:
        return True
    if channel.attempt(agent.location, agent.location, now, f"meet:{agent.agent_id}"):
        return True
    agent.overhead.payloads_lost += 1
    return False


def exchange_mapping_knowledge(
    agents: Sequence[MappingAgent],
    channel: Optional[ChannelModel] = None,
    now: Time = 0,
) -> int:
    """Run phase-2 meetings for mapping agents; returns number of meetings.

    For every node holding two or more agents, the combined edge set and
    freshest visit map of the group is built from pre-exchange state and
    absorbed by every member as second-hand knowledge.  Over a lossy
    ``channel`` a member may miss the payload: it still participates in
    the meeting (its knowledge is in the broadcast) but absorbs nothing.
    """
    meetings = 0
    for __, group in group_by_location(agents).items():
        if len(group) < 2:
            continue
        meetings += 1
        combined_edges: Set[Edge] = set()
        combined_visits: Dict[NodeId, Time] = {}
        for agent in group:
            combined_edges.update(agent.knowledge.shareable_edges())
            for node, time in agent.knowledge.shareable_visits().items():
                if time > combined_visits.get(node, NEVER):
                    combined_visits[node] = time
        payload = len(combined_edges) + len(combined_visits)
        for agent in group:
            agent.overhead.meetings += 1
            if not _payload_received(channel, agent, now):
                continue
            agent.knowledge.absorb(combined_edges, combined_visits)
            agent.overhead.items_received += payload
    return meetings


def exchange_routing_knowledge(
    agents: Sequence[RoutingAgent],
    channel: Optional[ChannelModel] = None,
    now: Time = 0,
) -> int:
    """Run visiting meetings for routing agents; returns number of meetings.

    Only agents with ``visiting`` enabled participate.  The group's best
    track per gateway and merged history are computed from pre-exchange
    snapshots, then written back to every participant — except members
    whose payload the lossy ``channel`` drops, who keep their own state.
    """
    meetings = 0
    for __, group in group_by_location(agents).items():
        participants = [agent for agent in group if agent.visiting]
        if len(participants) < 2:
            continue
        meetings += 1
        best_tracks: Dict[NodeId, GatewayTrack] = {}
        for agent in participants:
            for gateway, track in agent.tracks.items():
                current = best_tracks.get(gateway)
                if current is None or track.better_than(current):
                    best_tracks[gateway] = track
        merged_history = _merged_history(participants)
        payload = len(best_tracks) + len(merged_history)
        for agent in participants:
            agent.overhead.meetings += 1
            if not _payload_received(channel, agent, now):
                continue
            agent.tracks = dict(best_tracks)
            agent.history.merge_from(merged_history)
            agent.overhead.items_received += payload
    return meetings


def _merged_history(participants: Iterable[RoutingAgent]) -> VisitHistory:
    """The union of participants' histories in one oversized history."""
    capacities = [agent.history.capacity for agent in participants]
    merged = VisitHistory(max(capacities) * max(2, len(capacities)))
    for agent in participants:
        for node, time in agent.history.items():
            if time > merged.last_visit(node):
                merged.record(node, time)
    return merged
