"""Per-agent overhead accounting.

The paper argues repeatedly about overhead: its stigmergic mechanism
"imposes negligible overhead on the system complexity" (§I), while the
related agents of Abdullah et al. carry "about 5 times more overhead"
and those of Choudhury et al. "about 4 times more" (§II-B, §III-B).
:class:`OverheadMeter` makes those claims measurable in this
reproduction: agents tick counters for every decision, candidate
comparison, footprint interaction and meeting payload, and worlds
aggregate them into per-step averages (see the ``abl4`` experiment).

Counting is additive and cheap (integer increments), so metering does
not itself distort the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

__all__ = ["OverheadMeter", "aggregate_overheads"]


@dataclass
class OverheadMeter:
    """Operation counters for one agent."""

    #: movement decisions taken (one per step with a reachable neighbour).
    decisions: int = 0
    #: candidate neighbours examined across all decisions.
    candidates_examined: int = 0
    #: footprint marks written.
    footprints_stamped: int = 0
    #: footprint-board consultations (one per stigmergic decision).
    footprint_lookups: int = 0
    #: meetings participated in.
    meetings: int = 0
    #: knowledge items (edges / visits / tracks / history entries)
    #: received from peers during meetings.
    items_received: int = 0
    #: route entries written into node tables (routing agents).
    routes_installed: int = 0
    #: migration hops attempted over the channel (retries included).
    hops_attempted: int = 0
    #: hop attempts the channel dropped.
    hops_lost: int = 0
    #: retries scheduled after a lost hop.
    hop_retries: int = 0
    #: targets given up on after the retry budget ran out.
    hops_abandoned: int = 0
    #: meeting payloads the channel dropped before absorption.
    payloads_lost: int = 0
    #: route entries dropped as link-quality evidence after abandonment.
    routes_invalidated: int = 0
    #: route writes the table guards refused (adversarial resilience).
    routes_rejected: int = 0

    def absorb(self, other: "OverheadMeter") -> None:
        """Add ``other``'s counters into this meter in place."""
        self.decisions += other.decisions
        self.candidates_examined += other.candidates_examined
        self.footprints_stamped += other.footprints_stamped
        self.footprint_lookups += other.footprint_lookups
        self.meetings += other.meetings
        self.items_received += other.items_received
        self.routes_installed += other.routes_installed
        self.hops_attempted += other.hops_attempted
        self.hops_lost += other.hops_lost
        self.hop_retries += other.hop_retries
        self.hops_abandoned += other.hops_abandoned
        self.payloads_lost += other.payloads_lost
        self.routes_invalidated += other.routes_invalidated
        self.routes_rejected += other.routes_rejected

    def merged_with(self, other: "OverheadMeter") -> "OverheadMeter":
        """The element-wise sum of two meters (neither input mutated)."""
        total = OverheadMeter(**self.as_dict())
        total.absorb(other)
        return total

    def per_decision(self) -> Dict[str, float]:
        """Counters normalised by the number of decisions taken."""
        if self.decisions == 0:
            return {name: 0.0 for name in self.as_dict()}
        return {
            name: value / self.decisions for name, value in self.as_dict().items()
        }

    def as_dict(self) -> Dict[str, int]:
        """All counters as a plain dict."""
        return {
            "decisions": self.decisions,
            "candidates_examined": self.candidates_examined,
            "footprints_stamped": self.footprints_stamped,
            "footprint_lookups": self.footprint_lookups,
            "meetings": self.meetings,
            "items_received": self.items_received,
            "routes_installed": self.routes_installed,
            "hops_attempted": self.hops_attempted,
            "hops_lost": self.hops_lost,
            "hop_retries": self.hop_retries,
            "hops_abandoned": self.hops_abandoned,
            "payloads_lost": self.payloads_lost,
            "routes_invalidated": self.routes_invalidated,
            "routes_rejected": self.routes_rejected,
        }


def aggregate_overheads(meters: Iterable[OverheadMeter]) -> OverheadMeter:
    """Sum a collection of per-agent meters into one team meter.

    Accumulates in place: called per agent in every run summary, so it
    must not allocate a fresh meter per element.
    """
    total = OverheadMeter()
    for meter in meters:
        total.absorb(meter)
    return total
