"""Per-agent overhead accounting.

The paper argues repeatedly about overhead: its stigmergic mechanism
"imposes negligible overhead on the system complexity" (§I), while the
related agents of Abdullah et al. carry "about 5 times more overhead"
and those of Choudhury et al. "about 4 times more" (§II-B, §III-B).
:class:`OverheadMeter` makes those claims measurable in this
reproduction: agents tick counters for every decision, candidate
comparison, footprint interaction and meeting payload, and worlds
aggregate them into per-step averages (see the ``abl4`` experiment).

Counting is additive and cheap (integer increments), so metering does
not itself distort the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

__all__ = ["OverheadMeter", "aggregate_overheads"]


@dataclass
class OverheadMeter:
    """Operation counters for one agent."""

    #: movement decisions taken (one per step with a reachable neighbour).
    decisions: int = 0
    #: candidate neighbours examined across all decisions.
    candidates_examined: int = 0
    #: footprint marks written.
    footprints_stamped: int = 0
    #: footprint-board consultations (one per stigmergic decision).
    footprint_lookups: int = 0
    #: meetings participated in.
    meetings: int = 0
    #: knowledge items (edges / visits / tracks / history entries)
    #: received from peers during meetings.
    items_received: int = 0
    #: route entries written into node tables (routing agents).
    routes_installed: int = 0

    def merged_with(self, other: "OverheadMeter") -> "OverheadMeter":
        """The element-wise sum of two meters."""
        return OverheadMeter(
            decisions=self.decisions + other.decisions,
            candidates_examined=self.candidates_examined + other.candidates_examined,
            footprints_stamped=self.footprints_stamped + other.footprints_stamped,
            footprint_lookups=self.footprint_lookups + other.footprint_lookups,
            meetings=self.meetings + other.meetings,
            items_received=self.items_received + other.items_received,
            routes_installed=self.routes_installed + other.routes_installed,
        )

    def per_decision(self) -> Dict[str, float]:
        """Counters normalised by the number of decisions taken."""
        if self.decisions == 0:
            return {name: 0.0 for name in self.as_dict()}
        return {
            name: value / self.decisions for name, value in self.as_dict().items()
        }

    def as_dict(self) -> Dict[str, int]:
        """All counters as a plain dict."""
        return {
            "decisions": self.decisions,
            "candidates_examined": self.candidates_examined,
            "footprints_stamped": self.footprints_stamped,
            "footprint_lookups": self.footprint_lookups,
            "meetings": self.meetings,
            "items_received": self.items_received,
            "routes_installed": self.routes_installed,
        }


def aggregate_overheads(meters: Iterable[OverheadMeter]) -> OverheadMeter:
    """Sum a collection of per-agent meters into one team meter."""
    total = OverheadMeter()
    for meter in meters:
        total = total.merged_with(meter)
    return total
