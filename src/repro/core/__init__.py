"""The paper's primary contribution: mobile software agents.

* :mod:`repro.core.knowledge` — first-/second-hand topology knowledge,
* :mod:`repro.core.history` — bounded visit history (routing agents),
* :mod:`repro.core.stigmergy` — footprint boards (the paper's novelty),
* :mod:`repro.core.mapping_agents` — random / conscientious /
  super-conscientious mapping agents, plain and stigmergic,
* :mod:`repro.core.routing_agents` — random / oldest-node routing agents,
  with optional direct communication ("visiting") and the paper's
  future-work stigmergic variant,
* :mod:`repro.core.comms` — meeting (direct-communication) protocols.
"""

from repro.core.ant_agents import AntRoutingAgent
from repro.core.history import VisitHistory
from repro.core.knowledge import TopologyKnowledge
from repro.core.overhead import OverheadMeter, aggregate_overheads
from repro.core.mapping_agents import (
    ConscientiousAgent,
    MappingAgent,
    RandomAgent,
    SuperConscientiousAgent,
    make_mapping_agent,
)
from repro.core.routing_agents import (
    GatewayTrack,
    OldestNodeAgent,
    RandomRoutingAgent,
    RoutingAgent,
    make_routing_agent,
)
from repro.core.stigmergy import Footprint, FootprintBoard, StigmergyField

__all__ = [
    "TopologyKnowledge",
    "VisitHistory",
    "Footprint",
    "FootprintBoard",
    "StigmergyField",
    "MappingAgent",
    "RandomAgent",
    "ConscientiousAgent",
    "SuperConscientiousAgent",
    "make_mapping_agent",
    "RoutingAgent",
    "RandomRoutingAgent",
    "OldestNodeAgent",
    "AntRoutingAgent",
    "GatewayTrack",
    "make_routing_agent",
    "OverheadMeter",
    "aggregate_overheads",
]
