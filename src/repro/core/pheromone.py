"""Attractive pheromone trails (the ant-colony comparison baseline).

The paper's related work (Ducatelle et al.'s AntHocNet [9], Zhang et
al.'s pheromone routing [11]) coordinates agents with *attractive*
pheromone: agents that recently visited a gateway strengthen trails
pointing back toward it, and other agents preferentially follow strong
trails.  This is the conceptual opposite of the paper's *repulsive*
footprints, so the ``ext2`` experiment pits the two against each other
on the identical routing task.

:class:`PheromoneField` stores, per node, a trail strength toward each
neighbour.  Strengths evaporate multiplicatively each step and tiny
residues are pruned, so the field stays sparse and recent information
dominates — the standard ACO construction.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.errors import ConfigurationError
from repro.types import NodeId

__all__ = ["PheromoneField"]

#: strengths below this are pruned during evaporation.
_PRUNE_BELOW = 1e-4


class PheromoneField:
    """Per-node trail strengths toward neighbours."""

    def __init__(self, evaporation: float = 0.05, initial: float = 0.1) -> None:
        if not 0.0 <= evaporation < 1.0:
            raise ConfigurationError(
                f"evaporation must be in [0, 1), got {evaporation}"
            )
        if initial <= 0.0:
            raise ConfigurationError(f"initial strength must be > 0, got {initial}")
        self.evaporation = evaporation
        #: the strength read for a trail nobody reinforced; keeping it
        #: positive gives every neighbour a nonzero roulette weight.
        self.initial = initial
        self._trails: Dict[NodeId, Dict[NodeId, float]] = {}

    def deposit(self, node: NodeId, toward: NodeId, amount: float) -> None:
        """Reinforce the trail on ``node`` pointing at ``toward``."""
        if amount <= 0.0:
            raise ConfigurationError(f"deposit must be positive, got {amount}")
        trails = self._trails.setdefault(node, {})
        trails[toward] = trails.get(toward, 0.0) + amount

    def strength(self, node: NodeId, toward: NodeId) -> float:
        """Trail strength (including the baseline ``initial``)."""
        return self.initial + self._trails.get(node, {}).get(toward, 0.0)

    def weights(self, node: NodeId, candidates: Iterable[NodeId]) -> List[float]:
        """Roulette weights for ``candidates`` out of ``node``."""
        trails = self._trails.get(node, {})
        return [self.initial + trails.get(c, 0.0) for c in candidates]

    def evaporate(self) -> None:
        """Decay every trail by the evaporation rate; prune residue."""
        keep = 1.0 - self.evaporation
        empty_nodes = []
        for node, trails in self._trails.items():
            dead = []
            for toward in trails:
                trails[toward] *= keep
                if trails[toward] < _PRUNE_BELOW:
                    dead.append(toward)
            for toward in dead:
                del trails[toward]
            if not trails:
                empty_nodes.append(node)
        for node in empty_nodes:
            del self._trails[node]

    def clear_node(self, node: NodeId) -> int:
        """Drop all trail state touching ``node`` (it crashed).

        Removes the node's own trails and every other node's trail
        pointing at it; returns how many trails were dropped.
        """
        removed = len(self._trails.pop(node, {}))
        empty_nodes = []
        for owner, trails in self._trails.items():
            if trails.pop(node, None) is not None:
                removed += 1
            if not trails:
                empty_nodes.append(owner)
        for owner in empty_nodes:
            del self._trails[owner]
        return removed

    def total(self) -> float:
        """Sum of all deposited (non-baseline) strength — diagnostics."""
        return sum(sum(trails.values()) for trails in self._trails.values())

    def trail_count(self) -> int:
        """Number of live (node, toward) trails."""
        return sum(len(trails) for trails in self._trails.values())
