"""Mapping agents: random, conscientious, super-conscientious.

Each agent follows the paper's per-step protocol (§II-B.1): learn the
out-edges of the current node, learn from co-located peers, choose the
next node, and — if stigmergic — imprint the chosen target on the current
node so later agents avoid following.

Movement policies:

* **random** — uniform choice among current out-neighbours,
* **conscientious** — the out-neighbour never visited / visited least
  recently *first-hand* (a depth-first-search-like sweep),
* **super-conscientious** — same recency rule but over combined first-
  plus second-hand visit knowledge.

Every policy exists in a plain (Minar baseline) and a stigmergic (paper
contribution) flavour, selected by the ``stigmergic`` flag.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.core.knowledge import TopologyKnowledge
from repro.core.migration import MigrationState
from repro.core.overhead import OverheadMeter
from repro.core.stigmergy import StigmergyField
from repro.errors import ConfigurationError
from repro.types import AgentId, NodeId, Time

__all__ = [
    "MappingAgent",
    "RandomAgent",
    "ConscientiousAgent",
    "SuperConscientiousAgent",
    "MAPPING_AGENT_KINDS",
    "make_mapping_agent",
]


class MappingAgent:
    """Base class: identity, location, knowledge, and the step protocol."""

    #: Short machine-readable policy name, set by subclasses.
    kind: str = "base"

    def __init__(
        self,
        agent_id: AgentId,
        start: NodeId,
        rng: random.Random,
        stigmergic: bool = False,
        epsilon: float = 0.0,
    ) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ConfigurationError(f"epsilon must be in [0, 1], got {epsilon}")
        self.agent_id = agent_id
        self.location = start
        self.stigmergic = stigmergic
        #: Minar's dispersal fix: with probability ``epsilon`` the agent
        #: ignores its policy and moves uniformly at random.  The paper
        #: notes Minar et al. "add randomness to the decision that the
        #: super-conscientious agents make in order to disperse their
        #: agents across the network" (§II-C.3); stigmergy is the paper's
        #: alternative to this hack (compare the abl3 experiment).
        self.epsilon = epsilon
        self.knowledge = TopologyKnowledge()
        self.overhead = OverheadMeter()
        self.migration = MigrationState()
        self._rng = rng

    # -- step protocol --------------------------------------------------

    def observe(self, out_neighbors: Sequence[NodeId], time: Time) -> None:
        """Phase 1: learn the out-edges of the current node (first-hand)."""
        self.knowledge.observe_node(self.location, out_neighbors, time)

    def choose_next(
        self,
        out_neighbors: Sequence[NodeId],
        time: Time,
        field: Optional[StigmergyField] = None,
    ) -> Optional[NodeId]:
        """Phase 3: pick the next node, or ``None`` when stranded.

        When the agent is stigmergic and a field is supplied, fresh
        footprints on the current node veto candidates first (falling
        back to all candidates if the veto empties the set).
        """
        candidates: List[NodeId] = sorted(out_neighbors)
        if not candidates:
            return None
        self.overhead.decisions += 1
        if self.stigmergic and field is not None:
            self.overhead.footprint_lookups += 1
            candidates = field.filter_candidates(self.location, candidates, time)
        self.overhead.candidates_examined += len(candidates)
        if self.epsilon > 0.0 and self._rng.random() < self.epsilon:
            return self._rng.choice(candidates)
        return self._pick(candidates)

    def leave_footprint(
        self, target: NodeId, time: Time, field: StigmergyField
    ) -> None:
        """Phase 4: imprint the chosen target on the current node."""
        if self.stigmergic:
            self.overhead.footprints_stamped += 1
            field.stamp(self.location, self.agent_id, target, time)

    def move_to(self, target: NodeId) -> None:
        """Commit the move chosen this step."""
        self.location = target

    def reset_for_respawn(self, start: NodeId, time: Time) -> None:
        """Restart this agent fresh at ``start`` after its node crashed.

        The map it carried died with the host node, so a respawned
        mapping agent begins with empty knowledge.  Any in-flight hop
        (retry/backoff state) dies with it; the overhead meter survives
        — it accounts for the whole run, respawns included.
        """
        del time  # mapping knowledge is re-observed, not time-stamped here
        self.location = start
        self.knowledge = TopologyKnowledge()
        self.migration.reset()

    # -- policy ----------------------------------------------------------

    def _pick(self, candidates: List[NodeId]) -> NodeId:
        raise NotImplementedError

    def _least_recent(self, candidates: List[NodeId], recency) -> NodeId:
        """Uniform choice among the candidates with the oldest recency."""
        best_time = min(recency(candidate) for candidate in candidates)
        best = [candidate for candidate in candidates if recency(candidate) == best_time]
        if len(best) == 1:
            return best[0]
        return self._rng.choice(best)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flavour = "stigmergic " if self.stigmergic else ""
        return f"<{flavour}{self.kind} agent {self.agent_id} at node {self.location}>"


class RandomAgent(MappingAgent):
    """Moves to a uniformly random adjacent node each step."""

    kind = "random"

    def _pick(self, candidates: List[NodeId]) -> NodeId:
        return self._rng.choice(candidates)


class ConscientiousAgent(MappingAgent):
    """Prefers the neighbour least recently visited *first-hand*.

    Ignores what peers tell it when moving — second-hand knowledge is
    stored (it counts toward map completeness) but never steers.
    """

    kind = "conscientious"

    def _pick(self, candidates: List[NodeId]) -> NodeId:
        return self._least_recent(candidates, self.knowledge.last_first_hand_visit)


class SuperConscientiousAgent(MappingAgent):
    """Prefers the neighbour least recently visited by *anyone it knows of*."""

    kind = "super-conscientious"

    def _pick(self, candidates: List[NodeId]) -> NodeId:
        return self._least_recent(candidates, self.knowledge.last_combined_visit)


#: kind-string -> class, for configs and the CLI.
MAPPING_AGENT_KINDS = {
    RandomAgent.kind: RandomAgent,
    ConscientiousAgent.kind: ConscientiousAgent,
    SuperConscientiousAgent.kind: SuperConscientiousAgent,
}


def make_mapping_agent(
    kind: str,
    agent_id: AgentId,
    start: NodeId,
    rng: random.Random,
    stigmergic: bool = False,
    epsilon: float = 0.0,
) -> MappingAgent:
    """Instantiate a mapping agent by kind name."""
    try:
        cls = MAPPING_AGENT_KINDS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown mapping agent kind {kind!r}; "
            f"expected one of {sorted(MAPPING_AGENT_KINDS)}"
        ) from None
    return cls(agent_id, start, rng, stigmergic=stigmergic, epsilon=epsilon)
