"""An agent's knowledge of the network topology.

The paper (after Minar et al.) distinguishes *first-hand* knowledge —
edges and node visits the agent experienced itself — from *second-hand*
knowledge learned from peers during co-located meetings.  Conscientious
agents move using first-hand visit recency only; super-conscientious
agents combine both; the finishing-time metric counts an agent as done
when its *combined* edge knowledge covers the whole network.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Set

from repro.types import Edge, NEVER, NodeId, Time

__all__ = ["TopologyKnowledge"]


class TopologyKnowledge:
    """First- and second-hand topology knowledge of one agent."""

    def __init__(self) -> None:
        self._edges_first: Set[Edge] = set()
        self._edges_all: Set[Edge] = set()
        self._visits_first: Dict[NodeId, Time] = {}
        self._visits_second: Dict[NodeId, Time] = {}

    # ------------------------------------------------------------------
    # First-hand learning
    # ------------------------------------------------------------------

    def observe_node(
        self, node: NodeId, out_neighbors: Iterable[NodeId], time: Time
    ) -> None:
        """Record standing on ``node`` at ``time`` and seeing its out-edges."""
        self._visits_first[node] = time
        for neighbor in out_neighbors:
            edge = (node, neighbor)
            self._edges_first.add(edge)
            self._edges_all.add(edge)

    # ------------------------------------------------------------------
    # Second-hand learning (meetings)
    # ------------------------------------------------------------------

    def absorb(self, edges: Iterable[Edge], visits: Dict[NodeId, Time]) -> None:
        """Merge peer-provided edges and visit times as second-hand knowledge.

        Visit times keep the most recent report per node; edges accumulate
        monotonically.  Absorbing is idempotent.
        """
        self._edges_all.update(edges)
        mine = self._visits_second
        for node, time in visits.items():
            if time > mine.get(node, NEVER):
                mine[node] = time

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def known_edge_count(self) -> int:
        """Number of distinct edges known first- or second-hand."""
        return len(self._edges_all)

    @property
    def first_hand_edges(self) -> FrozenSet[Edge]:
        """Edges the agent traversed or observed itself."""
        return frozenset(self._edges_first)

    @property
    def all_edges(self) -> FrozenSet[Edge]:
        """Every known edge, first- or second-hand."""
        return frozenset(self._edges_all)

    def knows_edge(self, edge: Edge) -> bool:
        """Whether ``edge`` is known (either hand)."""
        return edge in self._edges_all

    def last_first_hand_visit(self, node: NodeId) -> Time:
        """When the agent itself last stood on ``node`` (``NEVER`` if not)."""
        return self._visits_first.get(node, NEVER)

    def last_combined_visit(self, node: NodeId) -> Time:
        """Most recent visit to ``node`` by anyone the agent knows of."""
        return max(
            self._visits_first.get(node, NEVER),
            self._visits_second.get(node, NEVER),
        )

    def completeness(self, total_edges: int) -> float:
        """Fraction of the network's edges this agent knows."""
        if total_edges <= 0:
            return 1.0
        return min(1.0, self.known_edge_count / total_edges)

    # ------------------------------------------------------------------
    # Sharing (what a peer receives in a meeting)
    # ------------------------------------------------------------------

    def shareable_edges(self) -> Set[Edge]:
        """Edges to hand to a peer — everything known, per Minar's model.

        Returns the live internal set for speed; callers must not mutate.
        """
        return self._edges_all

    def shareable_visits(self) -> Dict[NodeId, Time]:
        """Visit-recency map to hand to a peer (live internal view)."""
        # A peer cares about the freshest visit per node regardless of
        # which hand it is on our side; compute the combined view.
        combined = dict(self._visits_second)
        for node, time in self._visits_first.items():
            if time > combined.get(node, NEVER):
                combined[node] = time
        return combined
