"""Ant-colony routing agents (comparison baseline, paper refs [9], [11]).

An :class:`AntRoutingAgent` coordinates through *attractive* pheromone
instead of the paper's repulsive footprints: after each move it
reinforces, on its new node, the trail pointing back the way it came —
scaled down by how many hops ago it last stood on a gateway — and its
movement samples neighbours with probability proportional to trail
strength (with an exploration probability keeping it ergodic, the
standard ACO recipe).  It installs routing-table entries exactly like
every other routing agent, so the connectivity metric compares the
*coordination styles*, not different bookkeeping.

The expected outcome (ext2): attraction concentrates ants around
gateways, which refreshes nearby routes at the expense of the periphery
— the paper's dispersal-based agents should win on network-wide
connectivity.  "A bigger ant population results in faster convergence
while consuming higher bandwidth" [11] still shows as the population
effect.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.routing_agents import ROUTING_AGENT_KINDS, RoutingAgent
from repro.errors import ConfigurationError
from repro.core.pheromone import PheromoneField
from repro.types import AgentId, NodeId, Time

__all__ = ["AntRoutingAgent"]


class AntRoutingAgent(RoutingAgent):
    """Moves by pheromone roulette; deposits trails toward gateways."""

    kind = "ant"

    def __init__(
        self,
        agent_id: AgentId,
        start: NodeId,
        rng: random.Random,
        history_size: int = 10,
        visiting: bool = False,
        stigmergic: bool = False,
        follow_probability: float = 0.85,
        deposit_decay: float = 0.8,
    ) -> None:
        super().__init__(
            agent_id,
            start,
            rng,
            history_size=history_size,
            visiting=visiting,
            stigmergic=stigmergic,
        )
        if not 0.0 <= follow_probability <= 1.0:
            raise ConfigurationError(
                f"follow_probability must be in [0, 1], got {follow_probability}"
            )
        if not 0.0 < deposit_decay <= 1.0:
            raise ConfigurationError(
                f"deposit_decay must be in (0, 1], got {deposit_decay}"
            )
        self.follow_probability = follow_probability
        self.deposit_decay = deposit_decay
        #: injected by the routing world when ants are in play.
        self.pheromone: Optional[PheromoneField] = None

    def _pick(self, candidates: List[NodeId]) -> NodeId:
        if (
            self.pheromone is None
            or self._rng.random() >= self.follow_probability
        ):
            return self._rng.choice(candidates)
        weights = self.pheromone.weights(self.location, candidates)
        return self._rng.choices(candidates, weights=weights, k=1)[0]

    def move_to(self, target: NodeId, time: Time, target_is_gateway: bool) -> NodeId:
        origin = super().move_to(target, time, target_is_gateway)
        if self.pheromone is not None and self.tracks:
            best_hops = min(track.hops for track in self.tracks.values())
            if best_hops > 0:
                # "Going back the way I came leads to a gateway" — the
                # closer that gateway, the stronger the reinforcement.
                self.pheromone.deposit(
                    self.location, origin, self.deposit_decay**best_hops
                )
        return origin


ROUTING_AGENT_KINDS[AntRoutingAgent.kind] = AntRoutingAgent
