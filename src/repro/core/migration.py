"""Reliable agent migration over a lossy channel.

An agent *is* its payload: when a hop across a wireless link fails, the
agent never left its node.  This module wraps the raw
:class:`~repro.net.channel.ChannelModel` verdicts in the bounded
retry/backoff protocol both worlds share:

* a failed hop leaves the agent in place and schedules a retry after an
  exponentially growing wait (``backoff_base * 2**(failures-1)`` steps,
  clamped to ``backoff_cap``),
* while waiting, the agent takes no movement decision (the radio is the
  bottleneck, not the policy),
* once a retry is due the agent re-attempts the *same* target — unless
  the link vanished meanwhile, in which case it re-plans immediately,
* after ``hop_retries`` failed retries the target is abandoned: the
  agent re-plans via its normal policy next step, and the world treats
  the abandonment as link-quality evidence (routing worlds drop table
  entries whose next hop is the unreachable neighbour).

State lives in a per-agent :class:`MigrationState`; the protocol logic
lives in :class:`ReliableMigration` so the mapping and routing worlds
cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Container, Dict, Iterable, Optional, Sequence, Tuple

from repro.net.channel import ChannelModel
from repro.types import NodeId, Time

__all__ = [
    "DELIVERED",
    "RETRY",
    "ABANDONED",
    "MigrationState",
    "ReliableMigration",
]

#: Hop outcomes returned by :meth:`ReliableMigration.attempt_hop`.
DELIVERED = "delivered"
RETRY = "retry"
ABANDONED = "abandoned"


@dataclass
class MigrationState:
    """Per-agent retry/backoff bookkeeping for the current target."""

    #: the neighbour the agent is trying to reach; ``None`` = no pending hop.
    target: Optional[NodeId] = None
    #: consecutive failed attempts toward ``target``.
    failures: int = 0
    #: earliest step at which the next retry may fire.
    retry_at: Time = 0

    def reset(self) -> None:
        """Forget the pending hop (delivery, abandonment, or respawn)."""
        self.target = None
        self.failures = 0
        self.retry_at = 0


class ReliableMigration:
    """The shared retry/backoff protocol driving agent hops."""

    def __init__(self, channel: ChannelModel) -> None:
        self.channel = channel

    def resolve_intent(
        self, agent, now: Time, out_neighbors: Container[NodeId]
    ) -> Tuple[bool, Optional[NodeId]]:
        """What this agent does this step: ``(needs_decision, forced_target)``.

        * backoff still running → ``(False, None)``: the agent waits,
        * retry due and the target is still a live out-neighbour →
          ``(False, target)``: re-attempt without consulting the policy,
        * retry due but the link is gone → state cleared, ``(True, None)``:
          re-plan now rather than burn retries on a dead link,
        * no pending hop → ``(True, None)``: the normal decision phase.
        """
        state: MigrationState = agent.migration
        if state.target is None:
            return True, None
        if now < state.retry_at:
            return False, None
        if state.target in out_neighbors:
            return False, state.target
        state.reset()
        return True, None

    def resolve_intents_batch(
        self,
        agents: Sequence,
        indices: Iterable[int],
        now: Time,
        adjacency: Dict[NodeId, Container[NodeId]],
        locations,
    ) -> Dict[int, Tuple[bool, Optional[NodeId]]]:
        """Resolve pending-hop intents for the given agent indices only.

        The batch engine's fast path: over a lossless channel no hop is
        ever in flight, so ``indices`` is empty and the whole population
        skips :meth:`resolve_intent`; with losses only the few agents in
        retry/backoff pay the per-agent call.  ``locations`` is the
        engine's location array (== each agent's object location at
        decision time).  Returns ``index -> (needs_decision, forced)``
        with :meth:`resolve_intent` semantics, mutating only the listed
        agents' states — exactly the set the per-object loop would touch.
        """
        resolved: Dict[int, Tuple[bool, Optional[NodeId]]] = {}
        for index in indices:
            resolved[index] = self.resolve_intent(
                agents[index], now, adjacency[int(locations[index])]
            )
        return resolved

    def attempt_hop(self, agent, target: NodeId, now: Time) -> str:
        """Try to deliver ``agent`` to ``target``; returns the outcome.

        Updates the agent's migration state and overhead counters; the
        caller commits the move only on :data:`DELIVERED` and converts
        :data:`ABANDONED` into link-quality evidence.
        """
        state: MigrationState = agent.migration
        config = self.channel.config
        agent.overhead.hops_attempted += 1
        if self.channel.attempt(agent.location, target, now, f"hop:{agent.agent_id}"):
            state.reset()
            return DELIVERED
        agent.overhead.hops_lost += 1
        if state.target != target:
            state.target = target
            state.failures = 1
        else:
            state.failures += 1
        if state.failures > config.hop_retries:
            state.reset()
            agent.overhead.hops_abandoned += 1
            return ABANDONED
        agent.overhead.hop_retries += 1
        state.retry_at = now + min(
            config.backoff_cap, config.backoff_base * 2 ** (state.failures - 1)
        )
        return RETRY
