"""Bounded visit history for routing agents.

The routing scenario's "history size" parameter (paper §III-E) is the
number of node visits an agent can remember.  The oldest-node agent
"preferentially visits the adjacent node that it last visited the longest
time before, that it never visited, or that it doesn't remember visiting"
— forgetting matters, so the history evicts its least recently visited
entry when full.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, Tuple

from repro.errors import ConfigurationError
from repro.types import NEVER, NodeId, Time

__all__ = ["VisitHistory"]


class VisitHistory:
    """A capacity-bounded map from node id to last visit time."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"history capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._visits: Dict[NodeId, Time] = {}

    def __len__(self) -> int:
        return len(self._visits)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._visits

    def record(self, node: NodeId, time: Time) -> None:
        """Record a visit, evicting the stalest entry if over capacity."""
        visits = self._visits
        visits[node] = time
        if len(visits) > self.capacity:
            # Inlined min-by-(time, id): this runs once per agent step,
            # and a key-function min costs a tuple build per entry.
            stalest = None
            stale_time = None
            for n, t in visits.items():
                if (
                    stale_time is None
                    or t < stale_time
                    or (t == stale_time and n < stalest)
                ):
                    stalest = n
                    stale_time = t
            del visits[stalest]

    def last_visit(self, node: NodeId) -> Time:
        """Last remembered visit to ``node``; ``NEVER`` when forgotten/unvisited."""
        return self._visits.get(node, NEVER)

    def items(self) -> Iterator[Tuple[NodeId, Time]]:
        """All remembered ``(node, time)`` pairs (arbitrary order)."""
        return iter(self._visits.items())

    def merge_from(self, other: "VisitHistory") -> None:
        """Adopt another agent's memories — the paper's meeting side effect.

        After a meeting "all participating agents are going to be
        identical in terms of history knowledge" (§III-F).  Keeps the
        freshest time per node, then trims back to capacity by evicting
        the stalest entries.
        """
        for node, time in other._visits.items():
            if time > self._visits.get(node, NEVER):
                self._visits[node] = time
        excess = len(self._visits) - self.capacity
        if excess > 0:
            # Single-pass trim: evicting the `excess` stalest entries by
            # (time, id) leaves exactly the survivors the old one-at-a-time
            # min() loop kept, at O(n log k) instead of O(k*n) per meeting.
            stale = heapq.nsmallest(
                excess, self._visits.items(), key=lambda kv: (kv[1], kv[0])
            )
            for node, __ in stale:
                del self._visits[node]

    def snapshot(self) -> Dict[NodeId, Time]:
        """A defensive copy of the remembered visits."""
        return dict(self._visits)
