"""Routing agents: random and oldest-node, with visiting and stigmergy.

A routing agent wanders the MANET carrying *gateway tracks*: for every
gateway it passed through recently it remembers how many hops ago that
was.  Each time it arrives at a node it installs, for every live track, a
route entry "to reach gateway G, go back to the node I just came from" —
the entries it leaves along its walk chain together into a reverse path
to the gateway.  A track is forgotten once its hop count exceeds the
agent's history size: a small memory can only seed short routes, which is
exactly the paper's history-size effect (§III-E).

Movement policies:

* **random** — uniform choice among reachable neighbours (baseline),
* **oldest-node** — the neighbour last visited longest ago, never
  visited, or no longer remembered (bounded :class:`VisitHistory`).

Options:

* ``visiting`` — the paper's direct communication (§III-F): co-located
  agents merge gateway tracks (adopting the best known route) *and*
  visit histories (becoming "identical in terms of history knowledge",
  which is what makes visiting counterproductive for oldest-node agents).
* ``stigmergic`` — the paper's future work brought to the routing task:
  agents imprint their next target and avoid freshly targeted nodes,
  using the same :class:`~repro.core.stigmergy.StigmergyField` mechanism
  as the mapping scenario.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.history import VisitHistory
from repro.core.migration import MigrationState
from repro.core.overhead import OverheadMeter
from repro.core.stigmergy import StigmergyField
from repro.errors import ConfigurationError
from repro.types import NEVER, AgentId, NodeId, Time

__all__ = [
    "GatewayTrack",
    "RoutingAgent",
    "RandomRoutingAgent",
    "OldestNodeAgent",
    "ROUTING_AGENT_KINDS",
    "make_routing_agent",
]


@dataclass(frozen=True)
class GatewayTrack:
    """How far (in the agent's own hops) a gateway is behind the agent."""

    hops: int
    visited_at: Time

    def stepped(self) -> "GatewayTrack":
        """The track after the agent takes one more hop."""
        return GatewayTrack(hops=self.hops + 1, visited_at=self.visited_at)

    def better_than(self, other: "GatewayTrack") -> bool:
        """Preference order for merging: fewer hops, then fresher."""
        if self.hops != other.hops:
            return self.hops < other.hops
        return self.visited_at > other.visited_at


class RoutingAgent:
    """Base class with track bookkeeping and the 4-phase step protocol."""

    kind: str = "base"

    def __init__(
        self,
        agent_id: AgentId,
        start: NodeId,
        rng: random.Random,
        history_size: int = 10,
        visiting: bool = False,
        stigmergic: bool = False,
    ) -> None:
        if history_size < 1:
            raise ConfigurationError(f"history_size must be >= 1, got {history_size}")
        self.agent_id = agent_id
        self.location = start
        self.history_size = history_size
        self.visiting = visiting
        self.stigmergic = stigmergic
        self.history = VisitHistory(history_size)
        self.tracks: Dict[NodeId, GatewayTrack] = {}
        self.overhead = OverheadMeter()
        self.migration = MigrationState()
        self._rng = rng

    # -- phase 1: decide --------------------------------------------------

    def decide(
        self,
        out_neighbors: Sequence[NodeId],
        time: Time,
        field: Optional[StigmergyField] = None,
    ) -> Optional[NodeId]:
        """Pick the next node from current neighbours (``None`` = stay)."""
        candidates: List[NodeId] = sorted(out_neighbors)
        if not candidates:
            return None
        self.overhead.decisions += 1
        if self.stigmergic and field is not None:
            self.overhead.footprint_lookups += 1
            candidates = field.filter_candidates(self.location, candidates, time)
        self.overhead.candidates_examined += len(candidates)
        return self._pick(candidates)

    def _pick(self, candidates: List[NodeId]) -> NodeId:
        raise NotImplementedError

    # -- phase 2: visiting (direct communication) --------------------------

    def exchange_with(self, peers: Iterable["RoutingAgent"]) -> None:
        """Adopt the best route tracks and the union of peer histories.

        Must be called on snapshots taken before anyone merged this step
        (the world handles that), so exchanges are order-independent.
        """
        for peer in peers:
            for gateway, track in peer.tracks.items():
                mine = self.tracks.get(gateway)
                if mine is None or track.better_than(mine):
                    self.tracks[gateway] = track
            self.history.merge_from(peer.history)

    # -- phases 3 & 4: move, then install routes ---------------------------

    def leave_footprint(self, target: NodeId, time: Time, field: StigmergyField) -> None:
        """Imprint the chosen target on the node being left (if stigmergic)."""
        if self.stigmergic:
            self.overhead.footprints_stamped += 1
            field.stamp(self.location, self.agent_id, target, time)

    def move_to(self, target: NodeId, time: Time, target_is_gateway: bool) -> NodeId:
        """Commit the move; returns the node the agent came from.

        Advances every gateway track by one hop, drops tracks that grew
        beyond the history size (the agent no longer remembers the path),
        records the visit, and — when the target is a gateway — resets
        that gateway's track to zero hops.
        """
        origin = self.location
        self.location = target
        advanced = {
            gateway: track.stepped()
            for gateway, track in self.tracks.items()
            if track.hops + 1 <= self.history_size
        }
        self.tracks = advanced
        if target_is_gateway:
            self.tracks[target] = GatewayTrack(hops=0, visited_at=time)
        self.history.record(target, time)
        return origin

    def stay(self, time: Time, here_is_gateway: bool) -> None:
        """No reachable neighbour: the agent waits in place this step."""
        if here_is_gateway:
            self.tracks[self.location] = GatewayTrack(hops=0, visited_at=time)
        self.history.record(self.location, time)

    def reset_for_respawn(self, start: NodeId, time: Time) -> None:
        """Restart this agent fresh at ``start`` after its node crashed.

        A respawned agent is a new process on a surviving node: gateway
        tracks and visit history died with the host, so carrying them
        across the teleport would fabricate routes no walk ever took.
        Pending-hop retry/backoff state dies too; the overhead meter
        survives — it accounts for the whole run, respawns included.
        """
        self.location = start
        self.tracks = {}
        self.history = VisitHistory(self.history_size)
        self.history.record(start, time)
        self.migration.reset()

    def installable_routes(self, came_from: NodeId) -> List:
        """Route entries to install at the current node after a move.

        Each live track becomes ``(gateway, next_hop=came_from, hops,
        gateway_seen_at)``; the caller stamps the installation time.
        Zero-hop tracks (the agent is standing *on* that gateway) install
        nothing — a gateway needs no route to itself.
        """
        return [
            (gateway, came_from, track.hops, track.visited_at)
            for gateway, track in self.tracks.items()
            if track.hops > 0
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        options = []
        if self.visiting:
            options.append("visiting")
        if self.stigmergic:
            options.append("stigmergic")
        suffix = f" [{', '.join(options)}]" if options else ""
        return f"<{self.kind} routing agent {self.agent_id} at {self.location}{suffix}>"


class RandomRoutingAgent(RoutingAgent):
    """Moves to a uniformly random reachable neighbour (paper baseline)."""

    kind = "random"

    def _pick(self, candidates: List[NodeId]) -> NodeId:
        return self._rng.choice(candidates)


class OldestNodeAgent(RoutingAgent):
    """Prefers the neighbour visited longest ago or not remembered at all."""

    kind = "oldest-node"

    def _pick(self, candidates: List[NodeId]) -> NodeId:
        visits = self.history._visits  # hot path: skip the method call
        best_time = None
        best: List[NodeId] = []
        for candidate in candidates:
            visited = visits.get(candidate, NEVER)
            if best_time is None or visited < best_time:
                best_time = visited
                best = [candidate]
            elif visited == best_time:
                best.append(candidate)
        if len(best) == 1:
            return best[0]
        return self._rng.choice(best)


#: kind-string -> class, for configs and the CLI.
ROUTING_AGENT_KINDS = {
    RandomRoutingAgent.kind: RandomRoutingAgent,
    OldestNodeAgent.kind: OldestNodeAgent,
}


def make_routing_agent(
    kind: str,
    agent_id: AgentId,
    start: NodeId,
    rng: random.Random,
    history_size: int = 10,
    visiting: bool = False,
    stigmergic: bool = False,
    **kind_specific,
) -> RoutingAgent:
    """Instantiate a routing agent by kind name.

    ``kind_specific`` keyword arguments are forwarded to the agent class
    (e.g. ``follow_probability`` for the ``"ant"`` kind).
    """
    try:
        cls = ROUTING_AGENT_KINDS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown routing agent kind {kind!r}; "
            f"expected one of {sorted(ROUTING_AGENT_KINDS)}"
        ) from None
    return cls(
        agent_id,
        start,
        rng,
        history_size=history_size,
        visiting=visiting,
        stigmergic=stigmergic,
        **kind_specific,
    )
