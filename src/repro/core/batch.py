"""Vectorized batch agent engine: whole populations step as arrays.

PR 4 made the *substrate* incremental; after it, per-object agent
stepping dominated ``routing_world_step``.  This module rebuilds the
routing agents' four-phase step (decide / meet / move / install,
paper §III-C) as a handful of numpy passes over structure-of-arrays
state:

* ``loc``            — ``int64[P]`` agent locations,
* ``track_hops``     — ``int64[P, G]`` gateway tracks keyed by gateway
  *column* (``-1`` = no track), with ``track_seen`` holding the
  matching ``visited_at`` stamps,
* ``vt``             — ``int64[P, N]`` dense visit-history times
  (``NEVER`` = not remembered) plus a per-agent entry count,
* one ``int64[P]`` delta array per :class:`OverheadMeter` counter.

The engine is an *optimization twin*, not a fork: the per-object
:class:`~repro.core.routing_agents.RoutingAgent` path stays the semantic
oracle (exactly how ``topology.set_vectorized`` keeps the pure-Python
grid path), and hypothesis property tests drive both to bit-identical
:class:`~repro.routing.world.RoutingResult`\\ s under faults, loss,
visiting, and stigmergy.  Bit-identity constrains the design in three
places:

* **RNG alignment** — ``rng.choice(seq)`` is ``seq[rng._randbelow(len(seq))]``
  on every supported CPython, and ``_randbelow`` consumes a
  length-dependent amount of the Mersenne stream.  The batch paths make
  *exactly* the draws the per-object code makes, in the same per-agent
  order: oldest-node draws only on ties, random draws once per decision,
  and single-candidate ties draw nothing.
* **Keyed channel** — loss draws hash ``(step, key)``, so outcomes are
  iteration-order independent and the lossless fast path can account a
  whole mover batch with one ``attempts`` bump.
* **Shared mutable substrates** — tables, stigmergy boards, and the
  health monitor are the real objects; scalar fallbacks touch them in
  the same agent order the per-object loop would.

Slow features degrade gracefully instead of forking semantics: with
stigmergy or a health monitor the decide pass runs a scalar mirror per
agent (same candidate ordering, same counters, same rng calls), and a
lossy channel routes movement through the real
:class:`~repro.core.migration.ReliableMigration` protocol per mover.
Only the clean configuration — the benchmark path — is fully
vectorized.

Agent *objects* stay allocated and authoritative for cold state
(identity, rng, :class:`MigrationState`, the lifetime
:class:`OverheadMeter`); locations are flushed back every step so the
fault injector, the invariant checker, and the channel's distance terms
always observe truthful positions.  :meth:`BatchAgentEngine.flush`
writes everything else back, which is what lets
``RoutingWorld.set_batch_agents`` toggle engines mid-run.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from typing import Any, Dict, List, Optional, Set, Tuple

try:  # pragma: no cover - exercised via both import outcomes in CI images
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.core.migration import ABANDONED, DELIVERED
from repro.core.overhead import OverheadMeter
from repro.core.routing_agents import GatewayTrack
from repro.errors import ConfigurationError
from repro.types import NEVER, NodeId, Time

__all__ = ["BATCH_AGENT_KINDS", "batch_agents_supported", "BatchAgentEngine"]

#: Agent kinds the batch engine vectorizes; others fall back per-object.
BATCH_AGENT_KINDS = frozenset({"random", "oldest-node"})

#: Sentinel larger than any visit time; masks padded candidate slots.
_BIG = 1 << 62

#: Overhead counters mirrored as per-agent delta arrays.  The meters on
#: the agent objects stay authoritative (scalar fallbacks and the
#: migration protocol write them directly); these arrays hold only the
#: increments the vectorized passes produce, flushed additively.
_OH_FIELDS = tuple(f.name for f in dataclass_fields(OverheadMeter))


def batch_agents_supported(agent_kind: str) -> bool:
    """Whether the batch engine can drive ``agent_kind`` (and numpy exists)."""
    return _np is not None and agent_kind in BATCH_AGENT_KINDS


class BatchAgentEngine:
    """Structure-of-arrays execution of one routing world's agent phases."""

    def __init__(self, world: Any) -> None:
        if _np is None:
            raise ConfigurationError(
                "the batch agent engine needs numpy; keep batch_agents off"
            )
        kind = world.config.agent_kind
        if kind not in BATCH_AGENT_KINDS:
            raise ConfigurationError(
                f"batch agent engine supports {sorted(BATCH_AGENT_KINDS)}, "
                f"not {kind!r}"
            )
        self._world = world
        self._kind = kind
        self._random_kind = kind == "random"
        agents = world.agents
        self._agents = agents
        self._population = len(agents)
        topology = world.topology
        self._node_count = topology.node_count
        gateways: List[NodeId] = list(topology.all_gateway_ids)
        self._gw_ids = gateways
        self._gw_col = _np.full(self._node_count, -1, dtype=_np.int64)
        for column, gateway in enumerate(gateways):
            self._gw_col[gateway] = column
        self._gw_mask = self._gw_col >= 0
        self._capacity = world.config.history_size
        self._hist = world.config.history_size
        # Per-agent CPython rngs (shared with the agent objects, so the
        # oracle path continues the same streams after a toggle).  The
        # bound ``_randbelow`` skips one method dispatch per tie-break;
        # it is a stable CPython API (3.2+) and exactly what
        # ``random.choice`` calls.
        self._rngs = [agent._rng for agent in agents]
        self._randbelow = [rng._randbelow for rng in self._rngs]
        self._all_idx = _np.arange(self._population, dtype=_np.int64)
        # SoA state + overhead delta arrays.
        self.loc = _np.zeros(self._population, dtype=_np.int64)
        self.track_hops = _np.full(
            (self._population, len(gateways)), -1, dtype=_np.int64
        )
        self.track_seen = _np.zeros(
            (self._population, len(gateways)), dtype=_np.int64
        )
        self.vt = _np.full(
            (self._population, self._node_count), NEVER, dtype=_np.int64
        )
        self.visit_count = _np.zeros(self._population, dtype=_np.int64)
        #: compact per-agent remembered-node ids: the first
        #: ``visit_count`` slots of each row hold the nodes whose ``vt``
        #: entry is live (order arbitrary), plus one spare slot for the
        #: record-then-evict overshoot.  Keeps history eviction
        #: O(capacity) per agent instead of an O(node_count) row scan.
        self.visit_nodes = _np.full(
            (self._population, self._capacity + 1), -1, dtype=_np.int64
        )
        # Grow-as-needed workspaces for the per-step candidate matrix
        # (unique-location rows + the per-agent gather); rebuilding them
        # every step dominated decide-phase allocation at scale.
        self._cand_pad = _np.empty((0, 0), dtype=_np.int64)
        self._cand_rows = _np.empty((0, 0), dtype=_np.int64)
        self._oh = {
            name: _np.zeros(self._population, dtype=_np.int64)
            for name in _OH_FIELDS
        }
        #: indices of agents with a hop in flight (retry/backoff state on
        #: the agent's own MigrationState).  Empty over a lossless
        #: channel — which is what lets the batch move pass skip
        #: ``resolve_intent`` entirely (the migration fast path).
        self._pending: Set[int] = set()
        for index in range(self._population):
            self._load_row(index)

    # ------------------------------------------------------------------
    # Object <-> array synchronisation
    # ------------------------------------------------------------------

    def _load_row(self, index: int) -> None:
        """(Re)load one agent's hot state from its object (spawn/respawn)."""
        agent = self._agents[index]
        self.loc[index] = agent.location
        row = self.track_hops[index]
        row.fill(-1)
        seen_row = self.track_seen[index]
        seen_row.fill(0)
        gw_col = self._gw_col
        for gateway, track in agent.tracks.items():
            column = int(gw_col[gateway])
            row[column] = track.hops
            seen_row[column] = track.visited_at
        vt_row = self.vt[index]
        vt_row.fill(NEVER)
        visits = agent.history._visits
        for node, time in visits.items():
            vt_row[node] = time
        self.visit_count[index] = len(visits)
        nodes_row = self.visit_nodes[index]
        nodes_row.fill(-1)
        if visits:
            nodes_row[: len(visits)] = list(visits)
        if agent.migration.target is None:
            self._pending.discard(index)
        else:
            self._pending.add(index)

    def _reload_respawned(self) -> None:
        """Pull rows for agents the fault layer rebuilt since last step.

        Locations are flushed object-side every step, so a mismatch can
        only mean the injector called ``reset_for_respawn`` (a respawn
        never lands on the crashed node, hence never on the old spot).
        """
        loc = self.loc
        for index, agent in enumerate(self._agents):
            if agent.location != loc[index]:
                self._load_row(index)

    def _flush_locations(self) -> None:
        locations = self.loc.tolist()
        for agent, location in zip(self._agents, locations):
            agent.location = location

    def flush(self) -> None:
        """Write every array back to the agent objects.

        Called at the end of :meth:`RoutingWorld.run` and when
        ``set_batch_agents(False)`` hands control back to the per-object
        oracle.  Track/history dicts are rebuilt in gateway-column /
        node-id order; their *content* matches the oracle exactly (no
        behaviour reads dict order), their insertion order may not.
        """
        self._flush_locations()
        gw_ids = self._gw_ids
        for index, agent in enumerate(self._agents):
            hops_row = self.track_hops[index]
            seen_row = self.track_seen[index]
            tracks: Dict[NodeId, GatewayTrack] = {}
            for column in _np.nonzero(hops_row >= 0)[0].tolist():
                tracks[gw_ids[column]] = GatewayTrack(
                    hops=int(hops_row[column]), visited_at=int(seen_row[column])
                )
            agent.tracks = tracks
            vt_row = self.vt[index]
            nodes = _np.nonzero(vt_row != NEVER)[0]
            agent.history._visits = dict(
                zip(nodes.tolist(), vt_row[nodes].tolist())
            )
            meter = agent.overhead
            for name, deltas in self._oh.items():
                delta = int(deltas[index])
                if delta:
                    setattr(meter, name, getattr(meter, name) + delta)
        for deltas in self._oh.values():
            deltas.fill(0)

    # ------------------------------------------------------------------
    # The step
    # ------------------------------------------------------------------

    def step_agents(
        self, now: Time, profiler: Any, phase_started: float
    ) -> Tuple[int, float]:
        """Run decide/meet/move/install for one step; returns installs.

        Mirrors the agent section of ``RoutingWorld._step`` phase for
        phase, including the profiler lap boundaries and obs hooks.
        """
        world = self._world
        topology = world.topology
        config = world.config
        adjacency = topology.adjacency_view()
        injector = world.injector
        if injector is not None:
            self._reload_respawned()
            down = topology.down_ids
            loc_list = self.loc.tolist()
            acting = [
                index
                for index, agent in enumerate(self._agents)
                if agent.agent_id not in injector._dead
                and loc_list[index] not in down
            ]
            acts = _np.asarray(acting, dtype=_np.int64)
        else:
            acts = self._all_idx
        # Phase 1: decide (or resolve an in-flight hop).
        targets = _np.full(self._population, -1, dtype=_np.int64)
        fresh = _np.zeros(self._population, dtype=bool)
        if config.stigmergic or world.health is not None:
            self._decide_scalar(acts, now, adjacency, targets, fresh)
        else:
            self._decide_vector(acts, now, adjacency, targets, fresh)
        if profiler is not None:
            phase_started = profiler.lap("decide", phase_started)
        # Phase 2: visiting exchanges.
        if config.visiting:
            held = self._meet(acts, now)
            world.result.meetings += held
            if world._obs is not None:
                world._obs.meetings(now, held)
        if profiler is not None:
            phase_started = profiler.lap("meet", phase_started)
        # Phases 3 & 4: move over the channel, then install routes.
        step_installs = self._move_and_install(acts, now, targets, fresh)
        self._flush_locations()
        if profiler is not None:
            phase_started = profiler.lap("move", phase_started)
        return step_installs, phase_started

    # ------------------------------------------------------------------
    # Phase 1: decide
    # ------------------------------------------------------------------

    def _decide_vector(
        self,
        acts: "_np.ndarray",
        now: Time,
        adjacency: Dict[NodeId, Set[NodeId]],
        targets: "_np.ndarray",
        fresh: "_np.ndarray",
    ) -> None:
        """Vectorized decisions for every acting agent (clean config)."""
        pending = self._pending
        if pending:
            # Migration fast path: only *acting* agents with a hop in
            # flight pay the per-agent resolve_intent; everyone else
            # goes vector.  (Inactive pending agents keep their state
            # untouched, exactly like the per-object loop.)
            resolved = self._world._migration.resolve_intents_batch(
                self._agents,
                [index for index in acts.tolist() if index in pending],
                now,
                adjacency,
                self.loc,
            )
            vector_rows = []
            for index in acts.tolist():
                decision = resolved.get(index)
                if decision is None:
                    vector_rows.append(index)
                    continue
                needs_decision, forced = decision
                if needs_decision:
                    pending.discard(index)
                    vector_rows.append(index)
                else:
                    if forced is not None:
                        targets[index] = forced
                    # waiting out a backoff: stay, no footprint re-stamp
            acts = _np.asarray(vector_rows, dtype=_np.int64)
            if not len(acts):
                return
        fresh[acts] = True
        cand, deg, valid = self._candidate_matrix(acts, adjacency)
        if cand is None:
            return
        rows = _np.nonzero(deg > 0)[0]
        if not len(rows):
            return
        moving = acts[rows]
        self._oh["decisions"][moving] += 1
        self._oh["candidates_examined"][moving] += deg[rows]
        randbelow = self._randbelow
        if self._random_kind:
            # random.choice draws _randbelow(len) for every decision.
            draws = [
                randbelow[agent](int(count))
                for agent, count in zip(moving.tolist(), deg[rows].tolist())
            ]
            cols = _np.asarray(draws, dtype=_np.int64)
            targets[moving] = cand[rows, cols]
            return
        # oldest-node: minimum last-visit time, ties broken by one
        # rng.choice over the tied candidates (ascending id order).
        times = self.vt[moving[:, None], _np.where(valid, cand, 0)[rows]]
        times = _np.where(valid[rows], times, _BIG)
        best = times.min(axis=1)
        ties = times == best[:, None]
        tie_counts = ties.sum(axis=1)
        draws = _np.zeros(len(rows), dtype=_np.int64)
        multi = _np.nonzero(tie_counts > 1)[0]
        if len(multi):
            movers_list = moving.tolist()
            counts_list = tie_counts.tolist()
            for row in multi.tolist():
                draws[row] = randbelow[movers_list[row]](counts_list[row])
        chosen = ties & (ties.cumsum(axis=1) == (draws + 1)[:, None])
        cols = chosen.argmax(axis=1)
        targets[moving] = cand[rows, cols]

    def _candidate_matrix(
        self, acts: "_np.ndarray", adjacency: Dict[NodeId, Set[NodeId]]
    ) -> Tuple[Optional["_np.ndarray"], Optional["_np.ndarray"], Optional["_np.ndarray"]]:
        """Sorted-neighbour candidate rows for the acting agents.

        Returns ``(cand, deg, valid)`` where ``cand`` is ``(R, W)`` of
        node ids padded with ``-1``, ``deg`` the per-row candidate count
        and ``valid`` the pad mask.  Candidates ascend within each row —
        the order ``sorted(out_neighbors)`` gives the per-object path.
        ``cand`` is a view into a per-engine workspace, valid only until
        the next call (the decide pass consumes it immediately).
        """
        locs = self.loc[acts]
        mask = self._world.topology._adj_mask
        if mask is not None:
            occupied = _np.unique(locs)
            sub = mask[occupied]
            counts = sub.sum(axis=1)
            width = int(counts.max()) if len(counts) else 0
            if width == 0:
                return None, None, None
            rows, cols = _np.nonzero(sub)
            pad_buf = self._cand_pad
            if pad_buf.shape[0] < len(occupied) or pad_buf.shape[1] < width:
                pad_buf = self._cand_pad = _np.empty(
                    (
                        max(pad_buf.shape[0], len(occupied)),
                        max(pad_buf.shape[1], width),
                    ),
                    dtype=_np.int64,
                )
            padded = pad_buf[: len(occupied), :width]
            padded.fill(-1)
            offsets = _np.repeat(_np.cumsum(counts) - counts, counts)
            padded[rows, _np.arange(len(cols)) - offsets] = cols
            occ_rows = _np.searchsorted(occupied, locs)
            row_buf = self._cand_rows
            if row_buf.shape[0] < len(locs) or row_buf.shape[1] < width:
                row_buf = self._cand_rows = _np.empty(
                    (max(row_buf.shape[0], len(locs)), max(row_buf.shape[1], width)),
                    dtype=_np.int64,
                )
            cand = row_buf[: len(locs), :width]
            _np.take(padded, occ_rows, axis=0, out=cand)
            deg = counts[occ_rows]
        else:
            # Pure-python topology twin: build rows from the dict view.
            lists = [sorted(adjacency[location]) for location in locs.tolist()]
            width = max((len(entry) for entry in lists), default=0)
            if width == 0:
                return None, None, None
            cand = _np.full((len(lists), width), -1, dtype=_np.int64)
            for row, entry in enumerate(lists):
                cand[row, : len(entry)] = entry
            deg = _np.asarray([len(entry) for entry in lists], dtype=_np.int64)
        return cand, deg, cand >= 0

    def _decide_scalar(
        self,
        acts: "_np.ndarray",
        now: Time,
        adjacency: Dict[NodeId, Set[NodeId]],
        targets: "_np.ndarray",
        fresh: "_np.ndarray",
    ) -> None:
        """Per-agent decide mirror for stigmergic / health-filtered runs.

        Line-for-line the logic of ``RoutingWorld._step``'s decide loop
        plus ``RoutingAgent.decide``, reading SoA state instead of the
        (stale) agent attributes.  Speed is irrelevant here; equivalence
        is what the property tests pin.
        """
        world = self._world
        migration = world._migration
        field = world.field
        health = world.health
        stigmergic = world.config.stigmergic
        pending = self._pending
        agents = self._agents
        vt = self.vt
        oh_decisions = self._oh["decisions"]
        oh_lookups = self._oh["footprint_lookups"]
        oh_examined = self._oh["candidates_examined"]
        for index in acts.tolist():
            location = int(self.loc[index])
            neighbors = adjacency[location]
            if index in pending:
                agent = agents[index]
                needs_decision, forced = migration.resolve_intent(
                    agent, now, neighbors
                )
                if not needs_decision:
                    if forced is not None:
                        targets[index] = forced
                    continue
                pending.discard(index)
            fresh[index] = True
            if health is not None:
                neighbors = health.filter_targets(location, neighbors)
            candidates = sorted(neighbors)
            if not candidates:
                continue
            oh_decisions[index] += 1
            if stigmergic and field is not None:
                oh_lookups[index] += 1
                candidates = field.filter_candidates(location, candidates, now)
            oh_examined[index] += len(candidates)
            if self._random_kind:
                targets[index] = self._rngs[index].choice(candidates)
                continue
            row = vt[index]
            best_time = None
            best: List[NodeId] = []
            for candidate in candidates:
                visited = int(row[candidate])
                if best_time is None or visited < best_time:
                    best_time = visited
                    best = [candidate]
                elif visited == best_time:
                    best.append(candidate)
            if len(best) == 1:
                targets[index] = best[0]
            else:
                targets[index] = self._rngs[index].choice(best)

    # ------------------------------------------------------------------
    # Phase 2: visiting meetings
    # ------------------------------------------------------------------

    def _meet(self, acts: "_np.ndarray", now: Time) -> int:
        """Group co-located agents and merge tracks + histories.

        The array mirror of
        :func:`repro.core.comms.exchange_routing_knowledge`: per group,
        the best track per gateway (fewest hops, then freshest) and the
        freshest-per-node merged history are computed from pre-exchange
        snapshots; every receiving participant adopts both, with the
        merged history trimmed to capacity by evicting the stalest
        ``(time, id)`` entries — `record()`'s tie-break.
        """
        groups: Dict[int, List[int]] = {}
        loc_list = self.loc.tolist()
        for index in acts.tolist():
            groups.setdefault(loc_list[index], []).append(index)
        channel = self._world.channel
        channel_fast = (
            channel.config.lossless and not channel._bursts and not channel._gray
        )
        capacity = self._capacity
        agents = self._agents
        meetings = 0
        oh_meetings = self._oh["meetings"]
        oh_received = self._oh["items_received"]
        oh_lost = self._oh["payloads_lost"]
        for location, members in groups.items():
            if len(members) < 2:
                continue
            meetings += 1
            rows = _np.asarray(members, dtype=_np.int64)
            hops = self.track_hops[rows]
            seen = self.track_seen[rows]
            present = hops >= 0
            any_track = present.any(axis=0)
            hop_masked = _np.where(present, hops, _BIG)
            best_hops = hop_masked.min(axis=0)
            seen_masked = _np.where(
                present & (hops == best_hops[None, :]), seen, -_BIG
            )
            best_seen = seen_masked.max(axis=0)
            merged = self.vt[rows].max(axis=0)
            merged_nodes = _np.nonzero(merged != NEVER)[0]
            merged_count = len(merged_nodes)
            payload = int(any_track.sum()) + merged_count
            if merged_count > capacity:
                times = merged[merged_nodes]
                order = _np.lexsort((merged_nodes, times))
                merged = merged.copy()
                merged[merged_nodes[order[: merged_count - capacity]]] = NEVER
                merged_nodes = _np.sort(
                    merged_nodes[order[merged_count - capacity :]]
                )
                merged_count = capacity
            new_hops = _np.where(any_track, best_hops, -1)
            new_seen = _np.where(any_track, best_seen, 0)
            oh_meetings[rows] += 1
            if channel_fast:
                channel.stats.attempts += len(members)
                receivers = members
            else:
                receivers = [
                    index
                    for index in members
                    if channel.attempt(
                        location,
                        location,
                        now,
                        f"meet:{agents[index].agent_id}",
                    )
                ]
                lost = [i for i in members if i not in receivers]
                if lost:
                    oh_lost[_np.asarray(lost, dtype=_np.int64)] += 1
            if receivers:
                rec = _np.asarray(receivers, dtype=_np.int64)
                self.track_hops[rec] = new_hops
                self.track_seen[rec] = new_seen
                self.vt[rec] = merged
                self.visit_count[rec] = merged_count
                nodes_row = _np.full(capacity + 1, -1, dtype=_np.int64)
                nodes_row[:merged_count] = merged_nodes
                self.visit_nodes[rec] = nodes_row
                oh_received[rec] += payload
        return meetings

    # ------------------------------------------------------------------
    # Phases 3 & 4: move and install
    # ------------------------------------------------------------------

    def _move_and_install(
        self,
        acts: "_np.ndarray",
        now: Time,
        targets: "_np.ndarray",
        fresh: "_np.ndarray",
    ) -> int:
        world = self._world
        topology = world.topology
        down = topology.down_ids
        gw_mask = self._gw_mask
        if down:
            live_gw = gw_mask.copy()
            live_gw[list(down)] = False
        else:
            live_gw = gw_mask
        # Stamp footprints before any movement, in agent order — the
        # same point the per-object loop calls leave_footprint.
        if world.config.stigmergic:
            field = world.field
            stamped = _np.nonzero((targets >= 0) & fresh)[0]
            if len(stamped):
                self._oh["footprints_stamped"][stamped] += 1
                agents = self._agents
                loc_list = self.loc.tolist()
                for index in stamped.tolist():
                    field.stamp(
                        loc_list[index],
                        agents[index].agent_id,
                        int(targets[index]),
                        now,
                    )
        mover_rows = _np.nonzero(targets[acts] >= 0)[0]
        movers = acts[mover_rows]
        channel = world.channel
        channel_fast = channel.config.lossless and not channel._bursts
        if channel_fast and world._obs is None and not self._pending:
            step_installs, stayed = self._move_fast(acts, movers, targets, now, live_gw)
        else:
            step_installs, stayed = self._move_scalar(movers, targets, now, live_gw)
        # Stayers standing on a live gateway refresh their zero-hop track
        # (RoutingAgent.stay), movers already handled arrival tracks.
        if len(movers) < len(acts) or stayed:
            stay_mask = _np.ones(self._population, dtype=bool)
            stay_mask[movers] = False
            if stayed:
                stay_mask[stayed] = True
            stayers = acts[stay_mask[acts]]
            on_gateway = stayers[live_gw[self.loc[stayers]]]
            if len(on_gateway):
                columns = self._gw_col[self.loc[on_gateway]]
                self.track_hops[on_gateway, columns] = 0
                self.track_seen[on_gateway, columns] = now
        # Every acting agent records exactly one visit at its final spot.
        self._record_visits(acts, now)
        return step_installs

    def _move_fast(
        self,
        acts: "_np.ndarray",
        movers: "_np.ndarray",
        targets: "_np.ndarray",
        now: Time,
        live_gw: "_np.ndarray",
    ) -> Tuple[int, List[int]]:
        """Lossless-channel movement: every hop delivers, in one pass."""
        if not len(movers):
            return 0, []
        dest = targets[movers]
        self._oh["hops_attempted"][movers] += 1
        channel = self._world.channel
        channel.stats.attempts += len(movers)
        origins = self.loc[movers].copy()
        self.loc[movers] = dest
        hops = self.track_hops[movers]
        advanced = hops + 1
        keep = (hops >= 0) & (advanced <= self._hist)
        self.track_hops[movers] = _np.where(keep, advanced, -1)
        arrival_cols = self._gw_col[dest]
        at_gateway = (arrival_cols >= 0) & live_gw[dest]
        if at_gateway.any():
            rows = movers[at_gateway]
            cols = arrival_cols[at_gateway]
            self.track_hops[rows, cols] = 0
            self.track_seen[rows, cols] = now
        return self._install_batch(movers, origins, dest, now), []

    def _move_scalar(
        self,
        movers: "_np.ndarray",
        targets: "_np.ndarray",
        now: Time,
        live_gw: "_np.ndarray",
    ) -> Tuple[int, List[int]]:
        """Movement through the full reliable-migration protocol.

        One mover at a time in agent order — exactly the per-object
        loop: a lost hop leaves the agent in place (it "stays" this
        step), an abandoned target drops routes through the dead link,
        a delivery advances tracks and installs routes immediately.
        """
        world = self._world
        migration = world._migration
        agents = self._agents
        obs = world._obs
        hooks = world.engine.hooks
        injector = world.injector
        tables = world.tables
        guard = tables.guard
        pending = self._pending
        gw_ids = self._gw_ids
        hist = self._hist
        step_installs = 0
        stayed: List[int] = []
        oh_installed = self._oh["routes_installed"]
        for index in movers.tolist():
            agent = agents[index]
            target = int(targets[index])
            outcome = migration.attempt_hop(agent, target, now)
            if outcome != DELIVERED:
                if outcome == ABANDONED:
                    world._suspect_link(agent, target, now)
                    pending.discard(index)
                else:
                    pending.add(index)
                stayed.append(index)
                continue
            pending.discard(index)
            origin = int(self.loc[index])
            self.loc[index] = target
            row = self.track_hops[index]
            live = row >= 0
            advanced = row + 1
            keep = live & (advanced <= hist)
            self.track_hops[index] = _np.where(keep, advanced, -1)
            column = int(self._gw_col[target])
            if column >= 0 and live_gw[target]:
                row[column] = 0
                self.track_seen[index, column] = now
            if obs is not None:
                hooks.fire(
                    "agent_moved", time=now, agent=agent.agent_id, to=target
                )
            table = tables.table(target)
            corrupted = injector is not None and injector.is_corrupted(
                agent.agent_id
            )
            rejected_before = table.guard_rejections if guard is not None else 0
            install = table.install_fast
            track_row = self.track_hops[index]
            seen_row = self.track_seen[index]
            for column in _np.nonzero(track_row > 0)[0].tolist():
                oh_installed[index] += 1
                step_installs += 1
                hops = int(track_row[column])
                seen_at = int(seen_row[column])
                next_hop = origin
                if corrupted:
                    hops = 1
                    seen_at = now + _forged_sequence_ahead()
                install(gw_ids[column], next_hop, hops, now, seen_at, seen_at)
            if guard is not None:
                agent.overhead.routes_rejected += (
                    table.guard_rejections - rejected_before
                )
        return step_installs, stayed

    def _install_batch(
        self,
        movers: "_np.ndarray",
        origins: "_np.ndarray",
        dest: "_np.ndarray",
        now: Time,
    ) -> int:
        """Install every delivered mover's live tracks, in agent order."""
        world = self._world
        tables = world.tables
        guard = tables.guard
        injector = world.injector
        gw_ids = self._gw_ids
        track_sub = self.track_hops[movers]
        pair_rows, pair_cols = _np.nonzero(track_sub > 0)
        if not len(pair_rows):
            return 0
        agents = self._agents
        oh_installed = self._oh["routes_installed"]
        hops_flat = track_sub[pair_rows, pair_cols].tolist()
        seen_flat = self.track_seen[movers][pair_rows, pair_cols].tolist()
        movers_list = movers.tolist()
        origins_list = origins.tolist()
        dest_list = dest.tolist()
        step_installs = len(pair_rows)
        current_row = -1
        install = None
        index = origin = 0
        corrupted = False
        table = None
        rejected_before = 0
        forged_ahead = _forged_sequence_ahead()
        for row, column, hops, seen_at in zip(
            pair_rows.tolist(), pair_cols.tolist(), hops_flat, seen_flat
        ):
            if row != current_row:
                if guard is not None and table is not None:
                    agents[index].overhead.routes_rejected += (
                        table.guard_rejections - rejected_before
                    )
                current_row = row
                index = movers_list[row]
                origin = origins_list[row]
                table = tables.table(dest_list[row])
                install = table.install_fast
                corrupted = injector is not None and injector.is_corrupted(
                    agents[index].agent_id
                )
                if guard is not None:
                    rejected_before = table.guard_rejections
            oh_installed[index] += 1
            if corrupted:
                install(gw_ids[column], origin, 1, now, now + forged_ahead,
                        now + forged_ahead)
            else:
                install(gw_ids[column], origin, hops, now, seen_at, seen_at)
        if guard is not None and table is not None:
            agents[index].overhead.routes_rejected += (
                table.guard_rejections - rejected_before
            )
        return step_installs

    def _record_visits(self, acts: "_np.ndarray", now: Time) -> None:
        """Vectorized ``VisitHistory.record`` for every acting agent.

        Eviction scans only the compact ``visit_nodes`` rows — O(capacity)
        per over-full agent, not an O(node_count) sweep of ``vt``.  The
        stalest entry is the minimum of packed ``time * n + node``, which
        is exactly ``record()``'s min-(time, node) tie-break; it is then
        swap-removed with the row's last occupied slot.
        """
        where = self.loc[acts]
        previous = self.vt[acts, where]
        self.vt[acts, where] = now
        appended = previous == NEVER
        if appended.any():
            new_rows = acts[appended]
            slots = self.visit_count[new_rows]
            self.visit_nodes[new_rows, slots] = where[appended]
            self.visit_count[new_rows] = slots + 1
        over = acts[self.visit_count[acts] > self._capacity]
        if len(over):
            nodes = self.visit_nodes[over]
            occupied = nodes >= 0
            safe = _np.where(occupied, nodes, 0)
            times = self.vt[over[:, None], safe]
            packed = _np.where(
                occupied, times * self._node_count + safe, _BIG
            )
            evict_col = packed.argmin(axis=1)
            row_idx = _np.arange(len(over), dtype=_np.int64)
            self.vt[over, nodes[row_idx, evict_col]] = NEVER
            last = self.visit_count[over] - 1
            self.visit_nodes[over, evict_col] = self.visit_nodes[over, last]
            self.visit_nodes[over, last] = -1
            self.visit_count[over] = last


def _forged_sequence_ahead() -> int:
    """The corrupted-agent forgery offset (single source in the world)."""
    from repro.routing import world as routing_world

    return routing_world._FORGED_SEQUENCE_AHEAD
