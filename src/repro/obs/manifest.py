"""Run manifests: everything needed to re-run (or trust) a result.

A manifest records what produced an artifact: the seeds, the experiment
ids and scale, a stable hash of the run-shaping options, the package
version, and the platform.  It rides in the header of every metrics JSON
and trace JSONL the CLI writes, and in ``BENCH_substrate.json``, so a
number on disk is never orphaned from the configuration that made it.

Only ``created_at`` and the ``platform`` block vary between machines;
``config_hash`` covers exclusively the fields that decide simulation
outcomes, so two manifests with equal hashes describe the same logical
run.
"""

from __future__ import annotations

import hashlib
import platform as platform_module
import sys
import time
from typing import Any, Dict, Optional, Sequence

__all__ = ["MANIFEST_SCHEMA", "build_manifest", "config_hash"]

#: bumped when the manifest layout changes incompatibly.
MANIFEST_SCHEMA = 1


def config_hash(options: Dict[str, Any]) -> str:
    """A stable 16-hex-digit hash of run-shaping options."""
    payload = repr(sorted((str(k), repr(v)) for k, v in options.items()))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def build_manifest(
    master_seed: int,
    scale: str,
    experiments: Sequence[str],
    options: Optional[Dict[str, Any]] = None,
    service: Optional[Dict[str, Any]] = None,
) -> dict:
    """Assemble the JSON-safe manifest for one CLI (or bench) invocation.

    ``options`` holds the run-shaping knobs beyond seed/scale (workers,
    fault plan, loss spec, …); they are recorded verbatim and folded
    into ``config_hash`` together with the seed, scale, and experiment
    ids.

    ``service``, when given, is the experiment-service provenance block
    (job id, spec name, spec fingerprint).  It is recorded verbatim but
    *not* hashed: the spec fingerprint already covers the result-shaping
    fields, and the job id varies per submission of the same sweep.
    """
    from repro import __version__

    options = dict(options or {})
    hashed = dict(options)
    hashed["master_seed"] = master_seed
    hashed["scale"] = scale
    hashed["experiments"] = tuple(experiments)
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "master_seed": master_seed,
        "scale": scale,
        "experiments": list(experiments),
        "options": {key: repr(value) for key, value in sorted(options.items())},
        "config_hash": config_hash(hashed),
        "package_version": __version__,
        "platform": {
            "python": sys.version.split()[0],
            "implementation": platform_module.python_implementation(),
            "system": platform_module.system(),
            "machine": platform_module.machine(),
        },
    }
    if service is not None:
        manifest["service"] = dict(service)
    return manifest
