"""Unified observability: metrics, structured events, phase profiling.

The paper's central quantitative claims are about *cost* — stigmergy
"imposes negligible overhead" versus the 4–5× heavier agents of related
work — so this reproduction measures instead of asserting.  The layer
has four parts, each usable alone:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, fixed-bucket histograms, and per-step time-series rings whose
  snapshots merge associatively across process-pool workers;
* :mod:`repro.obs.events` — a schema-versioned event bus with pluggable
  sinks (memory, JSONL file, null) carrying agent hops, meetings, route
  installs, channel losses, and fault events;
* :mod:`repro.obs.profiler` — wall-time accounting per engine phase and
  hook fire, with percentile summaries;
* :mod:`repro.obs.manifest` — run manifests (seeds, config hash,
  package version, platform) stamped onto every artifact.

:class:`ObsConfig` switches the layers on per world config;
:class:`ObsCollector` wires them to a running world; the experiment
runner funnels per-run :class:`ObsReport`\\ s into an
:class:`~repro.obs.output.ObsAccumulator` behind the CLI's
``--metrics-out`` / ``--trace-out`` / ``--profile`` flags.

With everything off (the default) **nothing here runs**: worlds build no
collector, allocate no events, and produce bit-identical results at
unchanged speed — the zero-overhead contract the integration tests pin.
"""

from repro.obs.collector import ObsCollector, ObsConfig, ObsReport
from repro.obs.events import (
    EVENT_SCHEMA,
    Event,
    EventBus,
    EventSink,
    JsonlSink,
    MemorySink,
    NullSink,
    read_jsonl,
)
from repro.obs.manifest import MANIFEST_SCHEMA, build_manifest
from repro.obs.metrics import METRICS_SCHEMA, MetricsRegistry, merge_snapshots
from repro.obs.output import ObsAccumulator
from repro.obs.profiler import (
    PhaseProfiler,
    merge_profiles,
    profile_table,
    summarize_profile,
)

__all__ = [
    "ObsConfig",
    "ObsCollector",
    "ObsReport",
    "MetricsRegistry",
    "merge_snapshots",
    "METRICS_SCHEMA",
    "Event",
    "EventBus",
    "EventSink",
    "MemorySink",
    "JsonlSink",
    "NullSink",
    "read_jsonl",
    "EVENT_SCHEMA",
    "PhaseProfiler",
    "merge_profiles",
    "summarize_profile",
    "profile_table",
    "build_manifest",
    "MANIFEST_SCHEMA",
    "ObsAccumulator",
]
