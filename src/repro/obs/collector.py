"""Per-run observability: configuration, collection, and the report.

:class:`ObsConfig` is the *declarative* switchboard — frozen, hashable,
picklable — that rides inside the (also frozen) world configs across
``multiprocessing`` workers.  When any of its flags is on, a world
builds one :class:`ObsCollector`, which

* subscribes to the world's hooks (``agent_moved``,
  ``knowledge_recorded`` / ``connectivity_recorded``,
  ``fault_injected``, ``link_suspected``) to feed counters, rings, a
  histogram, and the event stream,
* receives per-step aggregates the worlds push only when a collector
  exists (meetings held, routes installed, channel losses), and
* owns the :class:`~repro.obs.profiler.PhaseProfiler` the engine, hook
  registry, and world phases lap into.

**Zero-overhead contract**: with ``obs=None`` (the default) no collector
is built, no hook is subscribed, no event or metric object is ever
allocated, and no RNG is touched — results are bit-identical to a run
without the subsystem, which the integration tests enforce.

At run end :meth:`ObsCollector.finalize` folds in the whole-run totals —
team overhead counters, channel delivery stats, fault/agent survival —
and returns a picklable, JSON-safe :class:`ObsReport` that the
experiment runner merges across runs and workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.obs.events import EventBus, MemorySink
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import PhaseProfiler
from repro.types import Time

__all__ = ["ObsConfig", "ObsCollector", "ObsReport", "OBS_REPORT_SCHEMA"]

#: bumped when the per-run report layout changes incompatibly.
OBS_REPORT_SCHEMA = 1

#: default cap on events retained per run (excess counted as dropped).
DEFAULT_MAX_EVENTS = 100_000

#: connectivity / knowledge are fractions; ten equal buckets plus overflow.
_FRACTION_BOUNDS = tuple(round(0.1 * i, 1) for i in range(1, 11))


@dataclass(frozen=True)
class ObsConfig:
    """Which observability layers a run records.

    Defaults to everything off; the CLI's ``--metrics-out`` /
    ``--trace-out`` / ``--profile`` flags switch the layers on via
    :func:`repro.experiments.runner.set_default_obs`.
    """

    #: record counters / gauges / histograms / step rings.
    metrics: bool = False
    #: record the structured event stream.
    events: bool = False
    #: record wall-time per engine phase and hook fire.
    profile: bool = False
    #: restrict the event stream to these kinds (``None`` = all).
    event_kinds: Optional[Tuple[str, ...]] = None
    #: per-run cap on retained events.
    max_events: int = DEFAULT_MAX_EVENTS
    #: capacity of the per-step time-series rings.
    ring_capacity: int = 512

    @property
    def enabled(self) -> bool:
        """Whether any layer is on (off ⇒ worlds build no collector)."""
        return self.metrics or self.events or self.profile


@dataclass
class ObsReport:
    """The per-run observability outcome (picklable, JSON-safe fields)."""

    schema: int = OBS_REPORT_SCHEMA
    #: :meth:`MetricsRegistry.snapshot` output, or ``None``.
    metrics: Optional[dict] = None
    #: event dicts (``time``/``kind``/``payload``) in order, or ``None``.
    events: Optional[List[dict]] = None
    #: events beyond the cap (only with ``events`` on).
    events_dropped: int = 0
    #: :meth:`PhaseProfiler.as_dict` output, or ``None``.
    profile: Optional[dict] = None

    def to_dict(self) -> dict:
        """The JSON-safe form (checkpoint journal entry)."""
        return {
            "schema": self.schema,
            "metrics": self.metrics,
            "events": self.events,
            "events_dropped": self.events_dropped,
            "profile": self.profile,
        }

    @staticmethod
    def from_dict(payload: Optional[dict]) -> Optional["ObsReport"]:
        """Rebuild a report from :meth:`to_dict` output (``None`` safe)."""
        if payload is None:
            return None
        return ObsReport(
            schema=payload.get("schema", OBS_REPORT_SCHEMA),
            metrics=payload.get("metrics"),
            events=payload.get("events"),
            events_dropped=payload.get("events_dropped", 0),
            profile=payload.get("profile"),
        )


class ObsCollector:
    """Feeds one run's metrics, events, and profile from world hooks."""

    def __init__(self, config: ObsConfig, engine: Any, scenario: str) -> None:
        self.config = config
        self.scenario = scenario
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if config.metrics else None
        )
        self._sink: Optional[MemorySink] = None
        self._bus: Optional[EventBus] = None
        if config.events:
            self._sink = MemorySink(max_events=config.max_events)
            self._bus = EventBus([self._sink], kinds=config.event_kinds)
        self.profiler: Optional[PhaseProfiler] = (
            PhaseProfiler() if config.profile else None
        )
        if self.profiler is not None:
            engine.profiler = self.profiler
            engine.hooks.set_profiler(self.profiler)
        metric = "knowledge" if scenario == "mapping" else "connectivity"
        self._metric_name = metric
        if self.metrics is not None:
            self.metrics.ring(f"{metric}.series", config.ring_capacity)
            self.metrics.histogram(f"{metric}.histogram", _FRACTION_BOUNDS)
        hooks = engine.hooks
        hooks.subscribe("agent_moved", self._on_agent_moved)
        hooks.subscribe("fault_injected", self._on_fault)
        hooks.subscribe("link_suspected", self._on_link_suspected)
        hooks.subscribe("neighbor_quarantined", self._on_quarantined)
        hooks.subscribe("neighbor_rehabilitated", self._on_rehabilitated)
        if scenario == "mapping":
            hooks.subscribe("knowledge_recorded", self._on_knowledge)
        else:
            hooks.subscribe("connectivity_recorded", self._on_connectivity)

    # -- hook subscribers ----------------------------------------------

    def _on_agent_moved(self, *, time: Time, agent: int, to: Any) -> None:
        if self.metrics is not None:
            self.metrics.inc("agents.hops")
        if self._bus is not None:
            self._bus.emit(time, "agent_moved", agent=agent, to=to)

    def _on_fault(self, *, time: Time, kind: str, target: Any, applied: bool) -> None:
        if self.metrics is not None:
            self.metrics.inc("faults.injected")
            self.metrics.inc(f"faults.kind.{kind}")
        if self._bus is not None:
            self._bus.emit(
                time, "fault_injected", kind=kind, target=list(target), applied=applied
            )

    def _on_link_suspected(
        self, *, time: Time, node: Any, neighbor: Any, dropped: int
    ) -> None:
        if self.metrics is not None:
            self.metrics.inc("links.suspected")
            self.metrics.inc("routes.invalidated", dropped)
        if self._bus is not None:
            self._bus.emit(
                time, "link_suspected", node=node, neighbor=neighbor, dropped=dropped
            )

    def _on_quarantined(
        self, *, time: Time, node: Any, neighbor: Any, quality: float
    ) -> None:
        if self.metrics is not None:
            self.metrics.inc("health.quarantines")
        if self._bus is not None:
            self._bus.emit(
                time,
                "neighbor_quarantined",
                node=node,
                neighbor=neighbor,
                quality=quality,
            )

    def _on_rehabilitated(
        self, *, time: Time, node: Any, neighbor: Any, quality: float
    ) -> None:
        if self.metrics is not None:
            self.metrics.inc("health.rehabilitations")
        if self._bus is not None:
            self._bus.emit(
                time,
                "neighbor_rehabilitated",
                node=node,
                neighbor=neighbor,
                quality=quality,
            )

    def _record_metric(self, time: Time, value: float) -> None:
        if self.metrics is not None:
            name = self._metric_name
            self.metrics.ring_record(f"{name}.series", time, value)
            self.metrics.observe(f"{name}.histogram", value)

    def _on_knowledge(self, *, time: Time, average: float, minimum: float) -> None:
        self._record_metric(time, average)
        if self._bus is not None:
            self._bus.emit(time, "knowledge", average=average, minimum=minimum)

    def _on_connectivity(self, *, time: Time, fraction: float) -> None:
        self._record_metric(time, fraction)
        if self._bus is not None:
            self._bus.emit(time, "connectivity", fraction=fraction)

    # -- world-pushed aggregates (called only when a collector exists) --

    def meetings(self, time: Time, count: int) -> None:
        """Record meetings held this step (no-op for zero)."""
        if count <= 0:
            return
        if self.metrics is not None:
            self.metrics.inc("meetings.held", count)
        if self._bus is not None:
            self._bus.emit(time, "meetings", count=count)

    def routes_installed(self, time: Time, count: int) -> None:
        """Record route-table installs committed this step."""
        if count <= 0:
            return
        if self.metrics is not None:
            self.metrics.inc("routes.installed", count)
        if self._bus is not None:
            self._bus.emit(time, "routes_installed", count=count)

    def channel_losses(self, time: Time, count: int) -> None:
        """Record channel-dropped transfers observed this step."""
        if count <= 0:
            return
        if self.metrics is not None:
            self.metrics.inc("channel.step_losses", count)
        if self._bus is not None:
            self._bus.emit(time, "channel_loss", count=count)

    def traffic_step(
        self,
        time: Time,
        generated: int,
        delivered: int,
        buffered: int,
        in_flight: int,
    ) -> None:
        """Record the data plane's per-step queue-occupancy levels."""
        if self.metrics is not None:
            self.metrics.ring(
                "traffic.buffered.series", self.config.ring_capacity
            )
            self.metrics.ring_record("traffic.buffered.series", time, buffered)
        if self._bus is not None:
            self._bus.emit(
                time,
                "traffic",
                generated=generated,
                delivered=delivered,
                buffered=buffered,
                in_flight=in_flight,
            )

    def health_step(
        self, time: Time, quarantined: int, suspicion: float
    ) -> None:
        """Record the health monitor's per-step quarantine/suspicion view."""
        if self.metrics is not None:
            registry = self.metrics
            registry.ring("health.quarantined.series", self.config.ring_capacity)
            registry.ring_record("health.quarantined.series", time, quarantined)
            registry.ring("health.suspicion.series", self.config.ring_capacity)
            registry.ring_record("health.suspicion.series", time, suspicion)
        if self._bus is not None:
            self._bus.emit(
                time, "health", quarantined=quarantined, suspicion=suspicion
            )

    def traffic_totals(self, report: Any) -> None:
        """Fold a run's final :class:`~repro.traffic.plane.TrafficReport`.

        Called once before :meth:`finalize` when the world ran a data
        plane; everything lands under ``traffic.*`` counters so the
        merged experiment view carries delivery/latency/backpressure
        numbers alongside overhead and channel stats.
        """
        if self.metrics is None:
            return
        registry = self.metrics
        registry.inc("traffic.generated", report.generated)
        registry.inc("traffic.delivered", report.delivered)
        registry.inc("traffic.expired", report.expired)
        registry.inc("traffic.dropped", report.dropped)
        registry.inc("traffic.in_flight", report.in_flight)
        registry.inc("traffic.buffered", report.buffered)
        for bound, count in zip(report.latency_bounds, report.latency_counts):
            registry.inc(f"traffic.latency.le_{bound}", count)
        registry.inc("traffic.latency.overflow", report.latency_counts[-1])
        for name, value in sorted(report.counters.items()):
            registry.inc(f"traffic.{name}", value)
        for name, value in sorted(report.queues.items()):
            registry.inc(f"traffic.queue.{name}", value)

    def topology_churn(
        self, time: Time, added: int, removed: int, rebucketed: int
    ) -> None:
        """Record the incremental topology engine's work this step."""
        if added <= 0 and removed <= 0 and rebucketed <= 0:
            return
        if self.metrics is not None:
            registry = self.metrics
            if added > 0:
                registry.inc("topology.edges_added", added)
            if removed > 0:
                registry.inc("topology.edges_removed", removed)
            if rebucketed > 0:
                registry.inc("topology.rebucketed", rebucketed)
        if self._bus is not None:
            self._bus.emit(
                time,
                "topology_delta",
                added=added,
                removed=removed,
                rebucketed=rebucketed,
            )

    def connectivity_cache(
        self, time: Time, hits: int, walks: int, invalidated: int
    ) -> None:
        """Record the delta-aware connectivity cache's step outcome."""
        if hits <= 0 and walks <= 0 and invalidated <= 0:
            return
        if self.metrics is not None:
            registry = self.metrics
            if hits > 0:
                registry.inc("connectivity.cache_hits", hits)
            if walks > 0:
                registry.inc("connectivity.cache_walks", walks)
            if invalidated > 0:
                registry.inc("connectivity.cache_invalidated", invalidated)
        if self._bus is not None:
            self._bus.emit(
                time,
                "connectivity_cache",
                hits=hits,
                walks=walks,
                invalidated=invalidated,
            )

    # -- finalization ---------------------------------------------------

    def finalize(
        self,
        overhead: Any,
        channel_stats: Any,
        agents_total: int,
        agents_alive: int,
        steps: Time,
    ) -> ObsReport:
        """Fold whole-run totals into the registry; return the report.

        ``overhead`` is the team :class:`~repro.core.overhead.OverheadMeter`;
        its counters land under ``overhead.*`` so one metrics JSON
        carries agent overhead, fault, and channel numbers together.
        """
        metrics_snapshot = None
        if self.metrics is not None:
            registry = self.metrics
            for name, value in overhead.as_dict().items():
                registry.inc(f"overhead.{name}", value)
            registry.inc("channel.attempts", channel_stats.attempts)
            registry.inc("channel.losses", channel_stats.losses)
            for kind, count in sorted(channel_stats.losses_by_kind.items()):
                registry.inc(f"channel.losses.{kind}", count)
            registry.gauge_set("agents.total", agents_total)
            registry.gauge_set("agents.alive", agents_alive)
            registry.gauge_set("steps.simulated", steps)
            registry.inc("runs", 1)
            metrics_snapshot = registry.snapshot()
        events = None
        dropped = 0
        if self._sink is not None:
            events = [event.to_dict() for event in self._sink.events]
            dropped = self._sink.dropped
        profile = self.profiler.as_dict() if self.profiler is not None else None
        return ObsReport(
            metrics=metrics_snapshot,
            events=events,
            events_dropped=dropped,
            profile=profile,
        )
