"""Schema-versioned structured events with pluggable sinks.

Every noteworthy simulation occurrence — an agent hop, a meeting, a
route install, a channel loss, a fault — can be emitted as an
:class:`Event` onto an :class:`EventBus`.  The bus fans events out to
*sinks*:

* :class:`MemorySink` — bounded in-memory list (tests, adapters),
* :class:`JsonlSink` — one JSON object per line, preceded by a header
  line carrying :data:`EVENT_SCHEMA` and an optional run manifest,
* :class:`NullSink` — discards everything (the default when
  observability is off; nothing upstream even allocates an event then,
  because worlds guard emission on the collector being present).

The JSONL layout is the interchange format: :func:`read_jsonl` loads a
file back into ``(header, [Event, ...])``, and the round-trip is exact
for JSON-safe payloads.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, TextIO, Tuple, Union

from repro.errors import ConfigurationError
from repro.types import Time

__all__ = [
    "EVENT_SCHEMA",
    "Event",
    "EventSink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "EventBus",
    "read_jsonl",
]

#: bumped when the event payload layout changes incompatibly.
EVENT_SCHEMA = 1


@dataclass(frozen=True)
class Event:
    """One structured observation: when, what kind, and details."""

    time: Time
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """The JSON-safe form (one JSONL line body)."""
        return {"time": self.time, "kind": self.kind, "payload": dict(self.payload)}

    @staticmethod
    def from_dict(payload: dict) -> "Event":
        """Rebuild an event from :meth:`to_dict` output."""
        return Event(
            time=payload["time"],
            kind=payload["kind"],
            payload=dict(payload.get("payload", {})),
        )


class EventSink:
    """Sink interface: receives events, can be closed."""

    def emit(self, event: Event) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (default: nothing to do)."""


class NullSink(EventSink):
    """Discards every event."""

    def emit(self, event: Event) -> None:
        pass


class MemorySink(EventSink):
    """Keeps events in a bounded list; excess events are counted, not kept."""

    def __init__(self, max_events: Optional[int] = None) -> None:
        self._max_events = max_events
        self._events: List[Event] = []
        self.dropped = 0

    def emit(self, event: Event) -> None:
        if self._max_events is not None and len(self._events) >= self._max_events:
            self.dropped += 1
            return
        self._events.append(event)

    @property
    def events(self) -> List[Event]:
        """All captured events in emission order (a copy)."""
        return list(self._events)

    def clear(self) -> None:
        """Drop everything captured so far."""
        self._events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)


class JsonlSink(EventSink):
    """Streams events to a JSONL file, one object per line.

    The first line is a header ``{"schema": ..., "kind": "header",
    "manifest": ...}``; every further line is one event.  Writes are
    line-buffered so a killed run loses at most the line being written.
    """

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        manifest: Optional[dict] = None,
        extra: Optional[dict] = None,
    ) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[TextIO] = self.path.open("w")
        header = {"schema": EVENT_SCHEMA, "kind": "header"}
        if manifest is not None:
            header["manifest"] = manifest
        self._extra = dict(extra) if extra else {}
        self._write(header)

    def _write(self, payload: dict) -> None:
        if self._handle is None:
            raise ConfigurationError(f"JSONL sink {self.path} is closed")
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")

    def emit(self, event: Event) -> None:
        body = event.to_dict()
        if self._extra:
            body.update(self._extra)
        self._write(body)

    def write_raw(self, payload: dict) -> None:
        """Write one pre-built line (the merged-trace writer uses this)."""
        self._write(payload)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class EventBus:
    """Fans emitted events out to sinks, optionally filtered by kind."""

    def __init__(
        self,
        sinks: Sequence[EventSink],
        kinds: Optional[Iterable[str]] = None,
    ) -> None:
        self._sinks = list(sinks)
        self._kinds = set(kinds) if kinds is not None else None

    def emit(self, time: Time, kind: str, **payload: Any) -> None:
        """Build one event and deliver it to every sink."""
        if self._kinds is not None and kind not in self._kinds:
            return
        event = Event(time=time, kind=kind, payload=payload)
        for sink in self._sinks:
            sink.emit(event)

    def wants(self, kind: str) -> bool:
        """Whether events of ``kind`` pass the filter."""
        return self._kinds is None or kind in self._kinds

    def close(self) -> None:
        """Close every sink."""
        for sink in self._sinks:
            sink.close()


def read_jsonl(
    path: Union[str, pathlib.Path],
) -> Tuple[dict, List[Event]]:
    """Load a :class:`JsonlSink` file back into ``(header, events)``.

    Raises :class:`~repro.errors.ConfigurationError` on a missing or
    incompatible header; a torn trailing line (killed mid-write) is
    dropped.
    """
    lines = pathlib.Path(path).read_text().splitlines()
    if not lines:
        raise ConfigurationError(f"event file {path} is empty")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError:
        header = None
    if not isinstance(header, dict) or header.get("schema") != EVENT_SCHEMA:
        raise ConfigurationError(
            f"event file {path} has an unsupported header (expected schema "
            f"{EVENT_SCHEMA})"
        )
    events = []
    for line in lines[1:]:
        try:
            body = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn trailing line
        if isinstance(body, dict) and "kind" in body and "time" in body:
            events.append(Event.from_dict(body))
    return header, events
