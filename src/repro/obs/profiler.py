"""Wall-time phase profiling for the engine hot loop.

The paper's headline cost claim ("negligible overhead", §I) is about
*where time goes*; :class:`PhaseProfiler` answers that per engine phase.
Worlds lap a monotonic clock between their step phases (observe / meet /
decide / move / decay / record), the engine times its due-event drain,
and :class:`~repro.sim.hooks.HookRegistry` times each hook fire under a
``hook:<name>`` label — which is where fault injection and invariant
checking live, so those costs show up without bespoke wiring.

Laps are *consecutive* ``perf_counter`` reads partitioning the step, so
the per-phase totals sum to the recorded ``step`` total exactly (up to
float rounding) — tested, not asserted in prose.

Per-phase state is count/total/min/max plus a bounded sample list for
percentiles (first :data:`SAMPLE_CAP` laps; the summary reports how many
were sampled).  Everything serializes to a JSON-safe dict via
:meth:`PhaseProfiler.as_dict`, merges across runs with
:func:`merge_profiles`, and distils to nearest-rank percentiles with
:func:`summarize_profile`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Iterable, List, Optional

__all__ = [
    "PhaseProfiler",
    "merge_profiles",
    "summarize_profile",
    "profile_table",
    "SAMPLE_CAP",
]

#: per-phase cap on retained samples (percentile accuracy vs memory).
SAMPLE_CAP = 4096


class _PhaseStats:
    __slots__ = ("count", "total", "minimum", "maximum", "samples")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = 0.0
        self.samples: List[float] = []

    def add(self, duration: float) -> None:
        self.count += 1
        self.total += duration
        if duration < self.minimum:
            self.minimum = duration
        if duration > self.maximum:
            self.maximum = duration
        if len(self.samples) < SAMPLE_CAP:
            self.samples.append(duration)


class PhaseProfiler:
    """Accumulates wall-time durations per named phase."""

    def __init__(self) -> None:
        self._phases: Dict[str, _PhaseStats] = {}

    def add(self, phase: str, duration: float) -> None:
        """Record one duration (seconds) under ``phase``."""
        stats = self._phases.get(phase)
        if stats is None:
            stats = _PhaseStats()
            self._phases[phase] = stats
        stats.add(duration)

    def lap(self, phase: str, since: float) -> float:
        """Record ``now - since`` under ``phase``; return ``now``.

        The return value feeds the next lap, so consecutive laps
        partition an interval with no unaccounted gaps.
        """
        now = perf_counter()
        self.add(phase, now - since)
        return now

    def phases(self) -> List[str]:
        """Recorded phase names, sorted."""
        return sorted(self._phases)

    def total(self, phase: str) -> float:
        """Total seconds recorded under ``phase`` (zero if absent)."""
        stats = self._phases.get(phase)
        return stats.total if stats is not None else 0.0

    def count(self, phase: str) -> int:
        """Number of laps recorded under ``phase``."""
        stats = self._phases.get(phase)
        return stats.count if stats is not None else 0

    def as_dict(self) -> dict:
        """The JSON-safe, mergeable form of every phase."""
        return {
            name: {
                "count": stats.count,
                "total": stats.total,
                "min": stats.minimum,
                "max": stats.maximum,
                "samples": list(stats.samples),
            }
            for name, stats in sorted(self._phases.items())
        }


def merge_profiles(profiles: Iterable[Optional[dict]]) -> dict:
    """Merge :meth:`PhaseProfiler.as_dict` outputs (``None``s skipped).

    Counts and totals sum, min/max extremise, and sample lists
    concatenate (each already capped per run at :data:`SAMPLE_CAP`).
    """
    merged: Dict[str, dict] = {}
    for profile in profiles:
        if not profile:
            continue
        for name, stats in profile.items():
            mine = merged.get(name)
            if mine is None:
                merged[name] = {
                    "count": stats["count"],
                    "total": stats["total"],
                    "min": stats["min"],
                    "max": stats["max"],
                    "samples": list(stats["samples"]),
                }
                continue
            mine["count"] += stats["count"]
            mine["total"] += stats["total"]
            mine["min"] = min(mine["min"], stats["min"])
            mine["max"] = max(mine["max"], stats["max"])
            mine["samples"].extend(stats["samples"])
    return dict(sorted(merged.items()))


def _percentile(ordered: List[float], fraction: float) -> float:
    """Nearest-rank percentile over pre-sorted samples."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


def summarize_profile(profile: dict) -> dict:
    """Distil a (merged) profile dict into per-phase percentile rows.

    Each phase maps to count / total / mean / min / p50 / p90 / p99 /
    max / sampled, all in seconds except the two integer counts.
    """
    summary = {}
    for name, stats in profile.items():
        ordered = sorted(stats["samples"])
        count = stats["count"]
        summary[name] = {
            "count": count,
            "total": stats["total"],
            "mean": stats["total"] / count if count else 0.0,
            "min": stats["min"] if count else 0.0,
            "p50": _percentile(ordered, 0.50),
            "p90": _percentile(ordered, 0.90),
            "p99": _percentile(ordered, 0.99),
            "max": stats["max"],
            "sampled": len(ordered),
        }
    return summary


def profile_table(summary: dict) -> str:
    """Render a percentile summary as an aligned text table."""
    columns = ["phase", "count", "total_s", "mean_us", "p50_us", "p90_us", "p99_us", "max_us"]
    rows = []
    for name, stats in summary.items():
        rows.append(
            [
                name,
                str(stats["count"]),
                f"{stats['total']:.3f}",
                f"{stats['mean'] * 1e6:.1f}",
                f"{stats['p50'] * 1e6:.1f}",
                f"{stats['p90'] * 1e6:.1f}",
                f"{stats['p99'] * 1e6:.1f}",
                f"{stats['max'] * 1e6:.1f}",
            ]
        )
    widths = [len(c) for c in columns]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(c.ljust(w) for c, w in zip(columns, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
