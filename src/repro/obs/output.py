"""Merging per-run observability into the files the CLI writes.

The experiment runner hands every completed run's
:class:`~repro.obs.collector.ObsReport` to one :class:`ObsAccumulator`
in a canonical order (variants and run indices sorted per runner call),
so the merged outputs are **identical between serial and pooled
sweeps** regardless of task completion order.

Two artifacts come out:

* ``--metrics-out FILE`` — one JSON document: the run manifest, then per
  experiment the merged metrics snapshot (counters summed across every
  variant and run: agent overhead + fault + channel together) and, when
  profiling, the per-phase percentile summary;
* ``--trace-out FILE`` — one JSONL stream: a schema-versioned header
  line carrying the manifest, then every run's events tagged with
  ``experiment`` / ``scenario`` / ``variant`` / ``run`` / ``seq``.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.obs.collector import ObsReport
from repro.obs.events import EVENT_SCHEMA
from repro.obs.metrics import merge_snapshots
from repro.obs.profiler import merge_profiles, profile_table, summarize_profile

__all__ = ["ObsAccumulator", "METRICS_FILE_SCHEMA"]

#: bumped when the ``--metrics-out`` document layout changes incompatibly.
METRICS_FILE_SCHEMA = 1


@dataclass(frozen=True)
class _Entry:
    experiment: str
    scenario: str
    variant: str
    run_index: int
    report: ObsReport


class ObsAccumulator:
    """Collects per-run reports and writes the merged artifacts."""

    def __init__(self) -> None:
        self._entries: List[_Entry] = []
        self._experiment = ""

    def start_experiment(self, experiment_id: str) -> None:
        """Tag subsequently added reports with this experiment id."""
        self._experiment = experiment_id

    def add(
        self,
        scenario: str,
        variant: str,
        run_index: int,
        report: Optional[ObsReport],
    ) -> None:
        """Record one run's report (``None`` — obs off for that run — skipped)."""
        if report is None:
            return
        self._entries.append(
            _Entry(self._experiment, scenario, variant, run_index, report)
        )

    def __len__(self) -> int:
        return len(self._entries)

    def experiments(self) -> List[str]:
        """Experiment ids seen, in first-seen order."""
        seen: List[str] = []
        for entry in self._entries:
            if entry.experiment not in seen:
                seen.append(entry.experiment)
        return seen

    # -- merged views ---------------------------------------------------

    def merged_metrics(self, experiment_id: str) -> dict:
        """One metrics snapshot for every run of ``experiment_id``."""
        return merge_snapshots(
            entry.report.metrics
            for entry in self._entries
            if entry.experiment == experiment_id and entry.report.metrics is not None
        )

    def merged_profile(self, experiment_id: str) -> dict:
        """One merged phase profile for every run of ``experiment_id``."""
        return merge_profiles(
            entry.report.profile
            for entry in self._entries
            if entry.experiment == experiment_id
        )

    def profile_summary(self, experiment_id: str) -> dict:
        """Percentile rows for the merged profile of ``experiment_id``."""
        return summarize_profile(self.merged_profile(experiment_id))

    def profile_text(self, experiment_id: str) -> str:
        """The percentile summary as an aligned text table."""
        return profile_table(self.profile_summary(experiment_id))

    # -- writers --------------------------------------------------------

    def write_metrics(
        self,
        path: Union[str, pathlib.Path],
        manifest: dict,
        include_profile: bool = False,
    ) -> pathlib.Path:
        """Write the merged metrics JSON document; returns the path."""
        experiments: Dict[str, dict] = {}
        for experiment_id in self.experiments():
            block: Dict[str, object] = {"metrics": self.merged_metrics(experiment_id)}
            block["events_dropped"] = sum(
                entry.report.events_dropped
                for entry in self._entries
                if entry.experiment == experiment_id
            )
            if include_profile:
                block["profile"] = self.profile_summary(experiment_id)
            experiments[experiment_id] = block
        target = pathlib.Path(path)
        if target.parent != pathlib.Path(""):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(
                {
                    "schema": METRICS_FILE_SCHEMA,
                    "manifest": manifest,
                    "experiments": experiments,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return target

    def write_trace(
        self, path: Union[str, pathlib.Path], manifest: dict
    ) -> pathlib.Path:
        """Write every run's events as one JSONL stream; returns the path."""
        target = pathlib.Path(path)
        if target.parent != pathlib.Path(""):
            target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w") as handle:
            header = {"schema": EVENT_SCHEMA, "kind": "header", "manifest": manifest}
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for entry in self._entries:
                if entry.report.events is None:
                    continue
                for seq, event in enumerate(entry.report.events):
                    line = {
                        "experiment": entry.experiment,
                        "scenario": entry.scenario,
                        "variant": entry.variant,
                        "run": entry.run_index,
                        "seq": seq,
                        "time": event["time"],
                        "kind": event["kind"],
                        "payload": event["payload"],
                    }
                    handle.write(json.dumps(line, sort_keys=True) + "\n")
        return target
