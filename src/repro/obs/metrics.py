"""The metrics registry: counters, gauges, histograms, and step rings.

AntNet treats per-node statistics collection as a first-class part of the
routing algorithm; this module gives the reproduction the same footing.
A :class:`MetricsRegistry` is a small, dependency-free collection of four
instrument families:

* **counters** — monotonically increasing integers (hops, meetings,
  losses).  Merge = sum.
* **gauges** — point-in-time levels (agents alive, edge count).  Merge =
  max: a gauge is a level, and the merged view reports the highest level
  any contributor saw.
* **histograms** — fixed-bucket frequency counts over ``observe()``-d
  values.  Buckets are declared up front (upper bounds, plus an implicit
  overflow bucket), so merging is an element-wise sum with no rebinning.
* **rings** — per-step time-series ring buffers of ``(time, value)``
  samples, capacity-bounded at record time.  Merge = sorted multiset
  union of the samples.

Everything round-trips through :meth:`MetricsRegistry.snapshot` — a
plain, JSON-safe dict — and snapshots merge with
:func:`merge_snapshots`.  The merge is **associative and commutative**,
which is what lets per-run registries collected on process-pool workers
collapse into one experiment-level view regardless of worker count or
completion order (the runner feeds them in a canonical order anyway).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["MetricsRegistry", "merge_snapshots", "METRICS_SCHEMA"]

#: bumped when the snapshot layout changes incompatibly.
METRICS_SCHEMA = 1

#: default ring capacity when a ring is created implicitly.
DEFAULT_RING_CAPACITY = 512


class _Histogram:
    """Fixed-bucket histogram: counts per declared upper bound + overflow."""

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: Sequence[float]) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigurationError(
                f"histogram bounds must be a non-empty ascending sequence, got {bounds!r}"
            )
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1


class _Ring:
    """A bounded ring of ``(time, value)`` samples (oldest evicted first)."""

    __slots__ = ("capacity", "times", "values", "dropped")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.times: List[int] = []
        self.values: List[float] = []
        self.dropped = 0

    def record(self, time: int, value: float) -> None:
        if len(self.times) >= self.capacity:
            self.times.pop(0)
            self.values.pop(0)
            self.dropped += 1
        self.times.append(time)
        self.values.append(value)


class MetricsRegistry:
    """One run's worth of counters, gauges, histograms, and rings.

    All mutators are plain dict operations — cheap enough that metering
    never distorts what it measures.  The registry is *not* attached to
    anything by itself; :class:`~repro.obs.collector.ObsCollector` feeds
    it from world hooks.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, _Histogram] = {}
        self._rings: Dict[str, _Ring] = {}

    # -- counters ------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at zero)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        """Current value of a counter (zero if never incremented)."""
        return self._counters.get(name, 0)

    # -- gauges --------------------------------------------------------

    def gauge_set(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (overwrites)."""
        self._gauges[name] = float(value)

    def gauge(self, name: str) -> Optional[float]:
        """Current gauge value, or ``None`` if never set."""
        return self._gauges.get(name)

    # -- histograms ----------------------------------------------------

    def histogram(self, name: str, bounds: Sequence[float]) -> None:
        """Declare a fixed-bucket histogram (idempotent for equal bounds)."""
        existing = self._histograms.get(name)
        if existing is not None:
            if existing.bounds != tuple(float(b) for b in bounds):
                raise ConfigurationError(
                    f"histogram {name!r} re-declared with different bounds"
                )
            return
        self._histograms[name] = _Histogram(bounds)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into a declared histogram."""
        try:
            self._histograms[name].observe(value)
        except KeyError:
            raise ConfigurationError(
                f"histogram {name!r} must be declared before observe()"
            ) from None

    # -- rings ---------------------------------------------------------

    def ring(self, name: str, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        """Declare a per-step ring buffer (idempotent; capacity kept)."""
        if name not in self._rings:
            self._rings[name] = _Ring(capacity)

    def ring_record(self, name: str, time: int, value: float) -> None:
        """Append one ``(time, value)`` sample (implicit default ring)."""
        ring = self._rings.get(name)
        if ring is None:
            ring = _Ring(DEFAULT_RING_CAPACITY)
            self._rings[name] = ring
        ring.record(time, float(value))

    # -- snapshots -----------------------------------------------------

    def snapshot(self) -> dict:
        """The JSON-safe, mergeable form of everything recorded."""
        return {
            "schema": METRICS_SCHEMA,
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                name: {
                    "bounds": list(histogram.bounds),
                    "counts": list(histogram.counts),
                    "count": histogram.count,
                    "total": histogram.total,
                }
                for name, histogram in self._histograms.items()
            },
            "rings": {
                name: {
                    "capacity": ring.capacity,
                    "times": list(ring.times),
                    "values": list(ring.values),
                    "dropped": ring.dropped,
                }
                for name, ring in self._rings.items()
            },
        }


def _merge_two(left: dict, right: dict) -> dict:
    for payload in (left, right):
        if payload.get("schema") != METRICS_SCHEMA:
            raise ConfigurationError(
                f"cannot merge metrics snapshot with schema "
                f"{payload.get('schema')!r} (expected {METRICS_SCHEMA})"
            )
    counters = dict(left["counters"])
    for name, value in right["counters"].items():
        counters[name] = counters.get(name, 0) + value
    gauges = dict(left["gauges"])
    for name, value in right["gauges"].items():
        gauges[name] = max(gauges[name], value) if name in gauges else value
    histograms = {name: dict(h, bounds=list(h["bounds"]), counts=list(h["counts"]))
                  for name, h in left["histograms"].items()}
    for name, other in right["histograms"].items():
        mine = histograms.get(name)
        if mine is None:
            histograms[name] = dict(
                other, bounds=list(other["bounds"]), counts=list(other["counts"])
            )
            continue
        if mine["bounds"] != list(other["bounds"]):
            raise ConfigurationError(
                f"histogram {name!r} has mismatched bounds across snapshots"
            )
        mine["counts"] = [a + b for a, b in zip(mine["counts"], other["counts"])]
        mine["count"] += other["count"]
        mine["total"] += other["total"]
    rings = {name: dict(r, times=list(r["times"]), values=list(r["values"]))
             for name, r in left["rings"].items()}
    for name, other in right["rings"].items():
        mine = rings.get(name)
        if mine is None:
            rings[name] = dict(
                other, times=list(other["times"]), values=list(other["values"])
            )
            continue
        samples = sorted(
            list(zip(mine["times"], mine["values"]))
            + list(zip(other["times"], other["values"]))
        )
        mine["times"] = [t for t, __ in samples]
        mine["values"] = [v for __, v in samples]
        mine["capacity"] = max(mine["capacity"], other["capacity"])
        mine["dropped"] += other["dropped"]
    return {
        "schema": METRICS_SCHEMA,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
        "rings": rings,
    }


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Merge registry snapshots (associative and commutative).

    Counters sum, gauges take the max, histogram buckets sum
    (bounds must match), and ring samples union into one sorted series.
    An empty iterable merges to an empty snapshot.
    """
    merged: Optional[dict] = None
    for snapshot in snapshots:
        merged = snapshot if merged is None else _merge_two(merged, snapshot)
    if merged is None:
        return MetricsRegistry().snapshot()
    # Normalise: even a single snapshot comes back as an independent copy.
    return _merge_two(MetricsRegistry().snapshot(), merged)
