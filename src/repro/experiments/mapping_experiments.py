"""Mapping-scenario experiments: paper Figures 1–6 plus ablations."""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

from repro.experiments.config import DEFAULT_MASTER_SEED, Scale
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import (
    MappingVariantResult,
    ProgressCallback,
    run_mapping_variants,
)
from repro.mapping.world import MappingWorldConfig
from repro.rng import derive_seed

__all__ = [
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "abl1",
    "abl2",
    "abl3",
    "abl4",
    "abl5",
]


def _world(
    kind: str,
    population: int,
    stigmergic: bool,
    scale: Scale,
    epsilon: float = 0.0,
) -> MappingWorldConfig:
    return MappingWorldConfig(
        agent_kind=kind,
        population=population,
        stigmergic=stigmergic,
        epsilon=epsilon,
        max_steps=scale.mapping_max_steps,
    )


def _finishing_row(report: ExperimentReport, result: MappingVariantResult) -> None:
    summary = result.finishing_summary
    report.add_row(
        result.name,
        f"{summary.mean:.0f}",
        summary.format("steps", digits=0),
        f"{result.finished_runs}/{summary.count}",
    )


def _single_agent_figure(
    experiment_id: str,
    title: str,
    claim: str,
    stigmergic: bool,
    scale: Scale,
    master_seed: int,
    progress: Optional[ProgressCallback],
) -> ExperimentReport:
    variants = {
        "random": _world("random", 1, stigmergic, scale),
        "conscientious": _world("conscientious", 1, stigmergic, scale),
    }
    outcomes = run_mapping_variants(
        scale.mapping_generator_config(), variants, scale.runs, master_seed, progress
    )
    report = ExperimentReport(
        experiment_id=experiment_id,
        title=title,
        paper_claim=claim,
        columns=["agent", "mean finish", "finish time", "finished runs"],
        y_label="team average knowledge",
    )
    for name in ("random", "conscientious"):
        _finishing_row(report, outcomes[name])
        report.series[name] = outcomes[name].average_knowledge_series()
    ratio = (
        outcomes["random"].finishing_summary.mean
        / max(1.0, outcomes["conscientious"].finishing_summary.mean)
    )
    report.add_note(f"random/conscientious finishing-time ratio: {ratio:.2f}x")
    return report


def fig1(
    scale: Scale,
    master_seed: int = DEFAULT_MASTER_SEED,
    progress: Optional[ProgressCallback] = None,
) -> ExperimentReport:
    """Figure 1: single Minar agent, random vs conscientious."""
    return _single_agent_figure(
        "fig1",
        "single agent, Minar algorithms (random vs conscientious)",
        "conscientious finishes ~3000 steps vs ~8000 for random (~2.7x faster)",
        stigmergic=False,
        scale=scale,
        master_seed=master_seed,
        progress=progress,
    )


def fig2(
    scale: Scale,
    master_seed: int = DEFAULT_MASTER_SEED,
    progress: Optional[ProgressCallback] = None,
) -> ExperimentReport:
    """Figure 2: single stigmergic agent, random vs conscientious."""
    report = _single_agent_figure(
        "fig2",
        "single agent, stigmergic algorithms (random vs conscientious)",
        "stigmergy beats fig1: ~2500 (conscientious) and ~6600 (random) steps",
        stigmergic=True,
        scale=scale,
        master_seed=master_seed,
        progress=progress,
    )
    return report


def _team_figure(
    experiment_id: str,
    title: str,
    claim: str,
    stigmergic: bool,
    scale: Scale,
    master_seed: int,
    progress: Optional[ProgressCallback],
) -> ExperimentReport:
    variants = {
        "conscientious-team": _world(
            "conscientious", scale.team_population, stigmergic, scale
        ),
    }
    outcomes = run_mapping_variants(
        scale.mapping_generator_config(), variants, scale.runs, master_seed, progress
    )
    report = ExperimentReport(
        experiment_id=experiment_id,
        title=title,
        paper_claim=claim,
        columns=["agent", "mean finish", "finish time", "finished runs"],
        y_label="team average knowledge",
    )
    result = outcomes["conscientious-team"]
    _finishing_row(report, result)
    report.series["conscientious-team"] = result.average_knowledge_series()
    return report


def fig3(
    scale: Scale,
    master_seed: int = DEFAULT_MASTER_SEED,
    progress: Optional[ProgressCallback] = None,
) -> ExperimentReport:
    """Figure 3: knowledge over time for a team of Minar conscientious agents."""
    return _team_figure(
        "fig3",
        f"knowledge over time, team of Minar conscientious agents",
        "15 cooperating conscientious agents finish mapping in ~140 steps",
        stigmergic=False,
        scale=scale,
        master_seed=master_seed,
        progress=progress,
    )


def fig4(
    scale: Scale,
    master_seed: int = DEFAULT_MASTER_SEED,
    progress: Optional[ProgressCallback] = None,
) -> ExperimentReport:
    """Figure 4: knowledge over time for a team of stigmergic conscientious agents."""
    return _team_figure(
        "fig4",
        "knowledge over time, team of stigmergic conscientious agents",
        "15 stigmergic conscientious agents finish ~10% faster (~125 vs ~140 steps)",
        stigmergic=True,
        scale=scale,
        master_seed=master_seed,
        progress=progress,
    )


def _population_sweep(
    experiment_id: str,
    title: str,
    claim: str,
    stigmergic: bool,
    scale: Scale,
    master_seed: int,
    progress: Optional[ProgressCallback],
) -> ExperimentReport:
    variants: Dict[str, MappingWorldConfig] = {}
    for population in scale.populations:
        variants[f"conscientious@{population}"] = _world(
            "conscientious", population, stigmergic, scale
        )
        variants[f"super-conscientious@{population}"] = _world(
            "super-conscientious", population, stigmergic, scale
        )
    outcomes = run_mapping_variants(
        scale.mapping_generator_config(), variants, scale.runs, master_seed, progress
    )
    report = ExperimentReport(
        experiment_id=experiment_id,
        title=title,
        paper_claim=claim,
        columns=[
            "population",
            "conscientious finish",
            "super-conscientious finish",
            "winner",
        ],
    )
    for population in scale.populations:
        conscientious = outcomes[f"conscientious@{population}"].finishing_summary
        superc = outcomes[f"super-conscientious@{population}"].finishing_summary
        if superc.mean < conscientious.mean:
            winner = "super-conscientious"
        elif superc.mean > conscientious.mean:
            winner = "conscientious"
        else:
            winner = "tie"
        report.add_row(
            population,
            f"{conscientious.mean:.0f} ± {conscientious.stderr * 2:.0f}",
            f"{superc.mean:.0f} ± {superc.stderr * 2:.0f}",
            winner,
        )
    return report


def fig5(
    scale: Scale,
    master_seed: int = DEFAULT_MASTER_SEED,
    progress: Optional[ProgressCallback] = None,
) -> ExperimentReport:
    """Figure 5: Minar conscientious vs super-conscientious across populations."""
    return _population_sweep(
        "fig5",
        "conscientious vs super-conscientious across populations (Minar agents)",
        "super wins at small populations; conscientious wins at large populations",
        stigmergic=False,
        scale=scale,
        master_seed=master_seed,
        progress=progress,
    )


def fig6(
    scale: Scale,
    master_seed: int = DEFAULT_MASTER_SEED,
    progress: Optional[ProgressCallback] = None,
) -> ExperimentReport:
    """Figure 6: stigmergic conscientious vs super-conscientious across populations."""
    return _population_sweep(
        "fig6",
        "conscientious vs super-conscientious across populations (stigmergic agents)",
        "with stigmergy, super-conscientious wins (or ties) at every population size",
        stigmergic=True,
        scale=scale,
        master_seed=master_seed,
        progress=progress,
    )


def abl1(
    scale: Scale,
    master_seed: int = DEFAULT_MASTER_SEED,
    progress: Optional[ProgressCallback] = None,
) -> ExperimentReport:
    """Ablation: footprint freshness window for stigmergic teams."""
    variants: Dict[str, MappingWorldConfig] = {}
    for freshness in (1, 5, 20, None):
        label = "inf" if freshness is None else str(freshness)
        variants[f"freshness={label}"] = replace(
            _world("conscientious", scale.team_population, True, scale),
            footprint_freshness=freshness,
        )
    variants["no-stigmergy"] = _world(
        "conscientious", scale.team_population, False, scale
    )
    outcomes = run_mapping_variants(
        scale.mapping_generator_config(), variants, scale.runs, master_seed, progress
    )
    report = ExperimentReport(
        experiment_id="abl1",
        title="ablation: footprint freshness window (stigmergic conscientious team)",
        paper_claim="(design choice; paper fixes one footprint scheme)",
        columns=["variant", "mean finish", "finish time", "finished runs"],
    )
    for name in sorted(outcomes):
        _finishing_row(report, outcomes[name])
    return report


def abl2(
    scale: Scale,
    master_seed: int = DEFAULT_MASTER_SEED,
    progress: Optional[ProgressCallback] = None,
) -> ExperimentReport:
    """Ablation: Minar's symmetric environment vs the paper's directed one."""
    variants = {
        "conscientious": _world("conscientious", scale.team_population, False, scale),
        "random": _world("random", scale.team_population, False, scale),
    }
    report = ExperimentReport(
        experiment_id="abl2",
        title="ablation: symmetric (Minar) vs heterogeneous (paper) radio ranges",
        paper_claim="all Minar results and discussions hold in the new environment",
        columns=["environment", "agent", "mean finish", "finish time", "finished runs"],
    )
    for label, heterogeneity in (("minar-symmetric", 0.0), ("paper-directed", 0.3)):
        outcomes = run_mapping_variants(
            scale.mapping_generator_config(heterogeneity=heterogeneity),
            variants,
            scale.runs,
            master_seed,
            progress,
        )
        for name in ("random", "conscientious"):
            summary = outcomes[name].finishing_summary
            report.add_row(
                label,
                name,
                f"{summary.mean:.0f}",
                summary.format("steps", digits=0),
                f"{outcomes[name].finished_runs}/{summary.count}",
            )
        ordering_holds = (
            outcomes["conscientious"].finishing_summary.mean
            < outcomes["random"].finishing_summary.mean
        )
        report.add_note(
            f"{label}: conscientious beats random = {ordering_holds}"
        )
    return report


def abl3(
    scale: Scale,
    master_seed: int = DEFAULT_MASTER_SEED,
    progress: Optional[ProgressCallback] = None,
) -> ExperimentReport:
    """Ablation: Minar's epsilon-randomness vs stigmergy for crowded super agents.

    The paper notes Minar et al. "add randomness to the decision that the
    super-conscientious agents make in order to disperse their agents",
    and that "in the best case they make super-conscientious and
    conscientious agents identical in high population size runs" — while
    the paper's stigmergy aims to beat, not just match, conscientious.
    """
    population = max(scale.populations)
    variants: Dict[str, MappingWorldConfig] = {
        "conscientious (reference)": _world("conscientious", population, False, scale),
        "super eps=0.0": _world("super-conscientious", population, False, scale),
        "super eps=0.1": _world(
            "super-conscientious", population, False, scale, epsilon=0.1
        ),
        "super eps=0.3": _world(
            "super-conscientious", population, False, scale, epsilon=0.3
        ),
        "super stigmergic": _world("super-conscientious", population, True, scale),
    }
    outcomes = run_mapping_variants(
        scale.mapping_generator_config(), variants, scale.runs, master_seed, progress
    )
    report = ExperimentReport(
        experiment_id="abl3",
        title=(
            f"ablation: epsilon-randomized vs stigmergic super-conscientious "
            f"(population {population})"
        ),
        paper_claim=(
            "Minar's added randomness at best makes super equal conscientious; "
            "stigmergy should do better"
        ),
        columns=["variant", "mean finish", "finish time", "finished runs"],
    )
    for name in variants:
        _finishing_row(report, outcomes[name])
    reference = outcomes["conscientious (reference)"].finishing_summary.mean
    plain = outcomes["super eps=0.0"].finishing_summary.mean
    best_eps = min(
        outcomes[name].finishing_summary.mean
        for name in ("super eps=0.1", "super eps=0.3")
    )
    stig = outcomes["super stigmergic"].finishing_summary.mean
    report.add_note(
        f"gap to conscientious: plain {plain - reference:+.0f}, best-epsilon "
        f"{best_eps - reference:+.0f}, stigmergic {stig - reference:+.0f} steps"
    )
    return report


def abl4(
    scale: Scale,
    master_seed: int = DEFAULT_MASTER_SEED,
    progress: Optional[ProgressCallback] = None,
) -> ExperimentReport:
    """Ablation: per-decision overhead of stigmergy (the 'negligible' claim)."""
    variants = {
        "conscientious (plain)": _world(
            "conscientious", scale.team_population, False, scale
        ),
        "conscientious (stigmergic)": _world(
            "conscientious", scale.team_population, True, scale
        ),
    }
    outcomes = run_mapping_variants(
        scale.mapping_generator_config(), variants, scale.runs, master_seed, progress
    )
    report = ExperimentReport(
        experiment_id="abl4",
        title="ablation: per-decision overhead, plain vs stigmergic team",
        paper_claim=(
            "stigmergic communication 'imposes negligible overhead on the "
            "system complexity' (§I)"
        ),
        columns=[
            "variant",
            "candidates/decision",
            "board lookups/decision",
            "stamps/decision",
            "mean finish",
        ],
    )
    means = {}
    for name, outcome in outcomes.items():
        keys = ("candidates_examined", "footprint_lookups", "footprints_stamped")
        averaged = {
            key: sum(r.overhead.get(key, 0.0) for r in outcome.results)
            / len(outcome.results)
            for key in keys
        }
        means[name] = averaged
        report.add_row(
            name,
            f"{averaged['candidates_examined']:.2f}",
            f"{averaged['footprint_lookups']:.2f}",
            f"{averaged['footprints_stamped']:.2f}",
            f"{outcome.finishing_summary.mean:.0f}",
        )
    plain = means["conscientious (plain)"]["candidates_examined"]
    stig = means["conscientious (stigmergic)"]["candidates_examined"]
    extra = (
        means["conscientious (stigmergic)"]["footprint_lookups"]
        + means["conscientious (stigmergic)"]["footprints_stamped"]
    )
    report.add_note(
        f"stigmergy adds {extra:.2f} O(1)-ish board operations per decision on "
        f"top of {plain:.2f} candidate comparisons (stigmergic examines "
        f"{stig:.2f})"
    )
    return report


def abl5(
    scale: Scale,
    master_seed: int = DEFAULT_MASTER_SEED,
    progress: Optional[ProgressCallback] = None,
) -> ExperimentReport:
    """Ablation: do the headline team orderings hold across networks?

    The paper ran everything on one unpublished 300-node network, and so
    (per master seed) does this reproduction.  Here the fig3/fig4/fig6
    comparison is repeated on several independently generated networks —
    if the orderings flipped between networks, the single-network
    substitution would be unsound.
    """
    network_count = 5
    runs_per_network = max(2, scale.runs // 4)
    report = ExperimentReport(
        experiment_id="abl5",
        title="ablation: headline orderings across independently generated networks",
        paper_claim="(robustness of the single-network substitution, not a paper figure)",
        columns=[
            "network",
            "conscientious",
            "stigmergic conscientious",
            "stigmergic super",
            "stigmergy helps",
            "super wins (stig)",
        ],
    )
    population = scale.team_population
    variants = {
        "consc": _world("conscientious", population, False, scale),
        "consc-stig": _world("conscientious", population, True, scale),
        "super-stig": _world("super-conscientious", population, True, scale),
    }
    helped = 0
    super_won = 0
    for network_index in range(network_count):
        seed = derive_seed(master_seed, f"abl5-network:{network_index}")
        outcomes = run_mapping_variants(
            scale.mapping_generator_config(),
            variants,
            runs_per_network,
            seed,
            progress,
        )
        consc = outcomes["consc"].finishing_summary.mean
        consc_stig = outcomes["consc-stig"].finishing_summary.mean
        super_stig = outcomes["super-stig"].finishing_summary.mean
        stig_helps = consc_stig <= consc * 1.05
        super_wins = super_stig <= consc_stig * 1.05
        helped += stig_helps
        super_won += super_wins
        report.add_row(
            network_index,
            f"{consc:.0f}",
            f"{consc_stig:.0f}",
            f"{super_stig:.0f}",
            "yes" if stig_helps else "no",
            "yes" if super_wins else "no",
        )
    report.add_note(
        f"stigmergy helps (or ties) on {helped}/{network_count} networks; "
        f"stigmergic super wins (or ties) on {super_won}/{network_count}"
    )
    return report
