"""Routing-scenario experiments: paper Figures 7–11 plus the extension."""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.compare import welch_t_test
from repro.experiments.config import DEFAULT_MASTER_SEED, Scale
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import (
    ProgressCallback,
    RoutingVariantResult,
    run_routing_variants,
)
from repro.faults.plan import FaultPlan
from repro.routing.world import RoutingWorldConfig

__all__ = [
    "fig7", "fig8", "fig9", "fig10", "fig11", "ext1", "ext2", "abl6", "faults1",
]


def _world(
    scale: Scale,
    kind: str = "oldest-node",
    population: Optional[int] = None,
    history: Optional[int] = None,
    visiting: bool = False,
    stigmergic: bool = False,
    fault_plan: Optional[FaultPlan] = None,
) -> RoutingWorldConfig:
    return RoutingWorldConfig(
        agent_kind=kind,
        population=population if population is not None else scale.routing_population,
        history_size=history if history is not None else scale.default_history,
        visiting=visiting,
        stigmergic=stigmergic,
        total_steps=scale.routing_steps,
        converged_after=scale.routing_converged_after,
        fault_plan=fault_plan,
    )


def _connectivity_row(report: ExperimentReport, result: RoutingVariantResult) -> None:
    connectivity = result.connectivity_summary
    stability = result.stability_summary
    report.add_row(
        result.name,
        connectivity.format(digits=3),
        f"{stability.mean:.3f}",
    )


_COLUMNS = ["variant", "mean connectivity (converged)", "fluctuation (std)"]


def fig7(
    scale: Scale,
    master_seed: int = DEFAULT_MASTER_SEED,
    progress: Optional[ProgressCallback] = None,
) -> ExperimentReport:
    """Figure 7: connectivity over time for a team of oldest-node agents."""
    variants = {"oldest-node": _world(scale)}
    outcomes = run_routing_variants(
        scale.routing_generator_config(), variants, scale.runs, master_seed, progress
    )
    report = ExperimentReport(
        experiment_id="fig7",
        title=f"connectivity over time, {scale.routing_population} oldest-node agents",
        paper_claim=(
            "connectivity starts at zero, rises quickly, then fluctuates around "
            "a steady mean; converged well before half the run"
        ),
        columns=_COLUMNS,
        y_label="connectivity fraction",
    )
    result = outcomes["oldest-node"]
    _connectivity_row(report, result)
    series = result.connectivity_series()
    report.series["oldest-node"] = series
    early = series.values[0] if series.values else 0.0
    report.add_note(f"connectivity at step 1: {early:.3f} (paper: starts at zero)")
    from repro.analysis.series import convergence_time

    settled = convergence_time(series)
    report.add_note(
        f"measured convergence time: step {settled} "
        f"(paper: 'at time {scale.routing_converged_after} or well before')"
    )
    return report


def fig8(
    scale: Scale,
    master_seed: int = DEFAULT_MASTER_SEED,
    progress: Optional[ProgressCallback] = None,
) -> ExperimentReport:
    """Figure 8: connectivity vs agent population size."""
    variants: Dict[str, RoutingWorldConfig] = {}
    for population in scale.routing_populations:
        variants[f"oldest-node@{population}"] = _world(scale, population=population)
        variants[f"random@{population}"] = _world(
            scale, kind="random", population=population
        )
    outcomes = run_routing_variants(
        scale.routing_generator_config(), variants, scale.runs, master_seed, progress
    )
    report = ExperimentReport(
        experiment_id="fig8",
        title="connectivity vs population size",
        paper_claim=(
            "more agents give higher and more stable connectivity; oldest-node "
            "beats random at every setting"
        ),
        columns=["population", "agent", "mean connectivity", "fluctuation (std)"],
    )
    for population in scale.routing_populations:
        for kind in ("oldest-node", "random"):
            result = outcomes[f"{kind}@{population}"]
            report.add_row(
                population,
                kind,
                result.connectivity_summary.format(digits=3),
                f"{result.stability_summary.mean:.3f}",
            )
    return report


def fig9(
    scale: Scale,
    master_seed: int = DEFAULT_MASTER_SEED,
    progress: Optional[ProgressCallback] = None,
) -> ExperimentReport:
    """Figure 9: connectivity vs agent history size."""
    variants: Dict[str, RoutingWorldConfig] = {}
    for history in scale.history_sizes:
        variants[f"oldest-node@h{history}"] = _world(scale, history=history)
        variants[f"random@h{history}"] = _world(scale, kind="random", history=history)
    outcomes = run_routing_variants(
        scale.routing_generator_config(), variants, scale.runs, master_seed, progress
    )
    report = ExperimentReport(
        experiment_id="fig9",
        title="connectivity vs history size",
        paper_claim=(
            "larger history gives higher and more stable connectivity; "
            "oldest-node beats random at every setting"
        ),
        columns=["history", "agent", "mean connectivity", "fluctuation (std)"],
    )
    for history in scale.history_sizes:
        for kind in ("oldest-node", "random"):
            result = outcomes[f"{kind}@h{history}"]
            report.add_row(
                history,
                kind,
                result.connectivity_summary.format(digits=3),
                f"{result.stability_summary.mean:.3f}",
            )
    return report


def _visiting_figure(
    experiment_id: str,
    kind: str,
    claim: str,
    scale: Scale,
    master_seed: int,
    progress: Optional[ProgressCallback],
) -> ExperimentReport:
    variants: Dict[str, RoutingWorldConfig] = {}
    for history in scale.visiting_history_sizes:
        for visiting in (False, True):
            label = "visiting" if visiting else "no visiting"
            variants[f"{kind} h={history} ({label})"] = _world(
                scale, kind=kind, history=history, visiting=visiting
            )
    outcomes = run_routing_variants(
        scale.routing_generator_config(), variants, scale.runs, master_seed, progress
    )
    report = ExperimentReport(
        experiment_id=experiment_id,
        title=f"effect of visiting (direct communication) on {kind} agents",
        paper_claim=claim,
        columns=["history", "variant", "mean connectivity", "fluctuation (std)", "visiting effect"],
        y_label="connectivity fraction",
    )
    largest = max(scale.visiting_history_sizes)
    for history in scale.visiting_history_sizes:
        off = outcomes[f"{kind} h={history} (no visiting)"]
        on = outcomes[f"{kind} h={history} (visiting)"]
        effect = on.connectivity_summary.mean - off.connectivity_summary.mean
        for result, label in ((off, "no visiting"), (on, "visiting")):
            report.add_row(
                history,
                f"{kind} ({label})",
                result.connectivity_summary.format(digits=3),
                f"{result.stability_summary.mean:.3f}",
                f"{effect:+.3f}" if label == "visiting" else "",
            )
        if history == largest:
            report.series[f"{kind} (no visiting)"] = off.connectivity_series()
            report.series[f"{kind} (visiting)"] = on.connectivity_series()
        test = welch_t_test(
            [r.mean_connectivity for r in on.results],
            [r.mean_connectivity for r in off.results],
        )
        report.add_note(
            f"h={history}: visiting changes mean connectivity by {effect:+.3f} "
            f"(Welch p={test.p_value:.3g})"
        )
    return report


def fig10(
    scale: Scale,
    master_seed: int = DEFAULT_MASTER_SEED,
    progress: Optional[ProgressCallback] = None,
) -> ExperimentReport:
    """Figure 10: visiting helps random agents."""
    return _visiting_figure(
        "fig10",
        "random",
        "exchanging best routes in meetings improves random-agent connectivity",
        scale,
        master_seed,
        progress,
    )


def fig11(
    scale: Scale,
    master_seed: int = DEFAULT_MASTER_SEED,
    progress: Optional[ProgressCallback] = None,
) -> ExperimentReport:
    """Figure 11: visiting hurts oldest-node agents."""
    return _visiting_figure(
        "fig11",
        "oldest-node",
        (
            "visiting makes oldest-node agents identical in history, so they "
            "chase each other and connectivity drops"
        ),
        scale,
        master_seed,
        progress,
    )


def ext1(
    scale: Scale,
    master_seed: int = DEFAULT_MASTER_SEED,
    progress: Optional[ProgressCallback] = None,
) -> ExperimentReport:
    """Extension (paper future work): stigmergy in dynamic routing."""
    variants = {
        "oldest-node (plain)": _world(scale),
        "oldest-node (stigmergic)": _world(scale, stigmergic=True),
        "random (plain)": _world(scale, kind="random"),
        "random (stigmergic)": _world(scale, kind="random", stigmergic=True),
    }
    outcomes = run_routing_variants(
        scale.routing_generator_config(), variants, scale.runs, master_seed, progress
    )
    report = ExperimentReport(
        experiment_id="ext1",
        title="extension: stigmergic footprints in dynamic routing (paper future work)",
        paper_claim=(
            "'We strongly believe stigmergy can improve the agents' performance "
            "effectively' — untested in the paper"
        ),
        columns=_COLUMNS,
    )
    for name in sorted(outcomes):
        _connectivity_row(report, outcomes[name])
    plain = outcomes["oldest-node (plain)"].connectivity_summary.mean
    stig = outcomes["oldest-node (stigmergic)"].connectivity_summary.mean
    test = welch_t_test(
        [r.mean_connectivity for r in outcomes["oldest-node (stigmergic)"].results],
        [r.mean_connectivity for r in outcomes["oldest-node (plain)"].results],
    )
    report.add_note(
        f"stigmergy effect on oldest-node mean connectivity: {stig - plain:+.3f} "
        f"(Welch p={test.p_value:.3g})"
    )
    return report


def ext2(
    scale: Scale,
    master_seed: int = DEFAULT_MASTER_SEED,
    progress: Optional[ProgressCallback] = None,
) -> ExperimentReport:
    """Extension: attractive ant pheromone vs the paper's repulsive footprints.

    The paper's related work routes with ant-colony trails (AntHocNet
    [9], pheromone routing [11]) — agents are *attracted* toward strong
    trails near gateways — whereas the paper's footprints *repel* agents
    apart.  Both run here on the identical task, tables and metric.
    """
    variants = {
        "oldest-node (repulsive footprints)": _world(scale, stigmergic=True),
        "oldest-node (plain)": _world(scale),
        "ant (attractive pheromone)": _world(scale, kind="ant"),
        "random (reference)": _world(scale, kind="random"),
    }
    outcomes = run_routing_variants(
        scale.routing_generator_config(), variants, scale.runs, master_seed, progress
    )
    report = ExperimentReport(
        experiment_id="ext2",
        title="extension: attractive pheromone (ACO) vs repulsive footprints",
        paper_claim=(
            "(comparison baseline from refs [9]/[11]; expectation: attraction "
            "concentrates agents near gateways, dispersal covers the network)"
        ),
        columns=_COLUMNS,
        y_label="connectivity fraction",
    )
    for name in variants:
        result = outcomes[name]
        _connectivity_row(report, result)
        report.series[name] = result.connectivity_series()
    ants = outcomes["ant (attractive pheromone)"].connectivity_summary.mean
    footprints = outcomes[
        "oldest-node (repulsive footprints)"
    ].connectivity_summary.mean
    report.add_note(
        f"repulsive footprints vs attractive pheromone: "
        f"{footprints:.3f} vs {ants:.3f} ({footprints - ants:+.3f})"
    )
    return report


def faults1(
    scale: Scale,
    master_seed: int = DEFAULT_MASTER_SEED,
    progress: Optional[ProgressCallback] = None,
) -> ExperimentReport:
    """Resilience: agent kinds compared under identical seeded churn.

    Every variant runs the *same* fault plan — random node churn (each
    victim crashes once and recovers after a random downtime) plus a
    full outage of the first gateway — so the comparison isolates the
    agent strategy.  Displaced agents respawn on a random live node.
    The connectivity dip, the time to re-converge after the last fault,
    and agent survival come from the resilience tracker.
    """
    steps = scale.routing_steps
    churn_start = max(1, steps // 4)
    churn_end = max(churn_start + 1, steps // 2)
    plan = FaultPlan.random_churn(
        master_seed,
        node_count=scale.routing_nodes,
        start=churn_start,
        end=churn_end,
        crashes=max(1, scale.routing_nodes // 20),
        min_downtime=max(2, steps // 30),
        max_downtime=max(3, steps // 10),
        agent_policy="respawn",
        name="faults1",
    ).gateway_outage(max(1, steps // 3), max(2, steps // 3 + steps // 6))
    variants = {
        "oldest-node": _world(scale, fault_plan=plan),
        "oldest-node (stigmergic)": _world(scale, stigmergic=True, fault_plan=plan),
        "random": _world(scale, kind="random", fault_plan=plan),
    }
    outcomes = run_routing_variants(
        scale.routing_generator_config(), variants, scale.runs, master_seed, progress
    )
    report = ExperimentReport(
        experiment_id="faults1",
        title="resilience under node churn and a gateway outage",
        paper_claim=(
            "(beyond the paper: the agent population should re-route around "
            "crashed nodes and recover connectivity once faults subside)"
        ),
        columns=[
            "variant",
            "mean connectivity (converged)",
            "dip depth",
            "reconverge steps",
            "agent survival",
        ],
        y_label="connectivity fraction",
    )
    for name in variants:
        result = outcomes[name]
        resilience = [r.resilience for r in result.results if r.resilience is not None]
        dips = [r.dip_depth for r in resilience]
        reconverged = [
            r.reconverge_steps for r in resilience if r.reconverge_steps is not None
        ]
        survival = [r.agent_survival for r in resilience]
        report.add_row(
            name,
            result.connectivity_summary.format(digits=3),
            f"{sum(dips) / len(dips):.3f}" if dips else "-",
            f"{sum(reconverged) / len(reconverged):.0f}" if reconverged else "-",
            f"{sum(survival) / len(survival):.2f}" if survival else "-",
        )
        report.series[name] = result.connectivity_series()
        report.add_note(
            f"{name}: {len(reconverged)}/{len(resilience)} runs re-converged to "
            "90% of the pre-fault baseline"
        )
    report.add_note(
        f"shared plan: {len(plan)} fault events over steps "
        f"{plan.first_fault_time}..{plan.last_fault_time}, "
        f"agent policy '{plan.agent_policy}'"
    )
    return report


def abl6(
    scale: Scale,
    master_seed: int = DEFAULT_MASTER_SEED,
    progress: Optional[ProgressCallback] = None,
) -> ExperimentReport:
    """Ablation: route *quality* (stretch, coverage, balance) per agent type.

    The paper's connectivity fraction cannot tell a barely-valid route
    from an optimal one; this ablation measures, at the end of each run,
    how direct the installed routes are, how far table writes spread,
    and how evenly the gateways are used.
    """
    from repro.analysis.stats import summarize
    from repro.net.generator import NetworkGenerator
    from repro.routing.metrics import measure_route_quality
    from repro.routing.world import RoutingWorld
    from repro.rng import derive_seed

    variants = {
        "oldest-node": _world(scale),
        "oldest-node (stigmergic)": _world(scale, stigmergic=True),
        "random": _world(scale, kind="random"),
        "ant": _world(scale, kind="ant"),
    }
    generator_config = scale.routing_generator_config()
    network_seed = derive_seed(master_seed, "routing-net")
    report = ExperimentReport(
        experiment_id="abl6",
        title="ablation: route quality (stretch / coverage / gateway balance)",
        paper_claim="(beyond the paper's metric; connectivity alone hides route quality)",
        columns=[
            "variant",
            "connectivity",
            "mean stretch",
            "table coverage",
            "gateway balance",
        ],
    )
    for variant_index, (name, config) in enumerate(variants.items()):
        qualities = []
        for run_index in range(scale.runs):
            topology = NetworkGenerator(generator_config, network_seed).generate_manet()
            world_seed = derive_seed(master_seed, f"routing-world:{run_index}")
            world = RoutingWorld(topology, config, world_seed)
            world.run()
            qualities.append(measure_route_quality(world.topology, world.tables))
            if progress is not None:
                progress(
                    "routing",
                    variant_index * scale.runs + run_index + 1,
                    len(variants) * scale.runs,
                )
        connectivity = summarize([q.connectivity for q in qualities])
        stretches = [q.mean_stretch for q in qualities if q.mean_stretch is not None]
        coverages = summarize([q.table_coverage for q in qualities])
        balances = [q.gateway_balance for q in qualities if q.gateway_balance is not None]
        report.add_row(
            name,
            f"{connectivity.mean:.3f}",
            f"{sum(stretches) / len(stretches):.2f}" if stretches else "-",
            f"{coverages.mean:.3f}",
            f"{sum(balances) / len(balances):.2f}" if balances else "-",
        )
    return report
