"""Multi-run experiment execution.

Runs a dictionary of named *variants* (agent/protocol configurations)
over ``runs`` seeded repetitions, reproducing the paper's randomness
model exactly: **one network per experiment** — "we chose a single
connected network … for all experiments" (mapping, §II-B.1) and "all of
our experiments were performed with the same configuration and movement
path of nodes" (routing, §III-A) — with only the agents' initial
placement and tie-breaking redrawn per repetition.  The shared network
is derived from the master seed, so a different master seed yields a
different (but again shared) network; results are aggregated with
:mod:`repro.analysis.stats`.

Static mapping topologies are cached per ``(generator config, seed)``
because they are immutable during default runs and expensive to
generate; MANETs mutate every step, so they are regenerated per variant
and repetition from the same seed (which reproduces the identical
placement and movement paths).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.series import TimeSeries, average_series
from repro.analysis.stats import RunSummary, summarize
from repro.errors import ConfigurationError
from repro.experiments.config import DEFAULT_MASTER_SEED
from repro.mapping.world import MappingResult, MappingWorld, MappingWorldConfig
from repro.net.generator import GeneratorConfig, NetworkGenerator
from repro.net.topology import Topology
from repro.routing.world import RoutingResult, RoutingWorld, RoutingWorldConfig
from repro.rng import derive_seed

__all__ = [
    "MappingVariantResult",
    "RoutingVariantResult",
    "run_mapping_variants",
    "run_routing_variants",
    "clear_topology_cache",
]

_topology_cache: Dict = {}


def clear_topology_cache() -> None:
    """Drop all cached static topologies (tests use this)."""
    _topology_cache.clear()


def _static_topology(config: GeneratorConfig, seed: int, reusable: bool) -> Topology:
    """A static mapping network, cached when it will not be mutated."""
    if not reusable:
        return NetworkGenerator(config, seed).generate_static()
    key = (config, seed)
    topology = _topology_cache.get(key)
    if topology is None:
        topology = NetworkGenerator(config, seed).generate_static()
        _topology_cache[key] = topology
    return topology


@dataclass
class MappingVariantResult:
    """Aggregated mapping outcomes of one variant over all runs."""

    name: str
    finishing_times: List[Optional[int]] = field(default_factory=list)
    results: List[MappingResult] = field(default_factory=list)

    @property
    def finished_runs(self) -> int:
        """How many runs reached perfect knowledge within max_steps."""
        return sum(1 for t in self.finishing_times if t is not None)

    @property
    def finishing_summary(self) -> RunSummary:
        """Summary of finishing times over *finished* runs.

        Unfinished runs are counted at their step budget — a conservative
        lower bound that keeps slow variants comparable instead of
        silently dropping their worst runs.
        """
        values = [
            float(t) if t is not None else float(r.steps_simulated)
            for t, r in zip(self.finishing_times, self.results)
        ]
        return summarize(values)

    def average_knowledge_series(self) -> TimeSeries:
        """Mean team-average-knowledge curve across runs."""
        return average_series(
            [TimeSeries(r.times, r.average_knowledge) for r in self.results]
        )


@dataclass
class RoutingVariantResult:
    """Aggregated routing outcomes of one variant over all runs."""

    name: str
    results: List[RoutingResult] = field(default_factory=list)

    @property
    def connectivity_summary(self) -> RunSummary:
        """Summary of per-run converged mean connectivity."""
        return summarize([r.mean_connectivity for r in self.results])

    @property
    def stability_summary(self) -> RunSummary:
        """Summary of per-run connectivity standard deviation."""
        return summarize([r.connectivity_stability for r in self.results])

    def connectivity_series(self) -> TimeSeries:
        """Mean connectivity-over-time curve across runs."""
        return average_series(
            [TimeSeries(r.times, r.connectivity) for r in self.results]
        )


ProgressCallback = Callable[[str, int, int], None]


#: process-pool size used when a call does not pass ``workers`` —
#: set by the CLI's ``--workers`` flag via :func:`set_default_workers`.
_default_workers = 1


def set_default_workers(workers: int) -> None:
    """Set the pool size used by runs that do not pass ``workers``."""
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    global _default_workers
    _default_workers = workers


def _resolve_workers(workers: Optional[int]) -> int:
    if workers is None:
        workers = _default_workers
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    # Cap at the machine's core count, but never below 2 so the pool code
    # path stays reachable (and testable) on single-core machines.
    return min(workers, max(2, multiprocessing.cpu_count()))


def _mapping_task(
    task: Tuple[str, GeneratorConfig, MappingWorldConfig, int, int, int]
) -> Tuple[str, int, MappingResult]:
    """One (variant, run) mapping execution — top-level for pickling."""
    name, generator_config, world_config, network_seed, world_seed, run_index = task
    reusable = world_config.degrade_at is None
    topology = _static_topology(generator_config, network_seed, reusable)
    result = MappingWorld(topology, world_config, world_seed).run()
    return name, run_index, result


def _routing_task(
    task: Tuple[str, GeneratorConfig, RoutingWorldConfig, int, int, int]
) -> Tuple[str, int, RoutingResult]:
    """One (variant, run) routing execution — top-level for pickling."""
    name, generator_config, world_config, network_seed, world_seed, run_index = task
    topology = NetworkGenerator(generator_config, network_seed).generate_manet()
    result = RoutingWorld(topology, world_config, world_seed).run()
    return name, run_index, result


def _run_tasks(tasks, task_fn, workers, progress, scenario):
    """Execute tasks serially or in a pool; yield completed triples.

    Results are collected unordered from the pool and re-sorted by the
    caller, so parallel runs are bit-identical to serial ones.
    """
    completed = 0
    total = len(tasks)
    if workers <= 1:
        for task in tasks:
            yield task_fn(task)
            completed += 1
            if progress is not None:
                progress(scenario, completed, total)
        return
    with multiprocessing.Pool(workers) as pool:
        for outcome in pool.imap_unordered(task_fn, tasks):
            yield outcome
            completed += 1
            if progress is not None:
                progress(scenario, completed, total)


def run_mapping_variants(
    generator_config: GeneratorConfig,
    variants: Dict[str, MappingWorldConfig],
    runs: int,
    master_seed: int = DEFAULT_MASTER_SEED,
    progress: Optional[ProgressCallback] = None,
    workers: Optional[int] = None,
) -> Dict[str, MappingVariantResult]:
    """Run every mapping variant ``runs`` times on the shared network.

    ``workers > 1`` fans the (variant, run) grid over a process pool;
    results are identical to a serial run (everything is seed-driven).
    """
    network_seed = derive_seed(master_seed, "mapping-net")
    tasks = [
        (
            name,
            generator_config,
            world_config,
            network_seed,
            derive_seed(master_seed, f"mapping-world:{run_index}"),
            run_index,
        )
        for run_index in range(runs)
        for name, world_config in variants.items()
    ]
    collected: Dict[str, List[Tuple[int, MappingResult]]] = {
        name: [] for name in variants
    }
    pool_size = _resolve_workers(workers)
    for name, run_index, result in _run_tasks(
        tasks, _mapping_task, pool_size, progress, "mapping"
    ):
        collected[name].append((run_index, result))
    outcomes = {}
    for name, pairs in collected.items():
        pairs.sort(key=lambda pair: pair[0])
        outcome = MappingVariantResult(name)
        for __, result in pairs:
            outcome.finishing_times.append(result.finishing_time)
            outcome.results.append(result)
        outcomes[name] = outcome
    return outcomes


def run_routing_variants(
    generator_config: GeneratorConfig,
    variants: Dict[str, RoutingWorldConfig],
    runs: int,
    master_seed: int = DEFAULT_MASTER_SEED,
    progress: Optional[ProgressCallback] = None,
    workers: Optional[int] = None,
) -> Dict[str, RoutingVariantResult]:
    """Run every routing variant ``runs`` times on the shared MANET.

    MANETs mutate as they run; rebuilding from the same seed reproduces
    the identical placement and movement paths in every variant, run and
    worker process.
    """
    network_seed = derive_seed(master_seed, "routing-net")
    tasks = [
        (
            name,
            generator_config,
            world_config,
            network_seed,
            derive_seed(master_seed, f"routing-world:{run_index}"),
            run_index,
        )
        for run_index in range(runs)
        for name, world_config in variants.items()
    ]
    collected: Dict[str, List[Tuple[int, RoutingResult]]] = {
        name: [] for name in variants
    }
    pool_size = _resolve_workers(workers)
    for name, run_index, result in _run_tasks(
        tasks, _routing_task, pool_size, progress, "routing"
    ):
        collected[name].append((run_index, result))
    outcomes = {}
    for name, pairs in collected.items():
        pairs.sort(key=lambda pair: pair[0])
        outcome = RoutingVariantResult(name)
        outcome.results.extend(result for __, result in pairs)
        outcomes[name] = outcome
    return outcomes
