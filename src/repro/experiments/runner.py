"""Multi-run experiment execution.

Runs a dictionary of named *variants* (agent/protocol configurations)
over ``runs`` seeded repetitions, reproducing the paper's randomness
model exactly: **one network per experiment** — "we chose a single
connected network … for all experiments" (mapping, §II-B.1) and "all of
our experiments were performed with the same configuration and movement
path of nodes" (routing, §III-A) — with only the agents' initial
placement and tie-breaking redrawn per repetition.  The shared network
is derived from the master seed, so a different master seed yields a
different (but again shared) network; results are aggregated with
:mod:`repro.analysis.stats`.

Static mapping topologies are cached per ``(generator config, seed)``
because they are immutable during default runs and expensive to
generate; MANETs mutate every step, so they are regenerated per variant
and repetition from the same seed (which reproduces the identical
placement and movement paths).  Faulted mapping runs bypass the cache —
a crash mutates the topology, which must never leak between runs.

The runner is hardened for paper-scale sweeps:

* a per-task **timeout** with bounded **retry** (``task_timeout`` /
  ``task_retries``).  In pool mode the timeout doubles as crash
  detection: ``multiprocessing.Pool`` respawns a worker that dies hard
  (segfault, ``os._exit``) but silently never completes the job it was
  carrying, so an overdue task is abandoned and resubmitted;
* permanent failures are collected, not fatal mid-sweep — every other
  task still completes and is reported before :class:`ExperimentError`
  is raised;
* optional **checkpointing** (``checkpoint_dir``): completed
  ``(variant, run)`` results are journalled through
  :class:`~repro.experiments.persistence.SweepCheckpoint`, so a killed
  sweep re-run with the same command resumes instead of restarting.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import hashlib
import multiprocessing
import pathlib
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.analysis.series import TimeSeries, average_series
from repro.analysis.stats import RunSummary, summarize
from repro.errors import ConfigurationError, ExperimentError
from repro.experiments.config import DEFAULT_MASTER_SEED
from repro.experiments.persistence import (
    SweepCheckpoint,
    mapping_result_from_dict,
    mapping_result_to_dict,
    routing_result_from_dict,
    routing_result_to_dict,
)
from repro.faults.plan import AdversarySpec, FaultPlan
from repro.mapping.world import MappingResult, MappingWorld, MappingWorldConfig
from repro.net.channel import ChannelConfig
from repro.net.generator import GeneratorConfig, NetworkGenerator
from repro.net.health import HealthConfig
from repro.net.topology import Topology
from repro.obs.collector import ObsConfig
from repro.obs.output import ObsAccumulator
from repro.routing.table import TableGuard
from repro.routing.world import RoutingResult, RoutingWorld, RoutingWorldConfig
from repro.rng import derive_seed
from repro.traffic.plane import TrafficConfig

__all__ = [
    "MappingVariantResult",
    "RoutingVariantResult",
    "RunDefaults",
    "current_defaults",
    "defaults_scope",
    "run_mapping_variants",
    "run_routing_variants",
    "clear_topology_cache",
    "set_default_workers",
    "set_default_fault_plan",
    "set_default_channel",
    "set_default_route_ttl",
    "set_default_check_invariants",
    "set_default_checkpoint_dir",
    "set_default_obs",
    "set_default_traffic",
    "set_default_health",
    "set_default_table_guard",
    "set_default_adversary",
    "set_default_batch_agents",
    "set_default_shards",
    "set_task_limits",
]

#: most static topologies kept alive at once; a sweep touches one or two,
#: so a small LRU bounds memory without ever evicting the working set.
TOPOLOGY_CACHE_LIMIT = 8

_topology_cache: "OrderedDict[Tuple[GeneratorConfig, int], Topology]" = OrderedDict()


def clear_topology_cache() -> None:
    """Drop all cached static topologies (tests use this)."""
    _topology_cache.clear()


def _static_topology(config: GeneratorConfig, seed: int, reusable: bool) -> Topology:
    """A static mapping network, cached (LRU) when it will not be mutated."""
    if not reusable:
        return NetworkGenerator(config, seed).generate_static()
    key = (config, seed)
    topology = _topology_cache.get(key)
    if topology is None:
        topology = NetworkGenerator(config, seed).generate_static()
        _topology_cache[key] = topology
        while len(_topology_cache) > TOPOLOGY_CACHE_LIMIT:
            _topology_cache.popitem(last=False)
    else:
        _topology_cache.move_to_end(key)
    return topology


@dataclass
class MappingVariantResult:
    """Aggregated mapping outcomes of one variant over all runs."""

    name: str
    finishing_times: List[Optional[int]] = field(default_factory=list)
    results: List[MappingResult] = field(default_factory=list)

    @property
    def finished_runs(self) -> int:
        """How many runs reached perfect knowledge within max_steps."""
        return sum(1 for t in self.finishing_times if t is not None)

    @property
    def finishing_summary(self) -> RunSummary:
        """Summary of finishing times over *finished* runs.

        Unfinished runs are counted at their step budget — a conservative
        lower bound that keeps slow variants comparable instead of
        silently dropping their worst runs.
        """
        values = [
            float(t) if t is not None else float(r.steps_simulated)
            for t, r in zip(self.finishing_times, self.results)
        ]
        return summarize(values)

    def average_knowledge_series(self) -> TimeSeries:
        """Mean team-average-knowledge curve across runs."""
        return average_series(
            [TimeSeries(r.times, r.average_knowledge) for r in self.results]
        )


@dataclass
class RoutingVariantResult:
    """Aggregated routing outcomes of one variant over all runs."""

    name: str
    results: List[RoutingResult] = field(default_factory=list)

    @property
    def connectivity_summary(self) -> RunSummary:
        """Summary of per-run converged mean connectivity."""
        return summarize([r.mean_connectivity for r in self.results])

    @property
    def stability_summary(self) -> RunSummary:
        """Summary of per-run connectivity standard deviation."""
        return summarize([r.connectivity_stability for r in self.results])

    def connectivity_series(self) -> TimeSeries:
        """Mean connectivity-over-time curve across runs."""
        return average_series(
            [TimeSeries(r.times, r.connectivity) for r in self.results]
        )


ProgressCallback = Callable[[str, int, int], None]

#: how often the pool loop checks for finished or overdue tasks.
_POLL_INTERVAL = 0.02


@dataclass
class RunDefaults:
    """Every run-shaping default a sweep call can inherit.

    The module keeps one global instance that the ``set_default_*``
    functions (the CLI flag plumbing) mutate, exactly as before.  The
    experiment *service* instead builds a fresh instance per job and
    activates it with :func:`defaults_scope`, so concurrent jobs each
    see their own hermetic overlay set — scoped defaults replace (never
    merge with) the global ones.
    """

    #: process-pool size used when a call does not pass ``workers``.
    workers: int = 1
    #: fault plan applied to every variant that has none of its own.
    fault_plan: Optional[FaultPlan] = None
    #: channel config applied to every variant that has none of its own.
    channel: Optional[ChannelConfig] = None
    #: route TTL forced onto every routing variant when set.
    route_ttl: Optional[int] = None
    #: invariant-checking override for variants that leave it unset.
    check_invariants: Optional[bool] = None
    #: where sweep checkpoints live when a call passes none.
    checkpoint_dir: Optional[pathlib.Path] = None
    #: per-task deadline in seconds (``None`` = unlimited) and how many
    #: retries a failed or overdue task gets before counting permanent.
    task_timeout: Optional[float] = None
    task_retries: int = 1
    #: observability config applied to variants that carry none, and the
    #: accumulator completed runs report into.
    obs: Optional[ObsConfig] = None
    obs_accumulator: Optional[ObsAccumulator] = None
    #: traffic config applied to every variant that has none of its own.
    traffic: Optional[TrafficConfig] = None
    #: health-monitor config applied to variants that carry none.
    health: Optional[HealthConfig] = None
    #: table-write guard applied to routing variants that carry none.
    table_guard: Optional[TableGuard] = None
    #: adversary spec materialized into a seeded fault plan for variants
    #: that carry no plan of their own.
    adversary: Optional[AdversarySpec] = None
    #: batch-agent engine override for routing variants that leave it on
    #: auto (``None``).  Mapping worlds carry no such knob and are skipped.
    batch_agents: Optional[bool] = None
    #: sharded-arena tiling for routing variants that carry none of their
    #: own: shard count and optional explicit tile edge length (see
    #: :mod:`repro.shard`).  Mapping worlds carry no such knob.
    shards: Optional[int] = None
    tile_size: Optional[float] = None


#: the process-wide defaults the CLI flag setters mutate.
_GLOBAL_DEFAULTS = RunDefaults()

#: a scoped replacement for the globals (see :func:`defaults_scope`).
_SCOPED_DEFAULTS: "contextvars.ContextVar[Optional[RunDefaults]]" = (
    contextvars.ContextVar("repro_run_defaults", default=None)
)


def current_defaults() -> RunDefaults:
    """The defaults active in this context (scoped if any, else global)."""
    scoped = _SCOPED_DEFAULTS.get()
    return scoped if scoped is not None else _GLOBAL_DEFAULTS


@contextlib.contextmanager
def defaults_scope(defaults: RunDefaults) -> Iterator[RunDefaults]:
    """Activate ``defaults`` for the enclosed block (and this thread only).

    Backed by a :class:`contextvars.ContextVar`, so concurrent service
    workers each scope their own job's overlays without touching the
    globals the CLI flags set.
    """
    token = _SCOPED_DEFAULTS.set(defaults)
    try:
        yield defaults
    finally:
        _SCOPED_DEFAULTS.reset(token)


def set_default_workers(workers: int) -> None:
    """Set the pool size used by runs that do not pass ``workers``."""
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    _GLOBAL_DEFAULTS.workers = workers


def set_default_fault_plan(plan: Optional[FaultPlan]) -> None:
    """Set the fault plan injected into variants that carry none.

    The CLI's ``repro run <fig> --faults PLAN`` routes through here so
    every registry experiment can be stressed without a bespoke flag.
    """
    _GLOBAL_DEFAULTS.fault_plan = plan


def set_default_channel(channel: Optional[ChannelConfig]) -> None:
    """Set the channel config injected into variants that carry none.

    The CLI's ``--loss``/``--hop-retries`` flags route through here so
    every registry experiment can be run over a lossy channel.
    """
    _GLOBAL_DEFAULTS.channel = channel


def set_default_route_ttl(ttl: Optional[int]) -> None:
    """Force a route TTL onto every routing variant (``None`` = leave be)."""
    if ttl is not None and ttl < 1:
        raise ConfigurationError(f"route ttl must be >= 1, got {ttl}")
    _GLOBAL_DEFAULTS.route_ttl = ttl


def set_default_check_invariants(check: Optional[bool]) -> None:
    """Set the invariant-checking default for variants that leave it unset."""
    _GLOBAL_DEFAULTS.check_invariants = check


def set_default_checkpoint_dir(directory: Union[str, pathlib.Path, None]) -> None:
    """Set the checkpoint directory used when a call passes none."""
    _GLOBAL_DEFAULTS.checkpoint_dir = (
        None if directory is None else pathlib.Path(directory)
    )


def set_default_obs(
    config: Optional[ObsConfig], accumulator: Optional[ObsAccumulator] = None
) -> None:
    """Set the observability config injected into variants that carry none.

    ``accumulator`` receives every completed run's
    :class:`~repro.obs.collector.ObsReport` in canonical (variant, run)
    order — identical between serial and pooled sweeps — so the CLI can
    write one merged metrics/trace artifact per invocation.  Passing
    ``(None, None)`` switches the subsystem back off.
    """
    _GLOBAL_DEFAULTS.obs = config
    _GLOBAL_DEFAULTS.obs_accumulator = accumulator


def set_default_traffic(traffic: Optional[TrafficConfig]) -> None:
    """Set the traffic config injected into variants that carry none.

    The CLI's ``--traffic`` flag routes through here so every registry
    experiment can move payloads over its routing state.
    """
    _GLOBAL_DEFAULTS.traffic = traffic


def set_default_health(config: Optional[HealthConfig]) -> None:
    """Set the health-monitor config injected into variants that carry none.

    The CLI's ``--quarantine`` flag routes through here so any registry
    experiment can run with suspicion/quarantine defenses switched on.
    """
    _GLOBAL_DEFAULTS.health = config


def set_default_table_guard(guard: Optional[TableGuard]) -> None:
    """Set the table-write guard injected into routing variants that
    carry none (mapping worlds have no routing tables to guard)."""
    _GLOBAL_DEFAULTS.table_guard = guard


def set_default_adversary(spec: Optional[AdversarySpec]) -> None:
    """Set the adversary spec materialized for variants without a plan.

    The CLI's ``--adversary`` flag routes through here.  The spec is
    turned into a concrete seeded :class:`~repro.faults.plan.FaultPlan`
    per sweep (it needs the generator's node count and the variant's
    population), with gateways excluded from victim selection.
    """
    _GLOBAL_DEFAULTS.adversary = spec


def set_default_batch_agents(batch: Optional[bool]) -> None:
    """Set the batch-agent engine default for variants that leave it on auto.

    ``True`` forces the vectorized SoA engine, ``False`` forces the
    per-object engine (the equivalence oracle), and ``None`` restores
    auto-detection.  A variant's own explicit choice always wins.
    """
    _GLOBAL_DEFAULTS.batch_agents = batch


def set_default_shards(
    shards: Optional[int], tile_size: Optional[float] = None
) -> None:
    """Set the sharded-arena default for routing variants that carry none.

    The CLI's ``--shards``/``--tile-size`` flags route through here:
    every routing variant without its own tiling runs as a
    :class:`~repro.shard.world.ShardedRoutingWorld` (bit-identical to
    the serial world at any shard count).  ``None`` restores the serial
    path.
    """
    if shards is not None and shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    if tile_size is not None and tile_size <= 0:
        raise ConfigurationError(f"tile_size must be > 0, got {tile_size}")
    _GLOBAL_DEFAULTS.shards = shards
    _GLOBAL_DEFAULTS.tile_size = tile_size


def set_task_limits(
    timeout: Optional[float] = None, retries: Optional[int] = None
) -> None:
    """Set the default per-task timeout (seconds) and retry budget."""
    if timeout is not None and timeout <= 0:
        raise ConfigurationError(f"task timeout must be > 0, got {timeout}")
    if retries is not None and retries < 0:
        raise ConfigurationError(f"task retries must be >= 0, got {retries}")
    _GLOBAL_DEFAULTS.task_timeout = timeout
    if retries is not None:
        _GLOBAL_DEFAULTS.task_retries = retries


def _resolve_workers(workers: Optional[int]) -> int:
    if workers is None:
        workers = current_defaults().workers
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    # Cap at the machine's core count, but never below 2 so the pool code
    # path stays reachable (and testable) on single-core machines.
    return min(workers, max(2, multiprocessing.cpu_count()))


def _resolve_limits(
    timeout: Optional[float], retries: Optional[int]
) -> Tuple[Optional[float], int]:
    defaults = current_defaults()
    if timeout is None:
        timeout = defaults.task_timeout
    if retries is None:
        retries = defaults.task_retries
    if timeout is not None and timeout <= 0:
        raise ConfigurationError(f"task timeout must be > 0, got {timeout}")
    if retries < 0:
        raise ConfigurationError(f"task retries must be >= 0, got {retries}")
    return timeout, retries


def _with_run_defaults(
    variants: Dict[str, Any],
    generator_config: Optional[GeneratorConfig] = None,
    master_seed: int = 0,
) -> Dict[str, Any]:
    """Overlay the CLI-set module defaults onto every variant config.

    Fault plan, channel, invariant checking, health monitoring, and the
    table guard fill only unset fields (a variant's own choice wins);
    the route TTL, when set, replaces the variant's value — overriding
    it is the flag's whole purpose.  An adversary spec is materialized
    into a seeded fault plan per variant (gateways excluded as victims)
    when neither the variant nor ``--faults`` supplied a plan.
    """
    defaults = current_defaults()
    adjusted = {}
    for name, config in variants.items():
        changes: Dict[str, Any] = {}
        if defaults.fault_plan is not None and config.fault_plan is None:
            changes["fault_plan"] = defaults.fault_plan
        elif (
            defaults.adversary is not None
            and config.fault_plan is None
            and generator_config is not None
        ):
            spec = defaults.adversary
            changes["fault_plan"] = FaultPlan.random_adversary(
                master_seed,
                node_count=generator_config.node_count,
                gray_fraction=spec.gray_fraction,
                gray_rate=spec.gray_rate,
                corrupt_agents=spec.corrupt_agents,
                population=getattr(config, "population", 0),
                flap_nodes=spec.flap_nodes,
                start=spec.start,
                exclude=tuple(range(generator_config.gateway_count)),
            )
        if defaults.channel is not None and config.channel is None:
            changes["channel"] = defaults.channel
        if (
            defaults.check_invariants is not None
            and config.check_invariants is None
        ):
            changes["check_invariants"] = defaults.check_invariants
        if defaults.route_ttl is not None and hasattr(config, "route_ttl"):
            changes["route_ttl"] = defaults.route_ttl
        if defaults.obs is not None and config.obs is None:
            changes["obs"] = defaults.obs
        if (
            defaults.traffic is not None
            and getattr(config, "traffic", None) is None
        ):
            changes["traffic"] = defaults.traffic
        if defaults.health is not None and config.health is None:
            changes["health"] = defaults.health
        if (
            defaults.table_guard is not None
            and hasattr(config, "table_guard")
            and config.table_guard is None
        ):
            changes["table_guard"] = defaults.table_guard
        if (
            defaults.batch_agents is not None
            and hasattr(config, "batch_agents")
            and config.batch_agents is None
        ):
            changes["batch_agents"] = defaults.batch_agents
        if (
            defaults.shards is not None
            and hasattr(config, "shards")
            and config.shards is None
        ):
            changes["shards"] = defaults.shards
            if defaults.tile_size is not None and config.tile_size is None:
                changes["tile_size"] = defaults.tile_size
        adjusted[name] = dataclasses.replace(config, **changes) if changes else config
    return adjusted


def _sweep_fingerprint(
    scenario: str,
    master_seed: int,
    generator_config: GeneratorConfig,
    variants: Dict[str, Any],
) -> str:
    """A stable hash of everything that decides a task's outcome.

    ``runs`` is deliberately excluded: run seeds depend only on the run
    index, so the checkpoint of an interrupted ``runs=2`` sweep validly
    seeds a later ``runs=3`` one.
    """
    payload = repr(
        (
            scenario,
            master_seed,
            generator_config,
            sorted((name, repr(config)) for name, config in variants.items()),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _open_checkpoint(
    checkpoint_dir: Union[str, pathlib.Path, None],
    scenario: str,
    master_seed: int,
    generator_config: GeneratorConfig,
    variants: Dict[str, Any],
) -> Optional[SweepCheckpoint]:
    directory = (
        checkpoint_dir
        if checkpoint_dir is not None
        else current_defaults().checkpoint_dir
    )
    if directory is None:
        return None
    fingerprint = _sweep_fingerprint(scenario, master_seed, generator_config, variants)
    path = pathlib.Path(directory) / f"{scenario}-{fingerprint}.jsonl"
    return SweepCheckpoint(path, scenario, fingerprint)


def _mapping_task(
    task: Tuple[str, GeneratorConfig, MappingWorldConfig, int, int, int]
) -> Tuple[str, int, MappingResult]:
    """One (variant, run) mapping execution — top-level for pickling."""
    name, generator_config, world_config, network_seed, world_seed, run_index = task
    # Degradation *and* fault plans mutate the topology mid-run; such
    # runs must build their own copy, never a shared cached one.
    reusable = world_config.degrade_at is None and world_config.fault_plan is None
    topology = _static_topology(generator_config, network_seed, reusable)
    result = MappingWorld(topology, world_config, world_seed).run()
    return name, run_index, result


def _routing_task(
    task: Tuple[str, GeneratorConfig, RoutingWorldConfig, int, int, int]
) -> Tuple[str, int, RoutingResult]:
    """One (variant, run) routing execution — top-level for pickling."""
    name, generator_config, world_config, network_seed, world_seed, run_index = task
    if world_config.shards is not None or world_config.tile_size is not None:
        # Tiled variants step through the sharded world (bit-identical
        # to the serial path; the generator call moves inside so each
        # tile can skip the O(n²) incremental adjacency workspaces).
        from repro.shard.world import run_sharded_routing

        result = run_sharded_routing(
            generator_config, world_config, network_seed, world_seed
        )
        return name, run_index, result
    topology = NetworkGenerator(generator_config, network_seed).generate_manet()
    result = RoutingWorld(topology, world_config, world_seed).run()
    return name, run_index, result


def _describe_task(task: Tuple) -> str:
    return f"{task[0]!r} run {task[5]}"


def _serial_results(
    tasks: List[Tuple],
    task_fn: Callable,
    retries: int,
    failures: List[Tuple[Tuple, str]],
) -> Iterator[Tuple[str, int, Any]]:
    """Run tasks in-process; exceptions retry, then collect as failures."""
    for task in tasks:
        attempt = 0
        while True:
            attempt += 1
            try:
                yield task_fn(task)
                break
            except Exception as error:  # noqa: BLE001 - isolate one bad task
                if attempt <= retries:
                    continue
                failures.append((task, f"{type(error).__name__}: {error}"))
                break


@dataclass
class _Pending:
    """One in-flight pool task plus its deadline and attempt count."""

    task: Tuple
    handle: Any  # multiprocessing.pool.AsyncResult
    attempt: int
    deadline: Optional[float]


def _pool_results(
    tasks: List[Tuple],
    task_fn: Callable,
    workers: int,
    timeout: Optional[float],
    retries: int,
    failures: List[Tuple[Tuple, str]],
) -> Iterator[Tuple[str, int, Any]]:
    """Run tasks on a pool with per-task deadlines and bounded retries.

    ``apply_async`` + polling instead of ``imap_unordered`` because the
    latter cannot time out a single task.  An overdue handle is
    abandoned: either the task is genuinely slow (its stale result will
    be ignored) or its worker died hard — ``Pool`` respawns the process
    but never finishes the job, so the deadline is also the crash
    detector.  One poisoned task can therefore no longer sink the sweep.
    """

    def submit(pool: Any, task: Tuple, attempt: int) -> _Pending:
        handle = pool.apply_async(task_fn, (task,))
        deadline = None if timeout is None else time.monotonic() + timeout
        return _Pending(task, handle, attempt, deadline)

    with multiprocessing.Pool(workers) as pool:
        pending = [submit(pool, task, 1) for task in tasks]
        while pending:
            progressed = False
            still: List[_Pending] = []
            for item in pending:
                if item.handle.ready():
                    progressed = True
                    try:
                        yield item.handle.get()
                    except Exception as error:  # noqa: BLE001 - isolate task
                        if item.attempt <= retries:
                            still.append(submit(pool, item.task, item.attempt + 1))
                        else:
                            failures.append(
                                (item.task, f"{type(error).__name__}: {error}")
                            )
                elif item.deadline is not None and time.monotonic() >= item.deadline:
                    progressed = True
                    if item.attempt <= retries:
                        still.append(submit(pool, item.task, item.attempt + 1))
                    else:
                        failures.append(
                            (
                                item.task,
                                f"no result within {timeout:g}s after "
                                f"{item.attempt} attempt(s) (slow, hung, "
                                "or its worker crashed)",
                            )
                        )
                else:
                    still.append(item)
            pending = still
            if pending and not progressed:
                time.sleep(_POLL_INTERVAL)


def _run_tasks(
    tasks: List[Tuple],
    task_fn: Callable,
    workers: int,
    progress: Optional[ProgressCallback],
    scenario: str,
    checkpoint: Optional[SweepCheckpoint] = None,
    to_dict: Optional[Callable[[Any], dict]] = None,
    from_dict: Optional[Callable[[dict], Any]] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
) -> Iterator[Tuple[str, int, Any]]:
    """Execute tasks serially or in a pool; yield completed triples.

    Results are collected unordered and re-sorted by the caller, so
    parallel runs are bit-identical to serial ones.  Checkpointed tasks
    are served from the journal without running; fresh completions are
    journalled before being yielded.  Permanent failures raise
    :class:`ExperimentError` only after every other task finished, so
    completed work survives a partially poisoned sweep.
    """
    completed = 0
    total = len(tasks)

    def emit(name: str, run_index: int, result: Any) -> Tuple[str, int, Any]:
        nonlocal completed
        completed += 1
        if progress is not None:
            progress(scenario, completed, total)
        return name, run_index, result

    fresh: List[Tuple] = []
    for task in tasks:
        name, run_index = task[0], task[5]
        if checkpoint is not None and (name, run_index) in checkpoint:
            payload = checkpoint.result_payload(name, run_index)
            yield emit(name, run_index, from_dict(payload))
        else:
            fresh.append(task)

    failures: List[Tuple[Tuple, str]] = []
    if workers <= 1:
        source = _serial_results(fresh, task_fn, retries, failures)
    else:
        source = _pool_results(fresh, task_fn, workers, timeout, retries, failures)
    for name, run_index, result in source:
        if checkpoint is not None:
            checkpoint.record(name, run_index, to_dict(result))
        yield emit(name, run_index, result)

    if failures:
        kept = "completed runs were kept"
        if checkpoint is not None:
            kept += " and checkpointed"
        details = "; ".join(f"{_describe_task(task)}: {why}" for task, why in failures)
        raise ExperimentError(
            f"{len(failures)} of {total} {scenario} task(s) failed permanently "
            f"({kept}): {details}"
        )


def run_mapping_variants(
    generator_config: GeneratorConfig,
    variants: Dict[str, MappingWorldConfig],
    runs: int,
    master_seed: int = DEFAULT_MASTER_SEED,
    progress: Optional[ProgressCallback] = None,
    workers: Optional[int] = None,
    checkpoint_dir: Union[str, pathlib.Path, None] = None,
    task_timeout: Optional[float] = None,
    task_retries: Optional[int] = None,
) -> Dict[str, MappingVariantResult]:
    """Run every mapping variant ``runs`` times on the shared network.

    ``workers > 1`` fans the (variant, run) grid over a process pool;
    results are identical to a serial run (everything is seed-driven).
    ``checkpoint_dir`` journals completed runs so an interrupted sweep
    resumes; ``task_timeout``/``task_retries`` bound each task.
    """
    variants = _with_run_defaults(variants, generator_config, master_seed)
    timeout, retries = _resolve_limits(task_timeout, task_retries)
    checkpoint = _open_checkpoint(
        checkpoint_dir, "mapping", master_seed, generator_config, variants
    )
    network_seed = derive_seed(master_seed, "mapping-net")
    tasks = [
        (
            name,
            generator_config,
            world_config,
            network_seed,
            derive_seed(master_seed, f"mapping-world:{run_index}"),
            run_index,
        )
        for run_index in range(runs)
        for name, world_config in variants.items()
    ]
    collected: Dict[str, List[Tuple[int, MappingResult]]] = {
        name: [] for name in variants
    }
    accumulator = current_defaults().obs_accumulator
    pool_size = _resolve_workers(workers)
    for name, run_index, result in _run_tasks(
        tasks,
        _mapping_task,
        pool_size,
        progress,
        "mapping",
        checkpoint=checkpoint,
        to_dict=mapping_result_to_dict,
        from_dict=mapping_result_from_dict,
        timeout=timeout,
        retries=retries,
    ):
        collected[name].append((run_index, result))
    outcomes = {}
    for name, pairs in collected.items():
        pairs.sort(key=lambda pair: pair[0])
        outcome = MappingVariantResult(name)
        for run_index, result in pairs:
            outcome.finishing_times.append(result.finishing_time)
            outcome.results.append(result)
            if accumulator is not None:
                accumulator.add("mapping", name, run_index, result.obs)
        outcomes[name] = outcome
    return outcomes


def run_routing_variants(
    generator_config: GeneratorConfig,
    variants: Dict[str, RoutingWorldConfig],
    runs: int,
    master_seed: int = DEFAULT_MASTER_SEED,
    progress: Optional[ProgressCallback] = None,
    workers: Optional[int] = None,
    checkpoint_dir: Union[str, pathlib.Path, None] = None,
    task_timeout: Optional[float] = None,
    task_retries: Optional[int] = None,
) -> Dict[str, RoutingVariantResult]:
    """Run every routing variant ``runs`` times on the shared MANET.

    MANETs mutate as they run; rebuilding from the same seed reproduces
    the identical placement and movement paths in every variant, run and
    worker process.  Hardening knobs are as in
    :func:`run_mapping_variants`.
    """
    variants = _with_run_defaults(variants, generator_config, master_seed)
    timeout, retries = _resolve_limits(task_timeout, task_retries)
    checkpoint = _open_checkpoint(
        checkpoint_dir, "routing", master_seed, generator_config, variants
    )
    network_seed = derive_seed(master_seed, "routing-net")
    tasks = [
        (
            name,
            generator_config,
            world_config,
            network_seed,
            derive_seed(master_seed, f"routing-world:{run_index}"),
            run_index,
        )
        for run_index in range(runs)
        for name, world_config in variants.items()
    ]
    collected: Dict[str, List[Tuple[int, RoutingResult]]] = {
        name: [] for name in variants
    }
    accumulator = current_defaults().obs_accumulator
    pool_size = _resolve_workers(workers)
    for name, run_index, result in _run_tasks(
        tasks,
        _routing_task,
        pool_size,
        progress,
        "routing",
        checkpoint=checkpoint,
        to_dict=routing_result_to_dict,
        from_dict=routing_result_from_dict,
        timeout=timeout,
        retries=retries,
    ):
        collected[name].append((run_index, result))
    outcomes = {}
    for name, pairs in collected.items():
        pairs.sort(key=lambda pair: pair[0])
        outcome = RoutingVariantResult(name)
        for run_index, result in pairs:
            outcome.results.append(result)
            if accumulator is not None:
                accumulator.add("routing", name, run_index, result.obs)
        outcomes[name] = outcome
    return outcomes
