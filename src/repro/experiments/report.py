"""Rendering experiment outcomes as text reports.

An :class:`ExperimentReport` is what every registered experiment
returns: a table of headline numbers (one row per variant), optional
time-series for the figure's curves, and free-form notes comparing the
measured shape against the paper's claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.ascii_plot import ascii_plot, ascii_series_table
from repro.analysis.series import TimeSeries

__all__ = ["ExperimentReport"]


@dataclass
class ExperimentReport:
    """The rendered outcome of one experiment."""

    experiment_id: str
    title: str
    paper_claim: str
    columns: List[str] = field(default_factory=list)
    rows: List[List[str]] = field(default_factory=list)
    series: Dict[str, TimeSeries] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    y_label: str = ""

    def add_row(self, *cells: object) -> None:
        """Append a table row (cells are str()-ified)."""
        self.rows.append([str(cell) for cell in cells])

    def add_note(self, note: str) -> None:
        """Append a free-form observation."""
        self.notes.append(note)

    def table_text(self) -> str:
        """The headline table as aligned text."""
        if not self.columns:
            return ""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [
            "  ".join(c.ljust(w) for c, w in zip(self.columns, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def render(self, plots: bool = True, width: int = 72) -> str:
        """The full report: header, claim, table, curves, notes."""
        parts = [
            f"== {self.experiment_id}: {self.title} ==",
            f"paper claim: {self.paper_claim}",
            "",
        ]
        table = self.table_text()
        if table:
            parts.extend([table, ""])
        if self.series:
            if plots:
                parts.append(
                    ascii_plot(
                        self.series,
                        width=width,
                        title=f"{self.experiment_id} curves",
                        y_label=self.y_label,
                    )
                )
                parts.append("")
            parts.append(ascii_series_table(self.series))
            parts.append("")
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts).rstrip() + "\n"

    def series_samples(self, times: Sequence[int]) -> Optional[str]:
        """The numeric series table at specific times (or ``None``)."""
        if not self.series:
            return None
        return ascii_series_table(self.series, sample_times=times)
