"""The experiment registry: every reproducible figure by id."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import ExperimentError
from repro.experiments import (
    adversary_experiments,
    loss_experiments,
    mapping_experiments,
    routing_experiments,
    traffic_experiments,
)
from repro.experiments.config import DEFAULT_MASTER_SEED, Scale
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import ProgressCallback

__all__ = [
    "Experiment",
    "EXPERIMENTS",
    "SCALE_TIERS",
    "get_experiment",
    "list_experiments",
    "experiments_metadata",
]

ExperimentFn = Callable[..., ExperimentReport]

#: every scale tier a registered experiment can run at.
SCALE_TIERS = ("quick", "paper")


@dataclass(frozen=True)
class Experiment:
    """One registered experiment (a paper figure, extension, or ablation)."""

    experiment_id: str
    title: str
    scenario: str
    run_fn: ExperimentFn

    def run(
        self,
        scale: Scale,
        master_seed: int = DEFAULT_MASTER_SEED,
        progress: Optional[ProgressCallback] = None,
    ) -> ExperimentReport:
        """Execute the experiment at ``scale`` and return its report."""
        return self.run_fn(scale, master_seed, progress)

    def to_metadata(self) -> dict:
        """The JSON-safe discovery record (``repro list --json``)."""
        return {
            "id": self.experiment_id,
            "title": self.title,
            "scenario": self.scenario,
            "tiers": list(SCALE_TIERS),
        }


def _entry(experiment_id: str, title: str, scenario: str, fn: ExperimentFn) -> Experiment:
    return Experiment(experiment_id, title, scenario, fn)


EXPERIMENTS: Dict[str, Experiment] = {
    e.experiment_id: e
    for e in (
        _entry("fig1", "single Minar agent: random vs conscientious", "mapping",
               mapping_experiments.fig1),
        _entry("fig2", "single stigmergic agent: random vs conscientious", "mapping",
               mapping_experiments.fig2),
        _entry("fig3", "team knowledge over time (Minar conscientious)", "mapping",
               mapping_experiments.fig3),
        _entry("fig4", "team knowledge over time (stigmergic conscientious)", "mapping",
               mapping_experiments.fig4),
        _entry("fig5", "population sweep: conscientious vs super (Minar)", "mapping",
               mapping_experiments.fig5),
        _entry("fig6", "population sweep: conscientious vs super (stigmergic)",
               "mapping", mapping_experiments.fig6),
        _entry("fig7", "connectivity over time (oldest-node team)", "routing",
               routing_experiments.fig7),
        _entry("fig8", "connectivity vs population size", "routing",
               routing_experiments.fig8),
        _entry("fig9", "connectivity vs history size", "routing",
               routing_experiments.fig9),
        _entry("fig10", "visiting effect on random agents", "routing",
               routing_experiments.fig10),
        _entry("fig11", "visiting effect on oldest-node agents", "routing",
               routing_experiments.fig11),
        _entry("ext1", "extension: stigmergic dynamic routing", "routing",
               routing_experiments.ext1),
        _entry("ext2", "extension: attractive pheromone vs repulsive footprints",
               "routing", routing_experiments.ext2),
        _entry("faults1", "resilience under node churn and a gateway outage",
               "routing", routing_experiments.faults1),
        _entry("loss1", "lossy channels: connectivity and map completion vs loss rate",
               "routing", loss_experiments.loss1),
        _entry("traffic1", "payload delivery vs loss: custody store-and-forward "
               "vs epidemic vs spray-and-wait", "routing", traffic_experiments.traffic1),
        _entry("adversary1", "adversarial resilience: gray failures and corrupted "
               "agents, defenses on vs off", "routing",
               adversary_experiments.adversary1),
        _entry("abl1", "ablation: footprint freshness window", "mapping",
               mapping_experiments.abl1),
        _entry("abl2", "ablation: symmetric vs directed environment", "mapping",
               mapping_experiments.abl2),
        _entry("abl3", "ablation: epsilon-randomized vs stigmergic super agents",
               "mapping", mapping_experiments.abl3),
        _entry("abl4", "ablation: per-decision overhead accounting", "mapping",
               mapping_experiments.abl4),
        _entry("abl5", "ablation: orderings across generated networks", "mapping",
               mapping_experiments.abl5),
        _entry("abl6", "ablation: route quality (stretch/coverage/balance)", "routing",
               routing_experiments.abl6),
    )
}


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment by id; raise with the valid ids listed."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; valid ids: "
            f"{', '.join(sorted(EXPERIMENTS))}"
        ) from None


def list_experiments() -> List[Experiment]:
    """All experiments ordered by id (figures first, then extensions)."""
    def key(e: Experiment):
        prefix = {"fig": 0, "ext": 1, "abl": 2}.get(e.experiment_id[:3], 3)
        digits = "".join(ch for ch in e.experiment_id if ch.isdigit())
        return (prefix, int(digits) if digits else 0)

    return sorted(EXPERIMENTS.values(), key=key)


def experiments_metadata() -> List[dict]:
    """Machine-readable records for every experiment, in listing order.

    This is what the service layer and external tooling consume to
    discover scenarios without parsing ``repro list`` text.
    """
    return [experiment.to_metadata() for experiment in list_experiments()]
