"""Lossy-channel experiments: agent performance vs transfer loss.

The paper claims its stigmergic agents suit a *realistic* wireless
environment (§II-A, §III-A), yet evaluates them over perfect transfers.
``loss1`` closes that gap: the same seeded mapping and routing teams are
swept across per-attempt loss rates, with the reliable-migration
protocol (bounded retries, exponential backoff, link suspicion) doing
its best underneath and the runtime invariant checker active in every
world, so the sweep doubles as a cross-layer consistency audit.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.config import DEFAULT_MASTER_SEED, Scale
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import (
    ProgressCallback,
    run_mapping_variants,
    run_routing_variants,
)
from repro.mapping.world import MappingWorldConfig
from repro.net.channel import ChannelConfig
from repro.routing.world import RoutingWorldConfig

__all__ = ["loss1", "LOSS_RATES"]

#: Per-attempt loss rates swept by ``loss1`` (0 anchors the baseline).
LOSS_RATES = (0.0, 0.1, 0.2, 0.35, 0.5)


def _label(rate: float) -> str:
    return f"loss={rate:g}"


def loss1(
    scale: Scale,
    master_seed: int = DEFAULT_MASTER_SEED,
    progress: Optional[ProgressCallback] = None,
) -> ExperimentReport:
    """Connectivity and map-completion time vs channel loss rate.

    Routing: one oldest-node team per loss rate on the identical seeded
    MANET.  Mapping: one stigmergic conscientious team per rate on the
    identical static network.  Every world runs with ``check_invariants``
    forced on and ``raise_on_violation`` semantics — a single broken
    cross-layer contract aborts its run, so a completed sweep certifies
    zero violations.
    """
    routing_variants: Dict[str, RoutingWorldConfig] = {
        _label(rate): RoutingWorldConfig(
            population=scale.routing_population,
            history_size=scale.default_history,
            total_steps=scale.routing_steps,
            converged_after=scale.routing_converged_after,
            channel=ChannelConfig(loss=rate),
            check_invariants=True,
        )
        for rate in LOSS_RATES
    }
    routing_outcomes = run_routing_variants(
        scale.routing_generator_config(),
        routing_variants,
        scale.runs,
        master_seed,
        progress,
    )
    mapping_variants: Dict[str, MappingWorldConfig] = {
        _label(rate): MappingWorldConfig(
            agent_kind="conscientious",
            population=scale.team_population,
            stigmergic=True,
            max_steps=scale.mapping_max_steps,
            channel=ChannelConfig(loss=rate),
            check_invariants=True,
        )
        for rate in LOSS_RATES
    }
    mapping_outcomes = run_mapping_variants(
        scale.mapping_generator_config(),
        mapping_variants,
        scale.runs,
        master_seed,
        progress,
    )
    report = ExperimentReport(
        experiment_id="loss1",
        title="performance vs per-attempt transfer loss rate",
        paper_claim=(
            "(beyond the paper: with retries and backoff the teams should "
            "degrade gracefully — connectivity falls and mapping slows "
            "monotonically as loss rises, with no collapse at moderate rates)"
        ),
        columns=[
            "loss rate",
            "mean connectivity (converged)",
            "fluctuation (std)",
            "map finishing time",
            "finished runs",
        ],
        y_label="connectivity fraction",
    )
    summaries = []
    for rate in LOSS_RATES:
        name = _label(rate)
        routing = routing_outcomes[name]
        mapping = mapping_outcomes[name]
        connectivity = routing.connectivity_summary
        summaries.append(connectivity)
        report.add_row(
            f"{rate:g}",
            connectivity.format(digits=3),
            f"{routing.stability_summary.mean:.3f}",
            mapping.finishing_summary.format(digits=0),
            f"{mapping.finished_runs}/{len(mapping.results)}",
        )
        report.series[name] = routing.connectivity_series()
    # Monotone up to sampling noise: a later rate may sit above an
    # earlier one by at most the pair's combined standard error — seeded
    # means at adjacent rates jitter even when the true trend is clean.
    monotone = all(
        later.mean <= earlier.mean + earlier.stderr + later.stderr + 1e-9
        for earlier, later in zip(summaries, summaries[1:])
    )
    report.add_note(
        "connectivity degrades monotonically with loss rate (within one "
        "combined standard error per step): "
        + ("yes" if monotone else "NO — check the retry/backoff settings")
    )
    hop_budget = ChannelConfig()
    report.add_note(
        f"reliable migration: up to {hop_budget.hop_retries} retries per hop, "
        f"backoff base {hop_budget.backoff_base} step(s), abandoned hops drop "
        "routes through the unreachable neighbour"
    )
    report.add_note(
        "invariant checker was active in every world; a violation aborts its "
        "run, so completed sweeps certify zero violations"
    )
    return report
