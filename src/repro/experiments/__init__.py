"""Experiment harness: one registered experiment per paper figure.

Every figure of the paper's evaluation (Figures 1–11), the paper's
future-work extension (stigmergic routing), and two ablations are
registered here.  Each experiment can run at ``PAPER`` scale (the paper's
node counts, 40 runs — what EXPERIMENTS.md reports) or ``QUICK`` scale
(small networks, few runs — what benchmarks and CI exercise).
"""

from repro.experiments.config import PAPER, QUICK, Scale
from repro.experiments.registry import (
    EXPERIMENTS,
    Experiment,
    get_experiment,
    list_experiments,
)
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import (
    MappingVariantResult,
    RoutingVariantResult,
    run_mapping_variants,
    run_routing_variants,
)

__all__ = [
    "Scale",
    "PAPER",
    "QUICK",
    "Experiment",
    "EXPERIMENTS",
    "get_experiment",
    "list_experiments",
    "ExperimentReport",
    "run_mapping_variants",
    "run_routing_variants",
    "MappingVariantResult",
    "RoutingVariantResult",
]
