"""Saving and loading experiment reports.

Reports serialize to plain JSON so paper-scale results can be archived,
diffed across library versions, and re-rendered without re-running the
(minutes-long) simulations.  The CLI exposes this via
``repro run figN --json-dir DIR --svg-dir DIR``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

from repro.analysis.series import TimeSeries
from repro.analysis.svg_plot import svg_plot
from repro.errors import ExperimentError
from repro.experiments.report import ExperimentReport

__all__ = ["report_to_dict", "report_from_dict", "save_report", "load_report", "save_svg"]

#: bumped when the on-disk layout changes incompatibly.
SCHEMA_VERSION = 1


def report_to_dict(report: ExperimentReport) -> dict:
    """The JSON-safe dictionary form of a report."""
    return {
        "schema": SCHEMA_VERSION,
        "experiment_id": report.experiment_id,
        "title": report.title,
        "paper_claim": report.paper_claim,
        "columns": list(report.columns),
        "rows": [list(row) for row in report.rows],
        "series": {
            name: {"times": list(series.times), "values": list(series.values)}
            for name, series in report.series.items()
        },
        "notes": list(report.notes),
        "y_label": report.y_label,
    }


def report_from_dict(payload: dict) -> ExperimentReport:
    """Rebuild a report from :func:`report_to_dict` output."""
    schema = payload.get("schema")
    if schema != SCHEMA_VERSION:
        raise ExperimentError(
            f"unsupported report schema {schema!r} (expected {SCHEMA_VERSION})"
        )
    report = ExperimentReport(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        paper_claim=payload["paper_claim"],
        columns=list(payload.get("columns", [])),
        rows=[list(row) for row in payload.get("rows", [])],
        notes=list(payload.get("notes", [])),
        y_label=payload.get("y_label", ""),
    )
    for name, series in payload.get("series", {}).items():
        report.series[name] = TimeSeries(
            list(series["times"]), [float(v) for v in series["values"]]
        )
    return report


def save_report(report: ExperimentReport, directory: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write ``<experiment_id>.json`` under ``directory``; returns the path."""
    target_dir = pathlib.Path(directory)
    target_dir.mkdir(parents=True, exist_ok=True)
    path = target_dir / f"{report.experiment_id}.json"
    path.write_text(json.dumps(report_to_dict(report), indent=2, sort_keys=True))
    return path


def load_report(path: Union[str, pathlib.Path]) -> ExperimentReport:
    """Load a report previously written by :func:`save_report`."""
    try:
        payload = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ExperimentError(f"cannot load report from {path}: {error}") from None
    return report_from_dict(payload)


def save_svg(report: ExperimentReport, directory: Union[str, pathlib.Path]) -> Union[pathlib.Path, None]:
    """Write ``<experiment_id>.svg`` if the report has curves.

    Returns the written path, or ``None`` for table-only reports.
    """
    if not report.series:
        return None
    target_dir = pathlib.Path(directory)
    target_dir.mkdir(parents=True, exist_ok=True)
    path = target_dir / f"{report.experiment_id}.svg"
    path.write_text(
        svg_plot(
            report.series,
            title=f"{report.experiment_id}: {report.title}",
            y_label=report.y_label,
        )
    )
    return path
