"""Saving and loading experiment reports and sweep checkpoints.

Reports serialize to plain JSON so paper-scale results can be archived,
diffed across library versions, and re-rendered without re-running the
(minutes-long) simulations.  The CLI exposes this via
``repro run figN --json-dir DIR --svg-dir DIR``.

The same JSON-safe forms back :class:`SweepCheckpoint`: an append-only
JSONL journal of completed ``(variant, run)`` results.  A paper-scale
sweep killed halfway (crash, timeout, Ctrl-C) re-runs the same command
and resumes from the journal instead of restarting — the runner skips
every task the journal already holds.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.series import TimeSeries
from repro.analysis.svg_plot import svg_plot
from repro.errors import ExperimentError
from repro.experiments.report import ExperimentReport
from repro.faults.metrics import ResilienceReport
from repro.mapping.world import MappingResult
from repro.net.health import HealthReport
from repro.obs.collector import ObsReport
from repro.routing.world import RoutingResult
from repro.traffic.plane import TrafficReport

__all__ = [
    "report_to_dict",
    "report_from_dict",
    "save_report",
    "load_report",
    "report_paths",
    "save_svg",
    "mapping_result_to_dict",
    "mapping_result_from_dict",
    "routing_result_to_dict",
    "routing_result_from_dict",
    "SweepCheckpoint",
]

#: bumped when the on-disk layout changes incompatibly.
SCHEMA_VERSION = 1

#: bumped when the checkpoint-journal layout changes incompatibly.
CHECKPOINT_SCHEMA = 1


def report_to_dict(report: ExperimentReport) -> dict:
    """The JSON-safe dictionary form of a report."""
    return {
        "schema": SCHEMA_VERSION,
        "experiment_id": report.experiment_id,
        "title": report.title,
        "paper_claim": report.paper_claim,
        "columns": list(report.columns),
        "rows": [list(row) for row in report.rows],
        "series": {
            name: {"times": list(series.times), "values": list(series.values)}
            for name, series in report.series.items()
        },
        "notes": list(report.notes),
        "y_label": report.y_label,
    }


def report_from_dict(payload: dict) -> ExperimentReport:
    """Rebuild a report from :func:`report_to_dict` output."""
    schema = payload.get("schema")
    if schema != SCHEMA_VERSION:
        raise ExperimentError(
            f"unsupported report schema {schema!r} (expected {SCHEMA_VERSION})"
        )
    report = ExperimentReport(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        paper_claim=payload["paper_claim"],
        columns=list(payload.get("columns", [])),
        rows=[list(row) for row in payload.get("rows", [])],
        notes=list(payload.get("notes", [])),
        y_label=payload.get("y_label", ""),
    )
    for name, series in payload.get("series", {}).items():
        report.series[name] = TimeSeries(
            list(series["times"]), [float(v) for v in series["values"]]
        )
    return report


def save_report(report: ExperimentReport, directory: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write ``<experiment_id>.json`` under ``directory``; returns the path."""
    target_dir = pathlib.Path(directory)
    target_dir.mkdir(parents=True, exist_ok=True)
    path = target_dir / f"{report.experiment_id}.json"
    path.write_text(json.dumps(report_to_dict(report), indent=2, sort_keys=True))
    return path


def load_report(path: Union[str, pathlib.Path]) -> ExperimentReport:
    """Load a report previously written by :func:`save_report`."""
    try:
        payload = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ExperimentError(f"cannot load report from {path}: {error}") from None
    return report_from_dict(payload)


def report_paths(target: Union[str, pathlib.Path]) -> List[pathlib.Path]:
    """Every report JSON under ``target`` (a file, or a directory walked
    recursively — service job directories nest reports per unit label)."""
    target = pathlib.Path(target)
    if target.is_dir():
        return sorted(target.rglob("*.json"))
    return [target]


def save_svg(report: ExperimentReport, directory: Union[str, pathlib.Path]) -> Union[pathlib.Path, None]:
    """Write ``<experiment_id>.svg`` if the report has curves.

    Returns the written path, or ``None`` for table-only reports.
    """
    if not report.series:
        return None
    target_dir = pathlib.Path(directory)
    target_dir.mkdir(parents=True, exist_ok=True)
    path = target_dir / f"{report.experiment_id}.svg"
    path.write_text(
        svg_plot(
            report.series,
            title=f"{report.experiment_id}: {report.title}",
            y_label=report.y_label,
        )
    )
    return path


# ----------------------------------------------------------------------
# Per-run result serialization (checkpoint journal entries)
# ----------------------------------------------------------------------


def _resilience_to_dict(report: Optional[ResilienceReport]) -> Optional[dict]:
    return dataclasses.asdict(report) if report is not None else None


def _resilience_from_dict(payload: Optional[dict]) -> Optional[ResilienceReport]:
    return ResilienceReport(**payload) if payload is not None else None


def _obs_to_dict(report: Optional[ObsReport]) -> Optional[dict]:
    return report.to_dict() if report is not None else None


def _traffic_to_dict(report: Optional[TrafficReport]) -> Optional[dict]:
    return report.to_dict() if report is not None else None


def _health_to_dict(report: Optional[HealthReport]) -> Optional[dict]:
    return report.to_dict() if report is not None else None


def _health_from_dict(payload: Optional[dict]) -> Optional[HealthReport]:
    return HealthReport.from_dict(payload) if payload is not None else None


def mapping_result_to_dict(result: MappingResult) -> dict:
    """The JSON-safe form of one mapping run's outcome."""
    return {
        "finishing_time": result.finishing_time,
        "steps_simulated": result.steps_simulated,
        "times": list(result.times),
        "average_knowledge": list(result.average_knowledge),
        "minimum_knowledge": list(result.minimum_knowledge),
        "meetings": result.meetings,
        "overhead": dict(result.overhead),
        "resilience": _resilience_to_dict(result.resilience),
        "obs": _obs_to_dict(result.obs),
        "traffic": _traffic_to_dict(result.traffic),
        "health": _health_to_dict(result.health),
    }


def mapping_result_from_dict(payload: dict) -> MappingResult:
    """Rebuild a :class:`MappingResult` from its JSON-safe form."""
    return MappingResult(
        finishing_time=payload["finishing_time"],
        steps_simulated=payload["steps_simulated"],
        times=list(payload["times"]),
        average_knowledge=[float(v) for v in payload["average_knowledge"]],
        minimum_knowledge=[float(v) for v in payload["minimum_knowledge"]],
        meetings=payload["meetings"],
        overhead={k: float(v) for k, v in payload["overhead"].items()},
        resilience=_resilience_from_dict(payload.get("resilience")),
        obs=ObsReport.from_dict(payload.get("obs")),
        traffic=TrafficReport.from_dict(payload.get("traffic")),
        health=_health_from_dict(payload.get("health")),
    )


def routing_result_to_dict(result: RoutingResult) -> dict:
    """The JSON-safe form of one routing run's outcome."""
    return {
        "times": list(result.times),
        "connectivity": list(result.connectivity),
        "converged_after": result.converged_after,
        "meetings": result.meetings,
        "overhead": dict(result.overhead),
        "guard_rejections": result.guard_rejections,
        "resilience": _resilience_to_dict(result.resilience),
        "obs": _obs_to_dict(result.obs),
        "traffic": _traffic_to_dict(result.traffic),
        "health": _health_to_dict(result.health),
    }


def routing_result_from_dict(payload: dict) -> RoutingResult:
    """Rebuild a :class:`RoutingResult` from its JSON-safe form."""
    return RoutingResult(
        times=list(payload["times"]),
        connectivity=[float(v) for v in payload["connectivity"]],
        converged_after=payload["converged_after"],
        meetings=payload["meetings"],
        overhead={k: float(v) for k, v in payload["overhead"].items()},
        guard_rejections=int(payload.get("guard_rejections", 0)),
        resilience=_resilience_from_dict(payload.get("resilience")),
        obs=ObsReport.from_dict(payload.get("obs")),
        traffic=TrafficReport.from_dict(payload.get("traffic")),
        health=_health_from_dict(payload.get("health")),
    )


# ----------------------------------------------------------------------
# Sweep checkpoints
# ----------------------------------------------------------------------


class SweepCheckpoint:
    """Append-only JSONL journal of completed ``(variant, run)`` results.

    Line 1 is a header carrying the sweep fingerprint (a hash of the
    scenario, master seed, generator config and every variant config);
    each further line is one completed task.  Appends are flushed
    immediately, so a sweep killed mid-run loses at most the task being
    written.  A truncated trailing line (the kill landed mid-write) is
    tolerated and dropped on load.
    """

    def __init__(self, path: Union[str, pathlib.Path], scenario: str, fingerprint: str) -> None:
        self.path = pathlib.Path(path)
        self.scenario = scenario
        self.fingerprint = fingerprint
        self._results: Dict[Tuple[str, int], dict] = {}
        if self.path.exists():
            self._load()
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._append(
                {
                    "schema": CHECKPOINT_SCHEMA,
                    "scenario": scenario,
                    "fingerprint": fingerprint,
                }
            )

    def _load(self) -> None:
        lines = self.path.read_text().splitlines()
        if not lines:
            raise ExperimentError(f"checkpoint {self.path} is empty; delete it to restart")
        header = self._parse(lines[0])
        if header is None or header.get("schema") != CHECKPOINT_SCHEMA:
            raise ExperimentError(
                f"checkpoint {self.path} has an unsupported header; delete it to restart"
            )
        if header.get("fingerprint") != self.fingerprint:
            raise ExperimentError(
                f"checkpoint {self.path} belongs to a different sweep "
                "(configs or seed changed); delete it to restart"
            )
        for line in lines[1:]:
            entry = self._parse(line)
            if entry is None:
                continue  # killed mid-write; drop the torn line
            self._results[(entry["name"], entry["run_index"])] = entry["result"]

    @staticmethod
    def _parse(line: str) -> Optional[dict]:
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            return None
        return payload if isinstance(payload, dict) else None

    def _append(self, payload: dict) -> None:
        with self.path.open("a+b") as handle:
            # A torn trailing line (previous run killed mid-write) has no
            # newline; seal it off so the new record starts a fresh line
            # instead of merging with the garbage and being lost too.
            handle.seek(0, 2)
            if handle.tell() > 0:
                handle.seek(-1, 2)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
            handle.write(json.dumps(payload, sort_keys=True).encode() + b"\n")
            handle.flush()

    def __contains__(self, key: Tuple[str, int]) -> bool:
        return key in self._results

    def __len__(self) -> int:
        return len(self._results)

    def result_payload(self, name: str, run_index: int) -> dict:
        """The stored JSON-safe result for one completed task."""
        return self._results[(name, run_index)]

    def record(self, name: str, run_index: int, result_payload: dict) -> None:
        """Journal one completed task (idempotent per key)."""
        key = (name, run_index)
        if key in self._results:
            return
        self._results[key] = result_payload
        self._append({"name": name, "run_index": run_index, "result": result_payload})
