"""Adversarial-resilience experiments: gray failures, defenses on vs off.

The paper's fault model (§III-B) kills nodes outright — detectable by
silence.  A *gray* failure is nastier: the node stays up, keeps its
links, and silently drops most of what it is handed, so every metric
that equates liveness with health keeps trusting it.  ``adversary1``
sweeps the fraction of gray-failed nodes over the identical seeded
MANET twice — once with the suspicion/quarantine health monitor and
table-write guards enabled, once without — and measures what the
defense layer actually buys in end-to-end payload delivery.

Each adversarial variant also carries two corrupted agents that forge
attractive routing knowledge (hop counts of 1, sequence numbers stamped
ahead of the clock); the defended arm's table guard rejects the forged
writes, the undefended arm installs them.  Every world runs with
``check_invariants`` forced on, which now also certifies that
quarantine never isolates a live node and that guard rejections are
conserved in the overhead counters.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.analysis.series import TimeSeries
from repro.analysis.stats import summarize
from repro.experiments.config import DEFAULT_MASTER_SEED, Scale
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import ProgressCallback, run_routing_variants
from repro.faults.plan import FaultPlan
from repro.net.health import HealthConfig
from repro.routing.table import TableGuard
from repro.routing.world import RoutingWorldConfig
from repro.traffic.plane import TrafficConfig

__all__ = ["adversary1", "ADVERSARY_GRAY_FRACTIONS"]

#: Gray-failure node fractions swept (0 anchors the clean baseline).
ADVERSARY_GRAY_FRACTIONS = (0.0, 0.1, 0.2, 0.3)

#: Drop rate of each gray-failed node (relays agents, swallows payloads).
ADVERSARY_GRAY_RATE = 0.95

#: Corrupted agents riding along in every adversarial variant.
ADVERSARY_CORRUPT_AGENTS = 4

#: Delivery a defended world must retain at 20% gray nodes, relative to
#: its own clean baseline (the ISSUE's acceptance bar).
RECOVERY_BAR = 0.8


def _label(defended: bool, fraction: float) -> str:
    arm = "defended" if defended else "undefended"
    return f"{arm}@gray={fraction:g}"


def adversary1(
    scale: Scale,
    master_seed: int = DEFAULT_MASTER_SEED,
    progress: Optional[ProgressCallback] = None,
) -> ExperimentReport:
    """Payload delivery vs gray-failure fraction, defenses on vs off.

    Both arms of each fraction share the *identical* fault plan (same
    victims, same corrupted agents, same schedule) — the only difference
    is whether the health monitor and table guard are attached, so the
    delivery gap is attributable to the defense layer alone.
    """
    # A slightly denser, steadier MANET than the scenario default: the
    # shrunken arena gives most nodes a detour around a quarantined
    # neighbor (sparse networks turn gray nodes into cut vertices no
    # defense can route around), and the lower mobile fraction keeps
    # paths stable long enough for link evidence to pay off.
    base = scale.routing_generator_config()
    generator_config = replace(
        base,
        arena_width=base.arena_width * 0.8,
        arena_height=base.arena_height * 0.8,
        mobile_fraction=0.2,
    )
    gateways = tuple(range(generator_config.gateway_count))
    # A TTL of a third of the run turns gray-induced *delay* (burned
    # retransmission budget) into measurable *loss* — with a whole-run
    # TTL, custody retries eventually push most payloads through even a
    # 95%-drop next hop and the arms become indistinguishable.  The
    # generation window starts after the adversary activates and closes
    # one TTL before the run ends, so every payload's fate is decided
    # (no still-buffered tail diluting the delivery ratio), and the
    # 2.0/step rate keeps per-run payload counts high enough that the
    # arms differ by dozens of payloads rather than a handful.
    ttl = max(10, scale.routing_steps // 3)
    traffic = TrafficConfig(
        rate=2.0,
        payload_ttl=ttl,
        router="store-and-forward",
        start=10,
        stop=max(11, scale.routing_steps - ttl),
    )

    def plan_for(fraction: float) -> Optional[FaultPlan]:
        if fraction == 0.0:
            return None  # the clean anchor: no adversary at all
        return FaultPlan.random_adversary(
            master_seed,
            node_count=generator_config.node_count,
            gray_fraction=fraction,
            gray_rate=ADVERSARY_GRAY_RATE,
            corrupt_agents=ADVERSARY_CORRUPT_AGENTS,
            population=scale.routing_population,
            exclude=gateways,
            name=f"adversary:{fraction:g}",
        )

    variants: Dict[str, RoutingWorldConfig] = {}
    for fraction in ADVERSARY_GRAY_FRACTIONS:
        plan = plan_for(fraction)
        for defended in (True, False):
            variants[_label(defended, fraction)] = RoutingWorldConfig(
                population=scale.routing_population,
                history_size=scale.default_history,
                total_steps=scale.routing_steps,
                converged_after=scale.routing_converged_after,
                fault_plan=plan,
                health=HealthConfig() if defended else None,
                table_guard=TableGuard() if defended else None,
                check_invariants=True,
                traffic=traffic,
            )
    outcomes = run_routing_variants(
        generator_config,
        variants,
        scale.runs,
        master_seed,
        progress,
    )
    report = ExperimentReport(
        experiment_id="adversary1",
        title="payload delivery vs gray-failure fraction, defenses on vs off",
        paper_claim=(
            "(beyond the paper: §III-B only kills nodes outright; a gray "
            "failure keeps answering the topology while silently dropping "
            "forwards, so resilience requires evidence-based suspicion — "
            "EWMA link quality, quarantine, and table-write guards should "
            "recover most of the clean-network delivery ratio)"
        ),
        columns=[
            "defenses",
            "gray fraction",
            "delivery ratio",
            "quarantines",
            "guard rejections",
            "retransmissions",
        ],
        y_label="delivery ratio",
    )
    means: Dict[str, List[float]] = {"defended": [], "undefended": []}
    for defended in (True, False):
        arm = "defended" if defended else "undefended"
        for fraction in ADVERSARY_GRAY_FRACTIONS:
            results = outcomes[_label(defended, fraction)].results
            traffic_reports = [r.traffic for r in results]
            ratio = summarize([t.delivery_ratio for t in traffic_reports])
            means[arm].append(ratio.mean)
            report.add_row(
                arm,
                f"{fraction:g}",
                ratio.format(digits=3),
                sum(r.health.quarantines for r in results if r.health is not None),
                sum(r.guard_rejections for r in results),
                sum(
                    t.counters.get("retransmissions", 0)
                    for t in traffic_reports
                ),
            )
        report.series[arm] = TimeSeries(
            [int(f * 100) for f in ADVERSARY_GRAY_FRACTIONS], means[arm]
        )
    baseline = means["defended"][0]
    bar = RECOVERY_BAR * baseline
    at_twenty = ADVERSARY_GRAY_FRACTIONS.index(0.2)
    defended_ok = means["defended"][at_twenty] >= bar
    undefended_below = means["undefended"][at_twenty] < bar
    report.add_note(
        f"at 20% gray nodes the defended arm delivers "
        f"{means['defended'][at_twenty]:.3f} vs a clean baseline of "
        f"{baseline:.3f} — recovery bar ({RECOVERY_BAR:g}x baseline = "
        f"{bar:.3f}) " + ("met" if defended_ok else "MISSED")
    )
    report.add_note(
        f"the undefended arm delivers {means['undefended'][at_twenty]:.3f} "
        "at 20% gray nodes — "
        + (
            "below the bar, so the gap is the defense layer's contribution"
            if undefended_below
            else "UNEXPECTEDLY above the bar"
        )
    )
    report.add_note(
        "both arms of each fraction share the identical seeded fault plan "
        "(same gray victims, same corrupted agents); only the health "
        "monitor and table guard differ"
    )
    report.add_note(
        "invariant checker was active in every world, including the "
        "quarantine-never-isolates and guard-rejection-conservation "
        "checks; a violation aborts its run, so completed sweeps certify "
        "zero violations"
    )
    return report
