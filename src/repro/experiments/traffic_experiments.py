"""Traffic experiments: end-to-end payload delivery over agent routing.

The paper's tables exist so "an average packet will use a multi-hop path
to reach one of those gateways" — ``traffic1`` finally measures that.
The same seeded MANET and oldest-node agent team run under a sweep of
channel loss rates while the data plane generates Poisson payload
arrivals and the three routers (custody store-and-forward over the
agent-built tables, epidemic, binary spray-and-wait) move them toward
the gateways.  Every world runs with ``check_invariants`` forced on, so
a completed sweep certifies the payload-conservation ledger balanced
after every single step of every run.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.series import TimeSeries
from repro.analysis.stats import summarize
from repro.experiments.config import DEFAULT_MASTER_SEED, Scale
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import ProgressCallback, run_routing_variants
from repro.net.channel import ChannelConfig
from repro.routing.world import RoutingWorldConfig
from repro.traffic.plane import TrafficConfig
from repro.traffic.routers import ROUTERS

__all__ = ["traffic1", "TRAFFIC_LOSS_RATES"]

#: Per-attempt loss rates swept by ``traffic1`` (0 anchors the baseline).
TRAFFIC_LOSS_RATES = (0.0, 0.1, 0.2, 0.35, 0.5)


def _label(router: str, rate: float) -> str:
    return f"{router}@loss={rate:g}"


def traffic1(
    scale: Scale,
    master_seed: int = DEFAULT_MASTER_SEED,
    progress: Optional[ProgressCallback] = None,
) -> ExperimentReport:
    """Payload delivery ratio and latency vs channel loss, per router.

    One routing variant per (router, loss rate) pair on the identical
    seeded MANET, each with a Poisson payload workload.  The store-and-
    forward router rides the routing tables the agents build; epidemic
    and spray-and-wait replicate over raw encounters as baselines.
    """
    traffic_for = {
        router: TrafficConfig(rate=0.5, payload_ttl=scale.routing_steps, router=router)
        for router in ROUTERS
    }
    variants: Dict[str, RoutingWorldConfig] = {
        _label(router, rate): RoutingWorldConfig(
            population=scale.routing_population,
            history_size=scale.default_history,
            total_steps=scale.routing_steps,
            converged_after=scale.routing_converged_after,
            channel=ChannelConfig(loss=rate),
            check_invariants=True,
            traffic=traffic_for[router],
        )
        for router in ROUTERS
        for rate in TRAFFIC_LOSS_RATES
    }
    outcomes = run_routing_variants(
        scale.routing_generator_config(),
        variants,
        scale.runs,
        master_seed,
        progress,
    )
    report = ExperimentReport(
        experiment_id="traffic1",
        title="payload delivery vs channel loss (store-and-forward data plane)",
        paper_claim=(
            "(beyond the paper: \"an average packet will use a multi-hop path "
            "to reach one of those gateways\" — with bounded queues, custody "
            "transfer and retransmission, delivery should degrade gracefully "
            "as loss rises, never collapse, and payloads must be conserved "
            "exactly through fault churn)"
        ),
        columns=[
            "router",
            "loss rate",
            "delivery ratio",
            "mean latency",
            "retransmissions",
            "queue drops",
            "expired",
        ],
        y_label="delivery ratio",
    )
    monotone_notes: List[str] = []
    for router in ROUTERS:
        summaries = []
        curve_values: List[float] = []
        for rate in TRAFFIC_LOSS_RATES:
            results = outcomes[_label(router, rate)].results
            traffic = [r.traffic for r in results]
            ratio = summarize([t.delivery_ratio for t in traffic])
            summaries.append(ratio)
            curve_values.append(ratio.mean)
            report.add_row(
                router,
                f"{rate:g}",
                ratio.format(digits=3),
                f"{summarize([t.mean_latency for t in traffic]).mean:.1f}",
                sum(t.counters.get("retransmissions", 0) for t in traffic),
                sum(
                    t.counters.get("overflow_drops", 0)
                    + t.counters.get("source_drops", 0)
                    for t in traffic
                ),
                sum(t.expired for t in traffic),
            )
        report.series[router] = TimeSeries(
            [int(rate * 100) for rate in TRAFFIC_LOSS_RATES], curve_values
        )
        # Monotone up to sampling noise: a later rate may sit above an
        # earlier one by at most the pair's combined 95% CI half-widths
        # (the same ± the table prints).
        def _half(summary) -> float:
            low, high = summary.ci95
            return (high - low) / 2.0

        monotone = all(
            later.mean <= earlier.mean + _half(earlier) + _half(later) + 1e-9
            for earlier, later in zip(summaries, summaries[1:])
        )
        monotone_notes.append(
            f"{router}: delivery ratio degrades monotonically with loss "
            "(within the pair's combined 95% CI half-widths): "
            + ("yes" if monotone else "NO — check retry/queue settings")
        )
    for note in monotone_notes:
        report.add_note(note)
    report.add_note(
        "series x-axis is the loss rate in percent; values are mean "
        "delivery ratios across runs"
    )
    report.add_note(
        "invariant checker was active in every world (payload conservation "
        "generated == delivered + expired + dropped + in-flight + buffered "
        "checked after every step); a violation aborts its run, so completed "
        "sweeps certify zero violations"
    )
    return report
