"""Experiment scales.

``PAPER`` mirrors the paper's setup: a 300-node / ~2164-edge mapping
network, a 250-node / 12-gateway MANET, 300-step routing runs averaged
over steps 150..300, and 40 independent seeded runs of everything.
``QUICK`` shrinks every dimension so the whole suite runs in seconds —
benchmarks, CI and integration tests use it; the comparative *shapes*
already show at this scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.net.generator import GeneratorConfig

__all__ = ["Scale", "PAPER", "QUICK", "DEFAULT_MASTER_SEED"]

#: Master seed every experiment derives its run seeds from by default.
DEFAULT_MASTER_SEED = 2010


@dataclass(frozen=True)
class Scale:
    """All size knobs for one tier of experiment fidelity."""

    name: str
    runs: int
    # --- mapping scenario -------------------------------------------
    mapping_nodes: int
    mapping_target_edges: Optional[int]
    mapping_max_steps: int
    populations: Tuple[int, ...]
    team_population: int
    # --- routing scenario -------------------------------------------
    routing_nodes: int
    routing_gateways: int
    routing_population: int
    routing_steps: int
    routing_converged_after: int
    routing_populations: Tuple[int, ...]
    history_sizes: Tuple[int, ...]
    default_history: int
    #: history sizes swept by the visiting figures (paper: "for different
    #: cache size").  The chasing penalty of visiting on oldest-node
    #: agents only bites once histories are rich enough that the locally
    #: oldest candidate is usually unique.
    visiting_history_sizes: Tuple[int, ...] = (10, 25, 60)

    def mapping_generator_config(self, heterogeneity: float = 0.3) -> GeneratorConfig:
        """The mapping-network generator preset at this scale."""
        return GeneratorConfig(
            node_count=self.mapping_nodes,
            target_edges=self.mapping_target_edges,
            edge_tolerance=max(30, (self.mapping_target_edges or 100) // 30),
            range_heterogeneity=heterogeneity,
            require_strong_connectivity=True,
        )

    def routing_generator_config(self) -> GeneratorConfig:
        """The MANET generator preset at this scale."""
        return GeneratorConfig(
            node_count=self.routing_nodes,
            target_edges=None,
            range_heterogeneity=0.25,
            require_strong_connectivity=False,
            gateway_count=self.routing_gateways,
            mobile_fraction=0.5,
        )


PAPER = Scale(
    name="paper",
    runs=40,
    mapping_nodes=300,
    mapping_target_edges=2164,
    mapping_max_steps=60_000,
    populations=(1, 2, 5, 10, 15, 25, 40),
    team_population=15,
    routing_nodes=250,
    routing_gateways=12,
    routing_population=100,
    routing_steps=300,
    routing_converged_after=150,
    routing_populations=(10, 25, 50, 100, 200),
    history_sizes=(2, 5, 10, 20, 50),
    default_history=10,
    visiting_history_sizes=(10, 25, 60),
)

QUICK = Scale(
    name="quick",
    runs=3,
    mapping_nodes=40,
    mapping_target_edges=None,
    mapping_max_steps=6_000,
    populations=(1, 4, 10),
    team_population=6,
    routing_nodes=60,
    routing_gateways=4,
    routing_population=20,
    routing_steps=80,
    routing_converged_after=40,
    routing_populations=(5, 15, 30),
    history_sizes=(2, 8, 20),
    default_history=8,
    visiting_history_sizes=(8, 20),
)
