"""Command-line interface.

Usage::

    repro list                         # show every registered experiment
    repro list --json                  # machine-readable discovery
    repro run fig1                     # run at quick scale (seconds)
    repro run fig7 --paper-scale       # paper-scale parameters, 40 runs
    repro run all --paper-scale        # regenerate everything
    repro run fig3 --seed 7 --no-plot  # reseed / table-only output
    repro run fig7 --json-dir results/json --svg-dir results/svg
    repro report results/json          # re-render archived reports

Service layer (sweep specs through the async job queue)::

    repro submit examples/specs/quick_smoke.json   # enqueue a sweep spec
    repro jobs --json                  # inspect the queue
    repro serve --workers 2            # drain the queue (resumable)
    repro cancel j0001-94e0f1ee        # cancel queued now / running soon
    repro export j0001-94e0f1ee --out bundle.tar.gz
    repro calibrate spec.json --out baselines/pack.json

``python -m repro …`` is equivalent.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.errors import ReproError
from repro.experiments import PAPER, QUICK, get_experiment, list_experiments
from repro.experiments.config import DEFAULT_MASTER_SEED

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Mobile Software Agents for Wireless Network "
            "Mapping and Dynamic Routing'"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    listing = commands.add_parser("list", help="list registered experiments")
    listing.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable metadata (id, title, scenario, tiers)",
    )

    run = commands.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id (fig1..fig11, ext1, abl1..) or 'all'")
    run.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's node counts and 40 runs (minutes, not seconds)",
    )
    run.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_MASTER_SEED,
        help=f"master seed (default {DEFAULT_MASTER_SEED})",
    )
    run.add_argument("--no-plot", action="store_true", help="omit ASCII charts")
    run.add_argument("--quiet", action="store_true", help="suppress progress lines")
    run.add_argument(
        "--json-dir",
        metavar="DIR",
        help="also write each report as DIR/<id>.json (re-renderable later)",
    )
    run.add_argument(
        "--svg-dir",
        metavar="DIR",
        help="also write each figure's curves as DIR/<id>.svg",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan (variant, run) pairs over N processes (results identical)",
    )
    run.add_argument(
        "--runs",
        type=int,
        default=None,
        metavar="N",
        help="override the number of seeded repetitions at this scale",
    )
    run.add_argument(
        "--faults",
        metavar="PLAN",
        help=(
            "inject a fault plan into every variant, e.g. "
            "'crash@20:3;recover@40:3;policy=respawn' (see repro.faults.plan)"
        ),
    )
    run.add_argument(
        "--loss",
        metavar="SPEC",
        help=(
            "run every variant over a lossy channel: a bare probability "
            "('0.2') or 'fixed=0.1,distance=0.3,battery=0.2,retries=4,"
            "backoff=2' (see repro.net.channel)"
        ),
    )
    run.add_argument(
        "--traffic",
        metavar="SPEC",
        help=(
            "attach a payload workload to every variant: a bare arrival "
            "rate ('0.5') or 'rate=0.5,router=epidemic,cap=16,ttl=60,"
            "policy=drop-oldest' (see repro.traffic.plane.parse_traffic_spec)"
        ),
    )
    run.add_argument(
        "--queue-cap",
        type=int,
        default=None,
        metavar="N",
        help="per-node payload queue capacity (implies --traffic defaults)",
    )
    run.add_argument(
        "--payload-ttl",
        type=int,
        default=None,
        metavar="STEPS",
        help="steps before an undelivered payload expires (implies --traffic)",
    )
    run.add_argument(
        "--router",
        choices=("store-and-forward", "epidemic", "spray-and-wait"),
        default=None,
        help="data-plane router for the payload workload (implies --traffic)",
    )
    run.add_argument(
        "--adversary",
        metavar="SPEC",
        help=(
            "inject a seeded adversary into every variant: a bare gray-node "
            "fraction ('0.2') or 'gray=0.2,rate=0.9,corrupt=2,flap=1,"
            "start=10' (see repro.faults.plan.parse_adversary_spec)"
        ),
    )
    run.add_argument(
        "--quarantine",
        action="store_true",
        help=(
            "enable the defense plane in every variant: suspicion/quarantine "
            "health monitoring plus routing-table write guards"
        ),
    )
    run.add_argument(
        "--hop-retries",
        type=int,
        default=None,
        metavar="N",
        help="retries before a failed agent hop is abandoned (with --loss)",
    )
    run.add_argument(
        "--route-ttl",
        type=int,
        default=None,
        metavar="STEPS",
        help="override the routing-table entry TTL in every routing variant",
    )
    run.add_argument(
        "--check-invariants",
        action="store_true",
        help="validate cross-layer invariants after every step (fail fast)",
    )
    run.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "step every routing variant as N spatial arena tiles "
            "(bit-identical results; scales to 10k+ nodes — see repro.shard)"
        ),
    )
    run.add_argument(
        "--tile-size",
        type=float,
        default=None,
        metavar="LENGTH",
        help="explicit tile edge length for --shards (shard count follows)",
    )
    run.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help=(
            "journal completed (variant, run) results under DIR; re-running "
            "the same command resumes an interrupted sweep"
        ),
    )
    run.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-task deadline for pooled runs; overdue tasks are retried "
            "(also detects crashed workers)"
        ),
    )
    run.add_argument(
        "--task-retries",
        type=int,
        default=None,
        metavar="N",
        help="how many times a failed or overdue task is retried (default 1)",
    )
    run.add_argument(
        "--metrics-out",
        metavar="FILE",
        help=(
            "write merged run counters (overhead, faults, channel, meetings) "
            "plus the run manifest as one JSON file"
        ),
    )
    run.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write schema-versioned simulation events as JSONL (one per line)",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="time engine phases and hooks per step; print percentile tables",
    )

    report = commands.add_parser(
        "report", help="re-render archived JSON reports without re-running"
    )
    report.add_argument(
        "path", help="a report JSON file or a directory of them (from --json-dir)"
    )
    report.add_argument("--no-plot", action="store_true", help="omit ASCII charts")

    def service_dir_arg(sub) -> None:
        sub.add_argument(
            "--service-dir",
            metavar="DIR",
            default=".repro-service",
            help="service state directory (default .repro-service)",
        )

    submit = commands.add_parser(
        "submit", help="enqueue a sweep spec file (JSON or YAML) as a job"
    )
    submit.add_argument("spec", help="path to the sweep spec")
    service_dir_arg(submit)
    submit.add_argument(
        "--priority",
        type=int,
        default=None,
        metavar="N",
        help="override the spec's priority (higher runs first)",
    )

    jobs = commands.add_parser("jobs", help="show every job in the queue")
    service_dir_arg(jobs)
    jobs.add_argument(
        "--json", action="store_true", help="emit machine-readable job records"
    )

    serve = commands.add_parser(
        "serve", help="drain the job queue with a bounded worker pool"
    )
    service_dir_arg(serve)
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="how many jobs run concurrently (default 1)",
    )
    serve.add_argument(
        "--forever",
        action="store_true",
        help="keep polling for new submissions after the queue drains",
    )
    serve.add_argument("--quiet", action="store_true", help="suppress progress lines")

    cancel = commands.add_parser(
        "cancel", help="cancel a queued job now, or flag a running one to stop"
    )
    cancel.add_argument("job_id", help="job id from 'repro submit' / 'repro jobs'")
    service_dir_arg(cancel)

    requeue = commands.add_parser(
        "requeue", help="put a failed or cancelled job back in the queue"
    )
    requeue.add_argument("job_id", help="job id from 'repro jobs'")
    service_dir_arg(requeue)

    export = commands.add_parser(
        "export", help="package a finished job into a reproducible bundle"
    )
    export.add_argument("job_id", help="job id of a completed job")
    service_dir_arg(export)
    export.add_argument(
        "--out",
        required=True,
        metavar="PATH",
        help="bundle destination (directory, or .tar.gz/.tgz for a tarball)",
    )

    calibrate = commands.add_parser(
        "calibrate",
        help="run a spec directly and write its baseline pack (expected metrics)",
    )
    calibrate.add_argument("spec", help="path to the sweep spec")
    calibrate.add_argument(
        "--out", required=True, metavar="PACK", help="baseline pack JSON to write"
    )
    calibrate.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="T",
        help="relative drift tolerance recorded in the pack (default 0.05)",
    )
    calibrate.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )
    return parser


def _progress_printer(quiet: bool):
    if quiet:
        return None

    def progress(scenario: str, done: int, total: int) -> None:
        print(f"  [{scenario}] run {done}/{total}", file=sys.stderr, flush=True)

    return progress


def _command_list(args: argparse.Namespace) -> int:
    if getattr(args, "json", False):
        import json

        from repro.experiments.registry import experiments_metadata

        print(json.dumps(experiments_metadata(), indent=2, sort_keys=True))
        return 0
    for experiment in list_experiments():
        print(f"{experiment.experiment_id:6s}  [{experiment.scenario}]  {experiment.title}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.experiments import runner

    scale = PAPER if args.paper_scale else QUICK
    if args.runs is not None:
        if args.runs < 1:
            raise ReproError(f"--runs must be >= 1, got {args.runs}")
        scale = dataclasses.replace(scale, runs=args.runs)
    if args.experiment == "all":
        ids = [e.experiment_id for e in list_experiments()]
    else:
        ids = [args.experiment]
    if getattr(args, "workers", 1) > 1:
        runner.set_default_workers(args.workers)
    if args.faults:
        from repro.faults.plan import parse_fault_plan

        runner.set_default_fault_plan(parse_fault_plan(args.faults))
    if args.loss or args.hop_retries is not None:
        from repro.net.channel import ChannelConfig, parse_channel_spec

        channel = parse_channel_spec(args.loss) if args.loss else ChannelConfig()
        if args.hop_retries is not None:
            channel = dataclasses.replace(channel, hop_retries=args.hop_retries)
        runner.set_default_channel(channel)
    if (
        args.traffic
        or args.queue_cap is not None
        or args.payload_ttl is not None
        or args.router is not None
    ):
        from repro.traffic.plane import TrafficConfig, parse_traffic_spec

        traffic = parse_traffic_spec(args.traffic) if args.traffic else TrafficConfig()
        overrides = {}
        if args.queue_cap is not None:
            overrides["queue_capacity"] = args.queue_cap
        if args.payload_ttl is not None:
            overrides["payload_ttl"] = args.payload_ttl
        if args.router is not None:
            overrides["router"] = args.router
        if overrides:
            traffic = dataclasses.replace(traffic, **overrides)
        runner.set_default_traffic(traffic)
    if args.adversary:
        from repro.faults.plan import parse_adversary_spec

        runner.set_default_adversary(parse_adversary_spec(args.adversary))
    if args.quarantine:
        from repro.net.health import HealthConfig
        from repro.routing.table import TableGuard

        runner.set_default_health(HealthConfig())
        runner.set_default_table_guard(TableGuard())
    if args.route_ttl is not None:
        runner.set_default_route_ttl(args.route_ttl)
    if args.shards is not None or args.tile_size is not None:
        runner.set_default_shards(
            args.shards if args.shards is not None else 1, args.tile_size
        )
    if args.check_invariants:
        runner.set_default_check_invariants(True)
    if args.checkpoint_dir:
        runner.set_default_checkpoint_dir(args.checkpoint_dir)
    if args.task_timeout is not None or args.task_retries is not None:
        runner.set_task_limits(args.task_timeout, args.task_retries)

    accumulator = None
    obs_wanted = bool(args.metrics_out or args.trace_out or args.profile)
    if obs_wanted:
        from repro.obs import ObsAccumulator, ObsConfig

        obs_config = ObsConfig(
            metrics=bool(args.metrics_out),
            events=bool(args.trace_out),
            profile=bool(args.profile),
        )
        accumulator = ObsAccumulator()
        runner.set_default_obs(obs_config, accumulator)

    progress = _progress_printer(args.quiet)
    try:
        for experiment_id in ids:
            experiment = get_experiment(experiment_id)
            if accumulator is not None:
                accumulator.start_experiment(experiment_id)
            started = time.perf_counter()
            report = experiment.run(scale, master_seed=args.seed, progress=progress)
            elapsed = time.perf_counter() - started
            print(report.render(plots=not args.no_plot))
            print(f"(scale={scale.name}, seed={args.seed}, wall time {elapsed:.1f}s)")
            if args.json_dir:
                from repro.experiments.persistence import save_report

                print(f"wrote {save_report(report, args.json_dir)}")
            if args.svg_dir:
                from repro.experiments.persistence import save_svg

                svg_path = save_svg(report, args.svg_dir)
                if svg_path is not None:
                    print(f"wrote {svg_path}")
            if args.profile and accumulator is not None:
                print(accumulator.profile_text(experiment_id))
            print()
    finally:
        if obs_wanted:
            runner.set_default_obs(None, None)

    if accumulator is not None:
        from repro.obs import build_manifest

        manifest = build_manifest(
            master_seed=args.seed,
            scale=scale.name,
            experiments=ids,
            options={
                "runs": scale.runs,
                "workers": getattr(args, "workers", 1),
                "faults": args.faults,
                "loss": args.loss,
                "hop_retries": args.hop_retries,
                "route_ttl": args.route_ttl,
                "traffic": args.traffic,
                "queue_cap": args.queue_cap,
                "payload_ttl": args.payload_ttl,
                "router": args.router,
                "adversary": args.adversary,
                "quarantine": args.quarantine,
                "check_invariants": args.check_invariants,
                "shards": args.shards,
                "tile_size": args.tile_size,
            },
        )
        if args.metrics_out:
            path = accumulator.write_metrics(
                args.metrics_out, manifest, include_profile=args.profile
            )
            print(f"wrote {path}")
        if args.trace_out:
            path = accumulator.write_trace(args.trace_out, manifest)
            print(f"wrote {path}")
    return 0


def _command_report(args: argparse.Namespace) -> int:
    from repro.experiments.persistence import load_report, report_paths

    paths = report_paths(args.path)
    if not paths:
        print(f"error: no reports found under {args.path}", file=sys.stderr)
        return 1
    for path in paths:
        print(load_report(path).render(plots=not args.no_plot))
        print()
    return 0


def _command_submit(args: argparse.Namespace) -> int:
    from repro.service import JobQueue, load_spec

    spec = load_spec(args.spec)
    job = JobQueue(args.service_dir).submit(spec, args.priority)
    print(
        f"queued {spec.name!r} as {job.job_id} "
        f"(fingerprint {job.fingerprint}, priority {job.priority}, "
        f"{len(spec.expand())} unit(s))",
        file=sys.stderr,
    )
    print(job.job_id)
    return 0


def _command_jobs(args: argparse.Namespace) -> int:
    from repro.service import JobQueue

    queue = JobQueue(args.service_dir)
    jobs = queue.jobs()
    if args.json:
        import json

        print(json.dumps([job.to_dict() for job in jobs], indent=2, sort_keys=True))
        return 0
    if not jobs:
        print("no jobs submitted yet")
        return 0
    header = f"{'job id':18s}  {'state':10s}  {'prio':>4s}  {'name':24s}  error"
    print(header)
    print("-" * len(header))
    for job in jobs:
        flag = " (cancel requested)" if job.cancel_requested else ""
        error = (job.error or "")[:60]
        print(
            f"{job.job_id:18s}  {job.state + flag:10s}  {job.priority:4d}  "
            f"{job.spec.get('name', ''):24s}  {error}"
        )
    return 0


def _service_progress(quiet: bool):
    if quiet:
        return None

    def progress(label: str, scenario: str, done: int, total: int) -> None:
        print(f"  [{label}/{scenario}] run {done}/{total}", file=sys.stderr, flush=True)

    return progress


def _command_serve(args: argparse.Namespace) -> int:
    from repro.service import ExperimentService

    service = ExperimentService(
        args.service_dir,
        workers=args.workers,
        progress=_service_progress(args.quiet),
    )
    try:
        counts = service.serve(forever=args.forever)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("interrupted; running jobs were journalled and will resume",
              file=sys.stderr)
        return 130
    summary = ", ".join(f"{state}={n}" for state, n in counts.items() if n)
    print(f"queue drained: {summary or 'empty'}")
    failed = [job for job in service.queue.jobs() if job.state == "failed"]
    for job in failed:
        print(f"  {job.job_id} failed: {job.error}", file=sys.stderr)
        for violation in job.drift:
            print(f"    drift: {violation}", file=sys.stderr)
    return 1 if failed else 0


def _command_cancel(args: argparse.Namespace) -> int:
    from repro.service import JobQueue

    job = JobQueue(args.service_dir).request_cancel(args.job_id)
    if job.state == "cancelled":
        print(f"{job.job_id} cancelled")
    else:
        print(f"{job.job_id} is running; flagged to stop at the next task boundary")
    return 0


def _command_requeue(args: argparse.Namespace) -> int:
    from repro.service import JobQueue

    job = JobQueue(args.service_dir).requeue(args.job_id)
    print(f"{job.job_id} requeued (will resume from its checkpoints)")
    return 0


def _command_export(args: argparse.Namespace) -> int:
    import pathlib

    from repro.service import JobQueue, export_bundle

    queue = JobQueue(args.service_dir)
    job = queue.get(args.job_id)
    if job.state != "done":
        print(
            f"warning: job {job.job_id} is {job.state}; bundling what exists",
            file=sys.stderr,
        )
    job_dir = pathlib.Path(args.service_dir) / "jobs" / args.job_id
    path = export_bundle(job_dir, args.out)
    print(f"wrote {path}")
    return 0


def _command_calibrate(args: argparse.Namespace) -> int:
    import dataclasses
    import tempfile

    from repro.service import build_pack, execute_spec, load_spec, save_pack
    from repro.service.baseline_pack import DEFAULT_TOLERANCE

    spec = load_spec(args.spec)
    tolerance = DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
    with tempfile.TemporaryDirectory(prefix="repro-calibrate-") as scratch:
        # Calibration *produces* the pack the spec may reference, so the
        # drift check is skipped for this run.
        reports, _ = execute_spec(
            dataclasses.replace(spec, baseline_pack=None),
            scratch,
            progress=_service_progress(args.quiet),
        )
    pack = build_pack(spec.name, spec.fingerprint(), reports, tolerance)
    path = save_pack(pack, args.out)
    print(f"wrote {path} ({len(reports)} unit(s), tolerance {tolerance:g})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "list": _command_list,
        "run": _command_run,
        "report": _command_report,
        "submit": _command_submit,
        "jobs": _command_jobs,
        "serve": _command_serve,
        "cancel": _command_cancel,
        "requeue": _command_requeue,
        "export": _command_export,
        "calibrate": _command_calibrate,
    }
    try:
        handler = handlers.get(args.command)
        if handler is not None:
            return handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # e.g. `repro list --json | head`
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover - parser.error raises


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
