"""Reproduction of *Mobile Software Agents for Wireless Network Mapping
and Dynamic Routing* (Khazaei, Mišić & Mišić).

The library simulates mobile software agents that hop between the nodes
of a wireless ad hoc network to (a) cooperatively map its topology and
(b) keep per-node routing tables pointing at gateways as the network
moves.  The paper's contribution — repulsive *stigmergic footprints* that
stop agents from chasing one another — is available on every agent type.

Quickstart::

    from repro import (
        MappingWorld, MappingWorldConfig, generate_mapping_network,
    )

    topology = generate_mapping_network(seed=1)
    config = MappingWorldConfig(agent_kind="conscientious", population=15,
                                stigmergic=True)
    result = MappingWorld(topology, config, seed=1).run()
    print(result.finishing_time)

See :mod:`repro.experiments` for the per-figure reproduction harness and
the ``repro`` CLI for running it.
"""

from repro.core.mapping_agents import (
    ConscientiousAgent,
    MappingAgent,
    RandomAgent,
    SuperConscientiousAgent,
)
from repro.core.routing_agents import OldestNodeAgent, RandomRoutingAgent, RoutingAgent
from repro.core.stigmergy import FootprintBoard, StigmergyField
from repro.errors import ReproError
from repro.mapping.world import MappingResult, MappingWorld, MappingWorldConfig, run_mapping
from repro.net.generator import (
    GeneratorConfig,
    generate_manet_network,
    generate_mapping_network,
)
from repro.net.topology import Topology
from repro.routing.connectivity import connectivity_fraction
from repro.routing.packets import PacketSimulator
from repro.routing.table import RouteEntry, RoutingTable, TableBank
from repro.routing.world import RoutingResult, RoutingWorld, RoutingWorldConfig, run_routing

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # network substrate
    "Topology",
    "GeneratorConfig",
    "generate_mapping_network",
    "generate_manet_network",
    # agents
    "MappingAgent",
    "RandomAgent",
    "ConscientiousAgent",
    "SuperConscientiousAgent",
    "RoutingAgent",
    "RandomRoutingAgent",
    "OldestNodeAgent",
    "StigmergyField",
    "FootprintBoard",
    # mapping scenario
    "MappingWorld",
    "MappingWorldConfig",
    "MappingResult",
    "run_mapping",
    # routing scenario
    "RoutingWorld",
    "RoutingWorldConfig",
    "RoutingResult",
    "run_routing",
    "RoutingTable",
    "RouteEntry",
    "TableBank",
    "connectivity_fraction",
    "PacketSimulator",
]
