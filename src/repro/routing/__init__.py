"""The dynamic-routing scenario (paper §III)."""

from repro.routing.connectivity import connectivity_fraction, walk_to_gateway
from repro.routing.packets import DeliveryStats, PacketSimulator
from repro.routing.table import RouteEntry, RoutingTable, TableBank, TableGuard
from repro.routing.world import RoutingResult, RoutingWorld, RoutingWorldConfig

__all__ = [
    "RouteEntry",
    "RoutingTable",
    "TableBank",
    "TableGuard",
    "connectivity_fraction",
    "walk_to_gateway",
    "RoutingWorld",
    "RoutingWorldConfig",
    "RoutingResult",
    "PacketSimulator",
    "DeliveryStats",
]
