"""Packet-level delivery over agent-built routing tables.

The paper motivates routing with "an average packet will use a multi-hop
path to reach one of those gateways" — the tables exist so *data* can
flow.  This module forwards synthetic packets hop by hop over the
current topology using the tables the agents wrote, yielding delivery
rate and path-stretch statistics.  It is the substrate for the
``examples/packet_delivery.py`` application and for sanity checks that
the connectivity metric predicts real deliverability.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.net.graphutils import bfs_hops
from repro.net.topology import Topology
from repro.rng import derive_seed
from repro.routing.connectivity import DEFAULT_WALK_TTL
from repro.routing.table import TableBank
from repro.types import NodeId

__all__ = ["PacketOutcome", "DeliveryStats", "PacketSimulator"]


@dataclass(frozen=True)
class PacketOutcome:
    """The fate of one packet."""

    source: NodeId
    delivered: bool
    hops: int
    gateway: Optional[NodeId] = None


@dataclass
class DeliveryStats:
    """Aggregate outcomes of a batch of packets."""

    outcomes: List[PacketOutcome] = field(default_factory=list)

    @property
    def sent(self) -> int:
        """Number of packets attempted."""
        return len(self.outcomes)

    @property
    def delivered(self) -> int:
        """Number that reached a gateway."""
        return sum(1 for outcome in self.outcomes if outcome.delivered)

    @property
    def delivery_rate(self) -> float:
        """Delivered fraction (0 when nothing was sent)."""
        return self.delivered / self.sent if self.sent else 0.0

    @property
    def mean_hops(self) -> float:
        """Mean hop count over *delivered* packets."""
        delivered = [o.hops for o in self.outcomes if o.delivered]
        return sum(delivered) / len(delivered) if delivered else 0.0


class PacketSimulator:
    """Forwards packets along routing-table next hops."""

    def __init__(
        self,
        topology: Topology,
        tables: TableBank,
        walk_ttl: int = DEFAULT_WALK_TTL,
    ) -> None:
        self.topology = topology
        self.tables = tables
        self.walk_ttl = walk_ttl

    def send(self, source: NodeId) -> PacketOutcome:
        """Forward one packet from ``source`` toward any gateway."""
        current = source
        visited = {source}
        for hop in range(self.walk_ttl + 1):
            node = self.topology.node(current)
            if node.is_gateway:
                return PacketOutcome(source, True, hop, gateway=current)
            next_hop = self._next_hop(current, visited)
            if next_hop is None:
                return PacketOutcome(source, False, hop)
            visited.add(next_hop)
            current = next_hop
        return PacketOutcome(source, False, self.walk_ttl)

    def _next_hop(self, current: NodeId, visited: set) -> Optional[NodeId]:
        neighbors = self.topology.out_neighbors(current)
        for entry in self.tables.table(current).entries_by_preference():
            if entry.next_hop in neighbors and entry.next_hop not in visited:
                return entry.next_hop
        return None

    def send_batch(self, count: int, rng: Union[int, random.Random]) -> DeliveryStats:
        """Send ``count`` packets from uniformly random non-gateway sources.

        ``rng`` is either an explicit :class:`random.Random` or an int
        seed, which is expanded through :func:`repro.rng.derive_seed`
        into a dedicated stream — so the same seed always produces the
        same source sequence regardless of what else has drawn from any
        shared generator.
        """
        if isinstance(rng, int):
            rng = random.Random(derive_seed(rng, "packets:batch"))
        sources = sorted(
            node_id
            for node_id in self.topology.node_ids
            if not self.topology.node(node_id).is_gateway
        )
        stats = DeliveryStats()
        for __ in range(count):
            stats.outcomes.append(self.send(rng.choice(sources)))
        return stats

    def path_stretch(self, outcome: PacketOutcome) -> Optional[float]:
        """Delivered path length relative to the current shortest path.

        ``None`` when the packet failed or no path exists right now.
        """
        if not outcome.delivered or outcome.gateway is None:
            return None
        hops = bfs_hops(self.topology.adjacency_copy(), outcome.source)
        shortest = min(
            (hops[g] for g in self.topology.gateway_ids if g in hops),
            default=None,
        )
        if not shortest:
            return None
        return outcome.hops / shortest
