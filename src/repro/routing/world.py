"""The dynamic-routing world: MANET + agents + tables + metric.

Each simulated step, in order:

* the substrate advances — batteries drain, mobile nodes move, the link
  topology is recomputed, stale routing-table entries expire;
* every agent runs the paper's four phases (§III-C): (1) it looks at the
  current neighbours and decides where to go, (2) co-located *visiting*
  agents exchange best routes and histories, (3) it moves, learning the
  edge it travels, (4) it updates the routing table of the node it now
  occupies using its gateway tracks;
* the connectivity fraction is measured and recorded.

Decisions (phase 1) are all taken before any exchange or movement, so
within a step no agent sees another's same-step action — matching the
paper's simultaneous time-step semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.core.ant_agents import AntRoutingAgent
from repro.core.batch import BatchAgentEngine, batch_agents_supported
from repro.core.comms import exchange_routing_knowledge
from repro.core.migration import ABANDONED, DELIVERED, ReliableMigration
from repro.core.overhead import aggregate_overheads
from repro.core.routing_agents import RoutingAgent, make_routing_agent
from repro.core.stigmergy import StigmergyField
from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.metrics import ResilienceReport, ResilienceTracker
from repro.faults.plan import FaultPlan
from repro.net.channel import ChannelConfig, ChannelModel
from repro.net.health import HealthConfig, HealthMonitor, HealthReport
from repro.net.topology import Topology
from repro.obs.collector import ObsCollector, ObsConfig, ObsReport
from repro.routing.connectivity import (
    DEFAULT_WALK_TTL,
    FunctionalConnectivity,
    connectivity_fraction,
)
from repro.core.pheromone import PheromoneField
from repro.routing.table import RouteEntry, TableBank, TableGuard
from repro.rng import SeedSpawner
from repro.sim.engine import TimeStepEngine
from repro.sim.invariants import InvariantChecker, default_invariants_enabled
from repro.traffic.plane import TrafficConfig, TrafficPlane, TrafficReport
from repro.types import NodeId, Time

__all__ = ["RoutingWorldConfig", "RoutingResult", "RoutingWorld", "run_routing"]

#: How far ahead of the clock a corrupted agent stamps its forged
#: sequence numbers — "stale-but-renumbered" knowledge that, undefended,
#: raises the per-gateway floors and blocks honest refreshes for this
#: many steps.  The table guard's future-sequence check rejects it.
_FORGED_SEQUENCE_AHEAD = 50


@dataclass(frozen=True)
class RoutingWorldConfig:
    """Agent-team and protocol parameters for one routing run."""

    agent_kind: str = "oldest-node"
    population: int = 100
    history_size: int = 10
    visiting: bool = False
    stigmergic: bool = False
    footprint_capacity: int = 16
    footprint_freshness: Optional[int] = 8
    route_ttl: Optional[int] = 150
    walk_ttl: int = DEFAULT_WALK_TTL
    total_steps: int = 300
    converged_after: Time = 150
    # --- ant (pheromone) agents only ---------------------------------
    pheromone_evaporation: float = 0.05
    ant_follow_probability: float = 0.85
    # --- fault injection ----------------------------------------------
    fault_plan: Optional[FaultPlan] = None
    # --- lossy channel -------------------------------------------------
    #: ``None`` means a lossless channel (identical to ``ChannelConfig()``).
    channel: Optional[ChannelConfig] = None
    # --- adversarial resilience -----------------------------------------
    #: ``None`` (default) attaches no health monitor — next-hop choice
    #: and custody transfer never consult quarantine state; a
    #: :class:`~repro.net.health.HealthConfig` switches the defense on.
    health: Optional[HealthConfig] = None
    #: ``None`` (default) leaves table writes unguarded; a
    #: :class:`~repro.routing.table.TableGuard` bounds how much one
    #: agent visit can move an entry (sequence + hop-delta sanity).
    table_guard: Optional[TableGuard] = None
    # --- runtime invariant checking -------------------------------------
    #: ``None`` defers to the ``REPRO_CHECK_INVARIANTS`` environment
    #: variable (tests switch it on); ``True``/``False`` force it.
    check_invariants: Optional[bool] = None
    # --- connectivity metric ---------------------------------------------
    #: serve the per-step metric from the delta-aware
    #: :class:`~repro.routing.connectivity.FunctionalConnectivity`
    #: evaluator (identical result, re-walks only what changed);
    #: ``False`` re-walks every node every step, the reference path.
    connectivity_cache: bool = True
    # --- observability ---------------------------------------------------
    #: ``None`` (default) records nothing — the zero-overhead path;
    #: an :class:`~repro.obs.collector.ObsConfig` switches layers on.
    obs: Optional[ObsConfig] = None
    # --- data plane ------------------------------------------------------
    #: ``None`` (default) moves no payloads — bit-identical to a run
    #: without the traffic subsystem; a
    #: :class:`~repro.traffic.plane.TrafficConfig` builds the plane.
    traffic: Optional[TrafficConfig] = None
    # --- batch agent engine ----------------------------------------------
    #: drive the agent phases through the vectorized SoA engine
    #: (:class:`~repro.core.batch.BatchAgentEngine`, bit-identical to
    #: the per-object path).  ``None`` auto-enables it when the agent
    #: kind is supported and numpy is importable; ``False`` forces the
    #: per-object oracle; ``True`` demands the engine (and raises if the
    #: kind or environment cannot support it).
    batch_agents: Optional[bool] = None
    # --- sharded arena ---------------------------------------------------
    #: partition the arena into this many spatial tiles and step them as
    #: independent workers exchanging only boundary state (see
    #: :mod:`repro.shard`).  ``None`` (default) runs the serial world;
    #: the sharded world is bit-identical at any shard count.
    shards: Optional[int] = None
    #: explicit tile edge length; overrides the tile shape derived from
    #: ``shards`` (the shard count then follows from the arena size).
    tile_size: Optional[float] = None

    def __post_init__(self) -> None:
        if self.population < 1:
            raise ConfigurationError(f"population must be >= 1, got {self.population}")
        if self.history_size < 1:
            raise ConfigurationError(
                f"history_size must be >= 1, got {self.history_size}"
            )
        if self.total_steps < 1:
            raise ConfigurationError(f"total_steps must be >= 1, got {self.total_steps}")
        if not 0 <= self.converged_after <= self.total_steps:
            raise ConfigurationError(
                "converged_after must lie within the run "
                f"(0..{self.total_steps}), got {self.converged_after}"
            )
        if self.shards is not None and self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {self.shards}")
        if self.tile_size is not None and self.tile_size <= 0:
            raise ConfigurationError(
                f"tile_size must be > 0, got {self.tile_size}"
            )


@dataclass
class RoutingResult:
    """Outcome of one routing run."""

    times: List[Time] = field(default_factory=list)
    connectivity: List[float] = field(default_factory=list)
    converged_after: Time = 150
    meetings: int = 0
    overhead: Dict[str, float] = field(default_factory=dict)
    #: raw table-guard rejection count (``overhead`` is per-decision).
    guard_rejections: int = 0
    resilience: Optional[ResilienceReport] = None
    obs: Optional[ObsReport] = None
    traffic: Optional[TrafficReport] = None
    health: Optional[HealthReport] = None

    @property
    def mean_connectivity(self) -> float:
        """Paper's performance number: mean connectivity after convergence."""
        window = [
            value
            for time, value in zip(self.times, self.connectivity)
            if time >= self.converged_after
        ]
        if not window:
            return 0.0
        return sum(window) / len(window)

    @property
    def connectivity_stability(self) -> float:
        """Standard deviation of connectivity in the converged window.

        The paper reports qualitative "stability"; smaller is steadier.
        """
        window = [
            value
            for time, value in zip(self.times, self.connectivity)
            if time >= self.converged_after
        ]
        if len(window) < 2:
            return 0.0
        mean = sum(window) / len(window)
        variance = sum((value - mean) ** 2 for value in window) / (len(window) - 1)
        return variance**0.5


class RoutingWorld:
    """One seeded dynamic-routing simulation."""

    def __init__(self, topology: Topology, config: RoutingWorldConfig, seed: int) -> None:
        if not topology.gateway_ids:
            raise ConfigurationError("routing world needs at least one gateway")
        self.topology = topology
        self.config = config
        self._spawner = SeedSpawner(seed).child("routing")
        self.engine = TimeStepEngine()
        self.tables = TableBank(
            topology.node_count, ttl=config.route_ttl, guard=config.table_guard
        )
        self.field = StigmergyField(
            capacity=config.footprint_capacity,
            freshness=config.footprint_freshness,
        )
        self._gateways = set(topology.gateway_ids)
        self.channel = ChannelModel(
            topology,
            config.channel if config.channel is not None else ChannelConfig(),
            self._spawner.seed_for("channel"),
        )
        self._migration = ReliableMigration(self.channel)
        # Health monitoring is strictly opt-in: with health unset nothing
        # is built and the hot loop takes only `is None` branches.
        self.health: Optional[HealthMonitor] = None
        if config.health is not None:
            self.health = HealthMonitor(config.health, self.engine.hooks)
        self.agents: List[RoutingAgent] = self._spawn_agents()
        self.pheromone: Optional[PheromoneField] = None
        ants = [agent for agent in self.agents if isinstance(agent, AntRoutingAgent)]
        if ants:
            self.pheromone = PheromoneField(
                evaporation=config.pheromone_evaporation
            )
            for ant in ants:
                ant.pheromone = self.pheromone
        self.result = RoutingResult(converged_after=config.converged_after)
        self.injector: Optional[FaultInjector] = None
        self.resilience: Optional[ResilienceTracker] = None
        if config.fault_plan is not None:
            self.injector = FaultInjector(
                self, config.fault_plan, self._spawner.stream("faults")
            )
            self.injector.install()
            self.resilience = ResilienceTracker(
                self.engine.hooks, "connectivity_recorded", "fraction"
            )
        self.invariants: Optional[InvariantChecker] = None
        check = config.check_invariants
        if check or (check is None and default_invariants_enabled()):
            self.invariants = InvariantChecker(self)
            self.invariants.install()
        self._conn_cache: Optional[FunctionalConnectivity] = None
        if config.connectivity_cache:
            self._conn_cache = FunctionalConnectivity(
                topology, self.tables, config.walk_ttl
            )
        # Observability is strictly opt-in: with obs unset no collector
        # exists and the hot loop below takes only `is None` branches.
        self._obs: Optional[ObsCollector] = None
        self._profiler = None
        if config.obs is not None and config.obs.enabled:
            self._obs = ObsCollector(config.obs, self.engine, scenario="routing")
            self._profiler = self._obs.profiler
            self._obs_last_losses = 0
            # Churn/cache counters are cumulative at the source; push
            # per-step diffs against these snapshots.
            stats = topology.stats
            self._obs_last_topo = (
                stats.edges_added,
                stats.edges_removed,
                stats.rebucketed,
            )
            self._obs_last_cache = (0, 0, 0)
        # The batch engine loads its arrays from the freshly spawned
        # agents; building it last keeps the load a pure snapshot.
        self._batch: Optional[BatchAgentEngine] = None
        use_batch = config.batch_agents
        if use_batch is None:
            use_batch = batch_agents_supported(config.agent_kind)
        if use_batch:
            self._batch = BatchAgentEngine(self)
        self.engine.add_process(self._step)
        # The data plane runs as its own process *after* the world step,
        # so payloads move over the tables the agents just wrote.  With
        # traffic unset nothing is built — the zero-overhead path.
        self.traffic: Optional[TrafficPlane] = None
        if config.traffic is not None:
            self.traffic = TrafficPlane(
                topology,
                config.traffic,
                self._spawner.child("traffic"),
                channel=self.channel,
                tables=self.tables,
                obs=self._obs,
                health=self.health,
            )
            self.traffic.install(self.engine)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _spawn_agents(self) -> List[RoutingAgent]:
        placement_rng = self._spawner.stream("placement")
        node_ids = list(self.topology.node_ids)
        kind_specific = {}
        if self.config.agent_kind == "ant":
            kind_specific["follow_probability"] = self.config.ant_follow_probability
        agents = []
        for agent_id in range(self.config.population):
            start = placement_rng.choice(node_ids)
            agents.append(
                make_routing_agent(
                    self.config.agent_kind,
                    agent_id,
                    start,
                    self._spawner.stream(f"agent:{agent_id}"),
                    history_size=self.config.history_size,
                    visiting=self.config.visiting,
                    stigmergic=self.config.stigmergic,
                    **kind_specific,
                )
            )
            # Every agent remembers where it started (starting on a
            # gateway also seeds a zero-hop track immediately).  Without
            # the uniform seed, off-gateway starters treated their own
            # start node as never-visited while gateway starters did not.
            agents[-1].stay(0, here_is_gateway=start in self._gateways)
        return agents

    def set_batch_agents(self, enabled: bool) -> None:
        """Switch between the SoA batch engine and the per-object oracle.

        Mirrors ``Topology.set_vectorized``: both paths are bit-identical,
        so flipping mid-run changes performance, never results.  Turning
        the engine off flushes its arrays back into the agent objects;
        turning it on snapshots the objects into fresh arrays.
        """
        if enabled:
            if self._batch is None:
                self._batch = BatchAgentEngine(self)
        elif self._batch is not None:
            self._batch.flush()
            self._batch = None

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------

    def _active_agents(self) -> List[RoutingAgent]:
        """Agents acting this step (faults may kill or suspend some)."""
        if self.injector is None:
            return self.agents
        return self.injector.active_agents()

    def _step(self, now: Time) -> None:
        # Profiling laps partition the step into the paper's phases; with
        # no profiler (the default) each guard is a single None check.
        profiler = self._profiler
        if profiler is not None:
            step_started = phase_started = perf_counter()
        topology = self.topology
        config = self.config
        # Substrate: motion, battery, links, route expiry, evaporation.
        topology.advance()
        self.tables.expire_all(now)
        if self.pheromone is not None:
            self.pheromone.evaporate()
        if self.health is not None:
            self.health.advance(now)
        if profiler is not None:
            phase_started = profiler.lap("decay", phase_started)
        # Agent phases 1-4 (decide / meet / move / install), via the SoA
        # batch engine or the per-object oracle — bit-identical twins.
        stepper = (
            self._batch.step_agents
            if self._batch is not None
            else self._step_agents_objects
        )
        if profiler is None:
            step_installs, __ = stepper(now, None, 0.0)
        else:
            step_installs, phase_started = stepper(now, profiler, phase_started)
        if self._obs is not None:
            self._obs.routes_installed(now, step_installs)
            losses = self.channel.stats.losses
            self._obs.channel_losses(now, losses - self._obs_last_losses)
            self._obs_last_losses = losses
            if self.health is not None:
                self._obs.health_step(
                    now,
                    self.health.quarantined_count(),
                    self.health.max_suspicion(),
                )
        # Metric.
        if self._conn_cache is not None:
            fraction = len(self._conn_cache.connected()) / topology.node_count
        else:
            fraction = connectivity_fraction(topology, self.tables, config.walk_ttl)
        if self._obs is not None:
            stats = topology.stats
            last = self._obs_last_topo
            self._obs.topology_churn(
                now,
                added=stats.edges_added - last[0],
                removed=stats.edges_removed - last[1],
                rebucketed=stats.rebucketed - last[2],
            )
            self._obs_last_topo = (
                stats.edges_added,
                stats.edges_removed,
                stats.rebucketed,
            )
            if self._conn_cache is not None:
                cache_stats = self._conn_cache.stats
                last_cache = self._obs_last_cache
                self._obs.connectivity_cache(
                    now,
                    hits=cache_stats.hits - last_cache[0],
                    walks=cache_stats.walks - last_cache[1],
                    invalidated=cache_stats.invalidated - last_cache[2],
                )
                self._obs_last_cache = (
                    cache_stats.hits,
                    cache_stats.walks,
                    cache_stats.invalidated,
                )
        self.result.times.append(now)
        self.result.connectivity.append(fraction)
        self.engine.hooks.fire("connectivity_recorded", time=now, fraction=fraction)
        if profiler is not None:
            phase_started = profiler.lap("record", phase_started)
            profiler.add("step", phase_started - step_started)

    def _step_agents_objects(
        self, now: Time, profiler, phase_started: float
    ) -> Tuple[int, float]:
        """The per-object agent phases — the batch engine's oracle twin."""
        topology = self.topology
        config = self.config
        agents = self._active_agents()
        # Phase 1: every agent decides from the *new* neighbourhood — or,
        # mid-migration, retries/waits per the reliable-hop protocol.
        decisions: List[Optional[NodeId]] = []
        footprint_due: List[bool] = []
        adjacency = topology.adjacency_view()
        for agent in agents:
            neighbors = adjacency[agent.location]
            needs_decision, forced = self._migration.resolve_intent(
                agent, now, neighbors
            )
            if needs_decision:
                if self.health is not None:
                    neighbors = self.health.filter_targets(
                        agent.location, neighbors
                    )
                decisions.append(agent.decide(neighbors, now, field=self.field))
                footprint_due.append(True)
            else:
                # Forced retry keeps the original intent; waiting out a
                # backoff yields no target.  Neither re-stamps footprints.
                decisions.append(forced)
                footprint_due.append(False)
        if profiler is not None:
            phase_started = profiler.lap("decide", phase_started)
        # Phase 2: visiting agents exchange knowledge where co-located.
        if config.visiting:
            held = exchange_routing_knowledge(agents, channel=self.channel, now=now)
            self.result.meetings += held
            if self._obs is not None:
                self._obs.meetings(now, held)
        if profiler is not None:
            phase_started = profiler.lap("meet", phase_started)
        # Phases 3 & 4: move (if the channel delivers) and install routes.
        live_gateways = {
            g for g in self._gateways if not topology.is_down(g)
        }
        moves: List[Tuple[RoutingAgent, NodeId]] = []
        for agent, target, fresh in zip(agents, decisions, footprint_due):
            if target is None:
                agent.stay(now, here_is_gateway=agent.location in live_gateways)
            else:
                if fresh:
                    agent.leave_footprint(target, now, self.field)
                moves.append((agent, target))
        step_installs = 0
        for agent, target in moves:
            # Agent hops are control-plane traffic and deliberately feed
            # no evidence into the health monitor: a gray-failed node
            # relays agents perfectly well, and counting those successes
            # would launder its reputation back above the quarantine
            # threshold while it keeps swallowing payloads.  Data-plane
            # outcomes (payload + ack) observed by the traffic routers
            # are the only suspicion signal here.
            outcome = self._migration.attempt_hop(agent, target, now)
            if outcome != DELIVERED:
                agent.stay(now, here_is_gateway=agent.location in live_gateways)
                if outcome == ABANDONED:
                    self._suspect_link(agent, target, now)
                continue
            came_from = agent.move_to(target, now, target in live_gateways)
            if self._obs is not None:
                # The routing hot loop has no other agent_moved consumer,
                # so the fire stays behind the obs guard (zero-cost off).
                self.engine.hooks.fire(
                    "agent_moved", time=now, agent=agent.agent_id, to=target
                )
            table = self.tables.table(agent.location)
            corrupted = self.injector is not None and self.injector.is_corrupted(
                agent.agent_id
            )
            rejected_before = table.guard_rejections
            for gateway, next_hop, hops, seen_at in agent.installable_routes(came_from):
                agent.overhead.routes_installed += 1
                step_installs += 1
                if corrupted:
                    # Forged knowledge — a sinkhole: a one-hop route
                    # pointing back where the agent came from, with a
                    # sequence stamped ahead of the clock so undefended
                    # tables prefer it and floor out honest refreshes.
                    # Pairing it with the reverse link turns the poison
                    # into forwarding loops instead of a merely-wrong
                    # hop count.
                    hops = 1
                    seen_at = now + _FORGED_SEQUENCE_AHEAD
                    if came_from is not None:
                        next_hop = came_from
                table.install(
                    RouteEntry(
                        gateway=gateway,
                        next_hop=next_hop,
                        hops=hops,
                        installed_at=now,
                        gateway_seen_at=seen_at,
                        sequence=seen_at,
                    )
                )
            agent.overhead.routes_rejected += (
                table.guard_rejections - rejected_before
            )
        if profiler is not None:
            phase_started = profiler.lap("move", phase_started)
        return step_installs, phase_started

    def _suspect_link(self, agent: RoutingAgent, target: NodeId, now: Time) -> None:
        """Turn an abandoned hop into link-quality evidence.

        ``hop_retries`` consecutive losses toward one neighbour say the
        link is effectively dead even if the topology still lists it;
        routes at the agent's node that forward through that neighbour
        are dropped so the connectivity metric stops trusting them.
        """
        dropped = self.tables.table(agent.location).drop_routes_via_next_hop(target)
        agent.overhead.routes_invalidated += dropped
        self.engine.hooks.fire(
            "link_suspected",
            time=now,
            node=agent.location,
            neighbor=target,
            dropped=dropped,
        )

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run(self) -> RoutingResult:
        """Run the configured number of steps; return the result."""
        steps = self.engine.run(self.config.total_steps)
        if self._batch is not None:
            # Write the SoA arrays back so the aggregation below (and any
            # caller inspecting agents) sees the complete per-object state.
            self._batch.flush()
        team_overhead = aggregate_overheads(agent.overhead for agent in self.agents)
        self.result.overhead = team_overhead.per_decision()
        self.result.guard_rejections = self.tables.total_guard_rejections()
        agents_total = agents_alive = len(self.agents)
        if self.resilience is not None and self.injector is not None:
            agents_total, agents_alive = self.injector.resilience_counts()
            self.result.resilience = self.resilience.report(agents_total, agents_alive)
        if self.traffic is not None:
            self.result.traffic = self.traffic.report()
            if self._obs is not None:
                self._obs.traffic_totals(self.result.traffic)
        if self.health is not None:
            self.result.health = self.health.report()
        if self._obs is not None:
            self.result.obs = self._obs.finalize(
                overhead=team_overhead,
                channel_stats=self.channel.stats,
                agents_total=agents_total,
                agents_alive=agents_alive,
                steps=steps,
            )
        return self.result


def run_routing(topology: Topology, config: RoutingWorldConfig, seed: int) -> RoutingResult:
    """Convenience: build a world and run it."""
    return RoutingWorld(topology, config, seed).run()
