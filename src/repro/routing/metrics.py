"""Route-quality metrics beyond the paper's connectivity fraction.

Connectivity says *whether* a node can reach a gateway; these metrics
say *how well*:

* **route stretch** — the ratio of a node's walked route length to the
  current shortest path toward any gateway (1.0 = optimal);
* **table coverage** — the fraction of nodes holding at least one live
  route entry, valid or not (how far the agents' writes have spread);
* **gateway load** — how evenly the valid routes distribute over the
  gateways (normalised entropy; 1.0 = perfectly balanced).

The ``abl6`` experiment uses these to compare agent types on route
*quality*, which the paper's single metric cannot distinguish.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.net.graphutils import bfs_hops
from repro.net.topology import Topology
from repro.routing.connectivity import DEFAULT_WALK_TTL, walk_to_gateway
from repro.routing.table import TableBank
from repro.types import NodeId

__all__ = ["RouteQuality", "measure_route_quality"]


@dataclass(frozen=True)
class RouteQuality:
    """A snapshot of route quality across the network."""

    connectivity: float
    mean_stretch: Optional[float]
    table_coverage: float
    gateway_balance: Optional[float]
    connected_count: int
    measured_routes: int


def _gateway_distances(topology: Topology) -> Dict[NodeId, int]:
    """Shortest hop count from every node to its nearest gateway."""
    # BFS from each gateway over the reversed graph gives, per node, the
    # distance *to* that gateway; keep the minimum over gateways.
    adjacency = topology.adjacency_copy()
    reversed_adj: Dict[NodeId, set] = {n: set() for n in adjacency}
    for source, successors in adjacency.items():
        for destination in successors:
            reversed_adj[destination].add(source)
    nearest: Dict[NodeId, int] = {}
    for gateway in topology.gateway_ids:
        for node, hops in bfs_hops(reversed_adj, gateway).items():
            if node not in nearest or hops < nearest[node]:
                nearest[node] = hops
    return nearest


def measure_route_quality(
    topology: Topology,
    tables: TableBank,
    walk_ttl: int = DEFAULT_WALK_TTL,
) -> RouteQuality:
    """Measure stretch, coverage and balance over the current instant."""
    nearest = _gateway_distances(topology)
    gateways = set(topology.gateway_ids)
    stretches: List[float] = []
    gateway_hits: Dict[NodeId, int] = {g: 0 for g in gateways}
    connected = 0
    covered = 0
    for node in topology.node_ids:
        if len(tables.table(node)) > 0:
            covered += 1
        if node in gateways:
            connected += 1
            continue
        path = walk_to_gateway(node, topology, tables, walk_ttl)
        if path is None:
            continue
        connected += 1
        gateway_hits[path[-1]] = gateway_hits.get(path[-1], 0) + 1
        shortest = nearest.get(node)
        if shortest:
            stretches.append((len(path) - 1) / shortest)
    total_hits = sum(gateway_hits.values())
    balance: Optional[float] = None
    if total_hits > 0 and len(gateways) > 1:
        entropy = 0.0
        for hits in gateway_hits.values():
            if hits > 0:
                p = hits / total_hits
                entropy -= p * math.log(p)
        balance = entropy / math.log(len(gateways))
    return RouteQuality(
        connectivity=connected / topology.node_count,
        mean_stretch=(sum(stretches) / len(stretches)) if stretches else None,
        table_coverage=covered / topology.node_count,
        gateway_balance=balance,
        connected_count=connected,
        measured_routes=len(stretches),
    )
