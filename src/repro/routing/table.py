"""Per-node routing tables.

"Every node has a simple routing table which agents update frequently …
they put a route to one of the gateways that they have just visited in
the node's routing table" (§III-A).  A table keeps at most one entry per
gateway — the best seen so far, where *best* is freshest installation
time, then fewest hops.  Entries expire after ``ttl`` steps: in a MANET
a route installed long ago points along links that have likely moved
away, and expiry is what makes connectivity fluctuate rather than
saturate.

Staleness is controlled on two axes:

* **age** — TTL expiry drops entries whose local link pointer is old,
* **sequence** — each table keeps, per gateway, the highest sequence
  number it has ever accepted (the installing agent's gateway-sighting
  time).  An arriving entry with a *lower* sequence is rejected even if
  the slot is currently empty: a late, worse route delivered by a slow
  or retried carrier can never overwrite — or resurrect after expiry —
  information the node already had fresher.  The floors survive entry
  expiry (that is the point) and reset only when the node itself loses
  its table (crash / ``clear``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.errors import RoutingError
from repro.types import NodeId, Time

__all__ = ["RouteEntry", "TableGuard", "RoutingTable", "TableBank"]


@dataclass(frozen=True)
class TableGuard:
    """Write-sanity bounds limiting what one agent visit can install.

    A corrupted agent forges attractive knowledge two ways: hop counts
    far better than anything the node has seen (so its route wins the
    preference order), and sequence numbers stamped ahead of the clock
    (so honest refreshes are rejected by the floor for a long time).
    The guard bounds both:

    * ``max_hop_improvement`` — a new entry may undercut the incumbent
      toward the same gateway by at most this many hops; honest route
      discovery shortens paths gradually, forgery jumps.  The default
      is deliberately loose — mobility legitimately shortens a route by
      several hops when a gateway wanders close, and measurement shows
      tighter bounds mostly reject honest refreshes (the future-stamped
      sequence is what actually identifies every forged write).
    * ``max_sequence_ahead`` — an entry's sequence (the claimed
      gateway-sighting time) may exceed its installation time by at most
      this much; honest sightings are always in the past.

    Frozen and hashable so it rides inside the frozen world configs.
    """

    max_hop_improvement: int = 6
    max_sequence_ahead: int = 0

    def __post_init__(self) -> None:
        if self.max_hop_improvement < 1:
            raise RoutingError(
                f"max_hop_improvement must be >= 1, got {self.max_hop_improvement}"
            )
        if self.max_sequence_ahead < 0:
            raise RoutingError(
                f"max_sequence_ahead must be >= 0, got {self.max_sequence_ahead}"
            )


@dataclass(frozen=True)
class RouteEntry:
    """One route: toward ``gateway``, leave via ``next_hop``.

    ``gateway_seen_at`` is when the installing agent actually stood on
    the gateway — the currency of the information.  ``installed_at`` is
    when the entry was written — the age of the *local* link pointer,
    which is what TTL expiry keys on.  Ranking routes by installation
    time instead of gateway currency lets a long, circuitous, stale
    track displace a short fresh one merely because its carrier arrived
    later; that measurably inverts the paper's history-size effect.
    """

    gateway: NodeId
    next_hop: NodeId
    hops: int
    installed_at: Time
    gateway_seen_at: Time = 0
    #: monotonic staleness stamp, compared against the table's
    #: per-gateway floor on install (worlds stamp the gateway-sighting
    #: time).  The default 0 keeps sequence-unaware callers working.
    sequence: int = 0

    def fresher_than(self, other: "RouteEntry") -> bool:
        """Replacement order: newer gateway sighting, then fewer hops,
        then newer installation."""
        if self.gateway_seen_at != other.gateway_seen_at:
            return self.gateway_seen_at > other.gateway_seen_at
        if self.hops != other.hops:
            return self.hops < other.hops
        return self.installed_at > other.installed_at


class RoutingTable:
    """A node's routes, at most one (the best) per gateway."""

    def __init__(
        self, ttl: Optional[int] = None, guard: Optional[TableGuard] = None
    ) -> None:
        if ttl is not None and ttl < 1:
            raise RoutingError(f"ttl must be >= 1 or None, got {ttl}")
        self.ttl = ttl
        self.guard = guard
        #: writes the guard refused, monotonic over the table's life
        #: (never reset by :meth:`clear` — conservation against the
        #: worlds' overhead counters depends on it).
        self.guard_rejections = 0
        self._entries: Dict[NodeId, RouteEntry] = {}
        #: per-gateway high-water mark of accepted sequence numbers;
        #: survives TTL expiry so resurrection of stale routes is barred.
        self._sequence_floors: Dict[NodeId, int] = {}
        #: bumped on every observable content change (install, expiry,
        #: drops, clear, corruption) — lets caches notice at a glance
        #: that nothing here moved.
        self.version = 0
        #: bank-owned touched-id set (wired by TableBank): lets a
        #: single consumer ask "which tables changed since I looked?"
        #: without scanning every version counter.
        self._watch: Optional[Set[NodeId]] = None
        self._watch_id: NodeId = 0
        self._ranked: Optional[List[RouteEntry]] = None
        self._hops_ranked: Optional[tuple] = None
        #: lower bound on the oldest ``installed_at`` present; lets
        #: :meth:`expire` skip the scan when nothing can be stale yet.
        self._oldest: Optional[Time] = None

    def __len__(self) -> int:
        return len(self._entries)

    def _touch(self) -> None:
        self.version += 1
        self._ranked = None
        self._hops_ranked = None
        watch = self._watch
        if watch is not None:
            watch.add(self._watch_id)

    def install(self, entry: RouteEntry) -> bool:
        """Install ``entry`` unless a better route to its gateway exists.

        An entry whose sequence number is below the table's per-gateway
        floor is rejected outright — even into an empty slot — so a
        delayed carrier cannot reintroduce information the node already
        saw fresher.  Returns whether the table changed.
        """
        if entry.hops < 1:
            raise RoutingError(f"a route must be at least 1 hop, got {entry.hops}")
        if entry.sequence < self._sequence_floors.get(entry.gateway, 0):
            return False
        current = self._entries.get(entry.gateway)
        guard = self.guard
        if guard is not None:
            # Worlds stamp installed_at with the current step, so a
            # sequence past installed_at claims a gateway sighting in
            # the future — only a forger can produce one.
            if entry.sequence - entry.installed_at > guard.max_sequence_ahead:
                self.guard_rejections += 1
                return False
            if (
                current is not None
                and current.hops - entry.hops > guard.max_hop_improvement
            ):
                self.guard_rejections += 1
                return False
        if current is None or entry.fresher_than(current):
            self._entries[entry.gateway] = entry
            self._sequence_floors[entry.gateway] = entry.sequence
            if self._oldest is None or entry.installed_at < self._oldest:
                self._oldest = entry.installed_at
            self._touch()
            return True
        return False

    def install_fast(
        self,
        gateway: NodeId,
        next_hop: NodeId,
        hops: int,
        installed_at: Time,
        gateway_seen_at: Time,
        sequence: int,
    ) -> bool:
        """:meth:`install` from scalars, building an entry only on accept.

        The batch agent engine installs tens of routes per step and most
        lose — to the sequence floor, the guard, or a fresher incumbent.
        Deciding on the raw fields first skips the frozen-dataclass
        construction for every rejected write.  Verdicts and counter
        effects are exactly :meth:`install`'s.
        """
        if hops < 1:
            raise RoutingError(f"a route must be at least 1 hop, got {hops}")
        if sequence < self._sequence_floors.get(gateway, 0):
            return False
        current = self._entries.get(gateway)
        guard = self.guard
        if guard is not None:
            if sequence - installed_at > guard.max_sequence_ahead:
                self.guard_rejections += 1
                return False
            if current is not None and current.hops - hops > guard.max_hop_improvement:
                self.guard_rejections += 1
                return False
        if current is not None:
            # Inlined RouteEntry.fresher_than on the raw fields.
            if gateway_seen_at != current.gateway_seen_at:
                if gateway_seen_at < current.gateway_seen_at:
                    return False
            elif hops != current.hops:
                if hops > current.hops:
                    return False
            elif installed_at <= current.installed_at:
                return False
        self._entries[gateway] = RouteEntry(
            gateway=gateway,
            next_hop=next_hop,
            hops=hops,
            installed_at=installed_at,
            gateway_seen_at=gateway_seen_at,
            sequence=sequence,
        )
        self._sequence_floors[gateway] = sequence
        if self._oldest is None or installed_at < self._oldest:
            self._oldest = installed_at
        self._touch()
        return True

    def sequence_floor(self, gateway: NodeId) -> int:
        """The lowest sequence number still accepted toward ``gateway``."""
        return self._sequence_floors.get(gateway, 0)

    def expire(self, now: Time) -> int:
        """Drop entries ``ttl`` or more steps old; returns how many dropped.

        An entry installed at time ``t`` survives queries at times
        ``t .. t + ttl - 1`` and is dropped by ``expire(t + ttl)`` —
        exactly the docstring's "expire after ``ttl`` steps".  (An
        earlier off-by-one let an entry exactly ``ttl`` old survive one
        extra step, visibly shifting the connectivity curve at small
        TTLs.)
        """
        if self.ttl is None:
            return 0
        horizon = now - self.ttl
        oldest = self._oldest
        if oldest is None or oldest > horizon:
            return 0
        stale = [g for g, e in self._entries.items() if e.installed_at <= horizon]
        if not stale:
            # The recorded bound was conservative (a drop removed the
            # oldest entry); tighten it so the next calls short-circuit.
            self._oldest = min(e.installed_at for e in self._entries.values()) \
                if self._entries else None
            return 0
        for gateway in stale:
            del self._entries[gateway]
        self._oldest = horizon + 1 if self._entries else None
        self._touch()
        return len(stale)

    def entries_by_preference(self) -> List[RouteEntry]:
        """All entries, most preferred first.

        Preference mirrors :meth:`RouteEntry.fresher_than`: most recent
        gateway sighting, then fewest hops.

        The ranking is memoized until the table next changes (it sits on
        the connectivity-walk hot path); treat the returned list as
        read-only.
        """
        ranked = self._ranked
        if ranked is None:
            ranked = sorted(
                self._entries.values(),
                key=lambda e: (-e.gateway_seen_at, e.hops, -e.installed_at, e.gateway),
            )
            self._ranked = ranked
        return ranked

    def hops_by_preference(self) -> tuple:
        """The ``next_hop`` ids of :meth:`entries_by_preference`, memoized.

        This is all a connectivity walk reads of a table, and doubles as
        the table's *next-hop signature*: two tables with equal tuples
        route every walk identically.  Memoized until the table changes.
        """
        hops = self._hops_ranked
        if hops is None:
            hops = tuple(entry.next_hop for entry in self.entries_by_preference())
            self._hops_ranked = hops
        return hops

    def entry_for(self, gateway: NodeId) -> Optional[RouteEntry]:
        """The current entry toward ``gateway`` (or ``None``)."""
        return self._entries.get(gateway)

    def entries(self) -> List[RouteEntry]:
        """All current entries in gateway order (cheap, unranked)."""
        return [self._entries[gateway] for gateway in sorted(self._entries)]

    def clear(self) -> None:
        """Drop every entry and forget the sequence floors.

        Clearing models the node losing its table wholesale (a crash);
        the reborn node has no memory of what it once accepted.
        """
        self._entries.clear()
        self._sequence_floors.clear()
        self._oldest = None
        self._touch()

    def drop_routes_via(self, node: NodeId) -> int:
        """Drop entries that lead through or toward a dead ``node``.

        Removes every entry whose next hop *or* gateway is ``node`` —
        both are useless once the node crashes.  Returns how many
        entries were dropped.
        """
        doomed = [
            gateway
            for gateway, entry in self._entries.items()
            if entry.next_hop == node or entry.gateway == node
        ]
        for gateway in doomed:
            del self._entries[gateway]
        if doomed:
            self._touch()
        return len(doomed)

    def drop_routes_via_next_hop(self, node: NodeId) -> int:
        """Drop entries whose *next hop* is ``node`` (link suspicion).

        Unlike :meth:`drop_routes_via`, entries whose **gateway** is
        ``node`` survive: an unreachable neighbour says nothing about
        the gateway itself, only about this one outgoing link.  Returns
        how many entries were dropped.
        """
        doomed = [
            gateway
            for gateway, entry in self._entries.items()
            if entry.next_hop == node
        ]
        for gateway in doomed:
            del self._entries[gateway]
        if doomed:
            self._touch()
        return len(doomed)

    def export_state(self) -> dict:
        """Detach this table's logical contents for transfer.

        The sharded runtime hands a node's table between tile banks when
        the node crosses a tile boundary.  Everything that defines the
        node's routing memory travels — entries, sequence floors, the
        monotonic guard-rejection count, the expiry bound — while the
        bank wiring (ttl, guard, touched-set watch) stays with each
        bank's own table object.  The origin table is left empty, as if
        freshly built; the returned dict is plain picklable data for
        :meth:`adopt_state` on the destination.
        """
        state = {
            "entries": self._entries,
            "floors": self._sequence_floors,
            "guard_rejections": self.guard_rejections,
            "oldest": self._oldest,
        }
        self._entries = {}
        self._sequence_floors = {}
        self.guard_rejections = 0
        self._oldest = None
        self._touch()
        return state

    def adopt_state(self, state: dict) -> None:
        """Take over contents captured by :meth:`export_state`."""
        self._entries = state["entries"]
        self._sequence_floors = state["floors"]
        self.guard_rejections = state["guard_rejections"]
        self._oldest = state["oldest"]
        self._touch()

    def corrupt(self, rng, node_ids: List[NodeId]) -> int:
        """Scramble every entry's next hop to a random node (fault model).

        Models a corrupted routing table whose entries still *look*
        plausible: gateways and hop counts survive but the next-hop
        pointers are garbage.  Returns how many entries were scrambled.
        """
        if not node_ids:
            return 0
        for gateway in sorted(self._entries):
            entry = self._entries[gateway]
            self._entries[gateway] = RouteEntry(
                gateway=entry.gateway,
                next_hop=rng.choice(node_ids),
                hops=entry.hops,
                installed_at=entry.installed_at,
                gateway_seen_at=entry.gateway_seen_at,
                sequence=entry.sequence,
            )
        if self._entries:
            self._touch()
        return len(self._entries)


class TableBank:
    """The routing tables of every node, keyed by node id.

    Nodes run no programs (§III-A), so the tables live here in the
    substrate — written by agents, read by the connectivity metric and
    the packet simulator.
    """

    def __init__(
        self,
        node_count: int,
        ttl: Optional[int] = None,
        guard: Optional[TableGuard] = None,
    ) -> None:
        if node_count < 1:
            raise RoutingError(f"node_count must be >= 1, got {node_count}")
        self.ttl = ttl
        self.guard = guard
        self._tables: List[RoutingTable] = [
            RoutingTable(ttl, guard) for __ in range(node_count)
        ]
        #: ids of tables touched since the last :meth:`take_touched`.
        self._touched: Set[NodeId] = set()
        for node, table in enumerate(self._tables):
            table._watch = self._touched
            table._watch_id = node

    def __len__(self) -> int:
        return len(self._tables)

    def table(self, node: NodeId) -> RoutingTable:
        """The routing table of ``node``."""
        try:
            return self._tables[node]
        except IndexError:
            raise RoutingError(f"no table for node {node}") from None

    @property
    def tables(self) -> List[RoutingTable]:
        """The per-node tables in id order — a read-only view for scans."""
        return self._tables

    def take_touched(self) -> List[NodeId]:
        """Ids of tables changed since the last call, clearing the set.

        Single-consumer by design (like the topology's edge-delta
        stream): the connectivity evaluator drains it each step instead
        of scanning every table's version counter.  Version counters
        still bump normally for everyone else.
        """
        touched = self._touched
        if not touched:
            return []
        out = list(touched)
        touched.clear()
        return out

    def expire_all(self, now: Time) -> int:
        """Expire stale entries in every table; returns total dropped.

        Every table shares the bank's TTL, so the per-table staleness
        bound is checked here and tables with nothing old enough are
        skipped without the method call (most tables, most steps).
        """
        if self.ttl is None:
            return 0
        horizon = now - self.ttl
        dropped = 0
        for table in self._tables:
            oldest = table._oldest
            if oldest is not None and oldest <= horizon:
                dropped += table.expire(now)
        return dropped

    def invalidate_node(self, node: NodeId) -> int:
        """Graceful degradation after ``node`` crashes.

        Wipes the dead node's own table and drops, bank-wide, every
        route that points through or toward it.  Returns the total
        number of entries removed.
        """
        own = len(self.table(node))
        self.table(node).clear()
        return own + sum(table.drop_routes_via(node) for table in self._tables)

    def total_entries(self) -> int:
        """Total live entries across all tables (diagnostics)."""
        return sum(len(table) for table in self._tables)

    def total_guard_rejections(self) -> int:
        """Writes the guards refused, bank-wide (conservation checks)."""
        return sum(table.guard_rejections for table in self._tables)
