"""The connectivity metric.

"To measure the connectivity, the fraction of nodes in the system that
has a valid route to at least one gateway are counted" (§III-C).  A route
is *valid* only if it works right now: starting from the node we follow
routing-table next hops, requiring each hop to be a currently existing
directed link, until a gateway is reached — bounded by a TTL and a
visited-set so broken or looping chains fail cleanly.

Nodes on a successfully walked path are cached as connected for the rest
of the step (everything downstream of them reached a gateway), which
makes the per-step metric near-linear in practice.  Failures are *not*
cached: a node that failed via one start's preference order might still
be reached as an intermediate hop of another chain, and correctness wins
over the small extra work.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.net.topology import Topology
from repro.routing.table import TableBank
from repro.types import NodeId

__all__ = ["walk_to_gateway", "connectivity_fraction", "connected_nodes"]

#: Default hop budget for a validity walk.
DEFAULT_WALK_TTL = 64


def walk_to_gateway(
    node: NodeId,
    topology: Topology,
    tables: TableBank,
    walk_ttl: int = DEFAULT_WALK_TTL,
) -> Optional[List[NodeId]]:
    """The valid next-hop path from ``node`` to a gateway, or ``None``.

    At each node the most preferred entry whose next hop is a *current*
    out-neighbour is taken.  The walk fails on a dead end, a cycle, or
    TTL exhaustion.
    """
    path = [node]
    current = node
    seen: Set[NodeId] = {node}
    for __ in range(walk_ttl):
        if _is_live_gateway(current, topology):
            return path
        next_hop = _usable_next_hop(current, topology, tables, seen)
        if next_hop is None:
            return None
        path.append(next_hop)
        seen.add(next_hop)
        current = next_hop
    return path if _is_live_gateway(current, topology) else None


def _is_live_gateway(node: NodeId, topology: Topology) -> bool:
    """A gateway counts only while it is up — a crashed one is off the air."""
    return topology.node(node).is_gateway and not topology.is_down(node)


def _usable_next_hop(
    current: NodeId, topology: Topology, tables: TableBank, seen: Set[NodeId]
) -> Optional[NodeId]:
    neighbors = topology.out_neighbors(current)
    for entry in tables.table(current).entries_by_preference():
        if entry.next_hop in neighbors and entry.next_hop not in seen:
            return entry.next_hop
    return None


def connected_nodes(
    topology: Topology,
    tables: TableBank,
    walk_ttl: int = DEFAULT_WALK_TTL,
) -> Set[NodeId]:
    """Every node with a currently valid route to some gateway.

    Gateways count as connected by definition (they *are* the outside
    world's attachment points).
    """
    connected: Set[NodeId] = set(topology.gateway_ids)
    for node in topology.node_ids:
        if node in connected or topology.is_down(node):
            continue
        path = walk_to_gateway(node, topology, tables, walk_ttl)
        if path is not None:
            # Everyone on the walked path reached the gateway too.
            connected.update(path)
    return connected


def connectivity_fraction(
    topology: Topology,
    tables: TableBank,
    walk_ttl: int = DEFAULT_WALK_TTL,
) -> float:
    """Fraction of nodes currently connected to at least one gateway."""
    return len(connected_nodes(topology, tables, walk_ttl)) / topology.node_count
