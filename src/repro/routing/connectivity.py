"""The connectivity metric.

"To measure the connectivity, the fraction of nodes in the system that
has a valid route to at least one gateway are counted" (§III-C).  A route
is *valid* only if it works right now: starting from the node we follow
routing-table next hops, requiring each hop to be a currently existing
directed link, until a gateway is reached — bounded by a TTL and a
visited-set so broken or looping chains fail cleanly.

Nodes on a successfully walked path are cached as connected for the rest
of the step (everything downstream of them reached a gateway), which
makes the per-step metric near-linear in practice.  Failures are *not*
cached: a node that failed via one start's preference order might still
be reached as an intermediate hop of another chain, and correctness wins
over the small extra work.

:class:`ConnectivityCache` carries walk outcomes *across* steps: a walk
is a pure function of the tables and links it touched, so a cached trace
(success or failure) replays verbatim until one of those inputs moves.
The cache watches the topology's edge-delta stream and per-table version
counters and re-walks only the affected start nodes — by construction
its result set is identical to :func:`connected_nodes`, which the test
suite property-checks under mobility and crash/recover fault plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.net.topology import Topology
from repro.routing.table import TableBank
from repro.types import NodeId

__all__ = [
    "walk_to_gateway",
    "connectivity_fraction",
    "connected_nodes",
    "ConnectivityCache",
    "ConnectivityCacheStats",
]

#: Default hop budget for a validity walk.
DEFAULT_WALK_TTL = 64


def walk_to_gateway(
    node: NodeId,
    topology: Topology,
    tables: TableBank,
    walk_ttl: int = DEFAULT_WALK_TTL,
) -> Optional[List[NodeId]]:
    """The valid next-hop path from ``node`` to a gateway, or ``None``.

    At each node the most preferred entry whose next hop is a *current*
    out-neighbour is taken.  The walk fails on a dead end, a cycle, or
    TTL exhaustion.
    """
    path, reached = _walk_trace(node, topology, tables, walk_ttl)
    return path if reached else None


def _walk_trace(
    node: NodeId,
    topology: Topology,
    tables: TableBank,
    walk_ttl: int,
) -> Tuple[List[NodeId], bool]:
    """The nodes a validity walk visits, and whether it reached a gateway.

    Unlike :func:`walk_to_gateway` the visited trace is returned even on
    failure — the cache needs to know *which* nodes a failed walk
    consulted to notice when its outcome might change.
    """
    return _walk_trace_fast(
        node,
        topology.adjacency_view(),
        tables.tables,
        set(topology.gateway_ids),
        walk_ttl,
    )


def _walk_trace_fast(
    node: NodeId,
    adjacency,
    table_list,
    gateway_set: Set[NodeId],
    walk_ttl: int,
) -> Tuple[List[NodeId], bool]:
    """:func:`_walk_trace` against pre-resolved per-step context.

    ``adjacency`` is the topology's live adjacency view, ``table_list``
    the bank's node-indexed table list, and ``gateway_set`` the *live*
    gateways — hoisting them out lets a caller walking many starts pay
    the lookups once per step instead of once per hop.
    """
    path = [node]
    current = node
    seen: Set[NodeId] = {node}
    for __ in range(walk_ttl):
        if current in gateway_set:
            return path, True
        neighbors = adjacency[current]
        next_hop = None
        for hop in table_list[current].hops_by_preference():
            if hop in neighbors and hop not in seen:
                next_hop = hop
                break
        if next_hop is None:
            return path, False
        path.append(next_hop)
        seen.add(next_hop)
        current = next_hop
    return path, current in gateway_set


def connected_nodes(
    topology: Topology,
    tables: TableBank,
    walk_ttl: int = DEFAULT_WALK_TTL,
) -> Set[NodeId]:
    """Every node with a currently valid route to some gateway.

    Gateways count as connected by definition (they *are* the outside
    world's attachment points).
    """
    connected: Set[NodeId] = set(topology.gateway_ids)
    for node in topology.node_ids:
        if node in connected or topology.is_down(node):
            continue
        path = walk_to_gateway(node, topology, tables, walk_ttl)
        if path is not None:
            # Everyone on the walked path reached the gateway too.
            connected.update(path)
    return connected


def connectivity_fraction(
    topology: Topology,
    tables: TableBank,
    walk_ttl: int = DEFAULT_WALK_TTL,
) -> float:
    """Fraction of nodes currently connected to at least one gateway."""
    return len(connected_nodes(topology, tables, walk_ttl)) / topology.node_count


@dataclass
class ConnectivityCacheStats:
    """Counters for the delta-aware connectivity metric."""

    #: cached walk traces replayed without re-walking.
    hits: int = 0
    #: fresh walks performed (cache misses).
    walks: int = 0
    #: cached traces dropped by targeted (per-start) invalidation.
    invalidated: int = 0
    #: whole-cache flushes (full topology rebuild / gateway liveness).
    flushes: int = 0


class ConnectivityCache:
    """Delta-aware :func:`connected_nodes`, identical by construction.

    A walk trace from start ``s`` reads, at every non-terminal visited
    node ``w``: ``w``'s ranked table and ``w``'s current out-neighbour
    set; it then takes one hop edge.  The cached outcome therefore
    replays verbatim while

    * no visited node's table changed its *next-hop signature* — the
      walk reads nothing of a table but the sequence of ``next_hop``
      ids in preference order, so a version bump that merely refreshes
      timestamps of the same routes (the common case: agents
      re-installing known routes) cannot change any walk through it,
    * no out-edge was *added* at a visited node (removing an unused
      edge only strengthens the rejections that shaped the walk),
    * every used hop edge still exists, and
    * gateway liveness is unchanged (terminal checks).

    The cache watches the topology's edge-delta stream and the table
    versions (escalating to a signature comparison only for tables
    whose version moved), invalidates exactly the start nodes whose
    traces touched a changed input, and re-walks only those.  Successes
    *and* failures are cached — both are deterministic replays.

    Traces are found via two indexes — ``users`` (visited node ->
    entries) and ``hop_users`` (used edge -> entries) — whose entries
    are ``(start, trace_id)`` pairs appended when a walk is remembered
    and *never* removed individually: an entry is live only while the
    start's current trace carries the same id, so dropping a trace is
    O(1) and stale index entries are skipped (and compacted when a list
    grows past a threshold) instead of eagerly unlinked.  When a node
    or edge triggers invalidation its whole entry list is popped: every
    live trace in it is being killed anyway.
    """

    #: index entry lists are compacted (stale entries dropped) at this size.
    _COMPACT_AT = 128

    def __init__(
        self,
        topology: Topology,
        tables: TableBank,
        walk_ttl: int = DEFAULT_WALK_TTL,
    ) -> None:
        self.topology = topology
        self.tables = tables
        self.walk_ttl = walk_ttl
        self.stats = ConnectivityCacheStats()
        #: start -> (visited trace, reached a gateway, trace id)
        self._traces: Dict[NodeId, Tuple[List[NodeId], bool, int]] = {}
        self._trace_seq = 0
        self._users: Dict[NodeId, List[Tuple[NodeId, int]]] = {}
        self._hop_users: Dict[Tuple[NodeId, NodeId], List[Tuple[NodeId, int]]] = {}
        self._versions: List[int] = [table.version for table in tables.tables]
        self._signatures: List[Tuple[NodeId, ...]] = [
            table.hops_by_preference() for table in tables.tables
        ]
        self._live_gateways: Tuple[NodeId, ...] = ()

    def connected(self) -> Set[NodeId]:
        """Every node with a currently valid route to some gateway.

        Bit-identical to ``connected_nodes(topology, tables, walk_ttl)``.
        """
        topology = self.topology
        tables = self.tables
        stats = self.stats
        delta = topology.take_edge_delta()  # refreshes the topology
        gateways = tuple(topology.gateway_ids)
        if delta.full or gateways != self._live_gateways:
            if self._traces:
                stats.flushes += 1
            self._flush()
            self._live_gateways = gateways
        else:
            if delta.removed:
                hop_users = self._hop_users
                for edge in delta.removed:
                    entries = hop_users.pop(edge, None)
                    if entries:
                        self._kill_entries(entries)
            if delta.added:
                users_index = self._users
                for source in {edge[0] for edge in delta.added}:
                    entries = users_index.pop(source, None)
                    if entries:
                        self._kill_entries(entries)
        versions = self._versions
        signatures = self._signatures
        users_index = self._users
        for node, table in enumerate(tables.tables):
            version = table.version
            if version != versions[node]:
                versions[node] = version
                signature = table.hops_by_preference()
                if signature == signatures[node]:
                    continue  # same routes in the same order: walks hold
                signatures[node] = signature
                entries = users_index.pop(node, None)
                if entries:
                    self._kill_entries(entries)

        connected: Set[NodeId] = set(gateways)
        down = topology.down_ids
        traces = self._traces
        adjacency = topology.adjacency_view()
        table_list = tables.tables
        gateway_set = set(gateways)
        walk_ttl = self.walk_ttl
        for node in topology.node_ids:
            if node in connected or node in down:
                continue
            cached = traces.get(node)
            if cached is not None:
                stats.hits += 1
                path = cached[0]
                reached = cached[1]
            else:
                path, reached = _walk_trace_fast(
                    node, adjacency, table_list, gateway_set, walk_ttl
                )
                stats.walks += 1
                self._remember(node, path, reached)
            if reached:
                connected.update(path)
        return connected

    def _remember(self, start: NodeId, path: List[NodeId], reached: bool) -> None:
        self._trace_seq += 1
        trace_id = self._trace_seq
        self._traces[start] = (path, reached, trace_id)
        entry = (start, trace_id)
        compact_at = self._COMPACT_AT
        # A success never reads the terminal gateway's table or edges,
        # so don't index it — route churn *at* gateways is constant and
        # would invalidate every path ending there for nothing.
        users_index = self._users
        hop_users = self._hop_users
        last = len(path) - 1
        prev = None
        for position, node in enumerate(path):
            if prev is not None:
                hop = (prev, node)
                entries = hop_users.get(hop)
                if entries is None:
                    hop_users[hop] = [entry]
                else:
                    entries.append(entry)
                    if len(entries) >= compact_at:
                        self._compact(entries)
            if position != last or not reached:
                entries = users_index.get(node)
                if entries is None:
                    users_index[node] = [entry]
                else:
                    entries.append(entry)
                    if len(entries) >= compact_at:
                        self._compact(entries)
            prev = node

    def _kill_entries(self, entries: List[Tuple[NodeId, int]]) -> None:
        """Drop every still-live trace referenced by an index entry list."""
        traces = self._traces
        invalidated = 0
        for start, trace_id in entries:
            cached = traces.get(start)
            if cached is not None and cached[2] == trace_id:
                del traces[start]
                invalidated += 1
        self.stats.invalidated += invalidated

    def _compact(self, entries: List[Tuple[NodeId, int]]) -> None:
        """Drop stale (superseded) entries from one index list in place."""
        traces = self._traces
        entries[:] = [
            entry
            for entry in entries
            if (cached := traces.get(entry[0])) is not None and cached[2] == entry[1]
        ]

    def _flush(self) -> None:
        self._traces.clear()
        self._users.clear()
        self._hop_users.clear()
