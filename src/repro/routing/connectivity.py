"""The connectivity metric.

"To measure the connectivity, the fraction of nodes in the system that
has a valid route to at least one gateway are counted" (§III-C).  A route
is *valid* only if it works right now: starting from the node we follow
routing-table next hops, requiring each hop to be a currently existing
directed link, until a gateway is reached — bounded by a TTL and a
visited-set so broken or looping chains fail cleanly.

Nodes on a successfully walked path are cached as connected for the rest
of the step (everything downstream of them reached a gateway), which
makes the per-step metric near-linear in practice.  Failures are *not*
cached: a node that failed via one start's preference order might still
be reached as an intermediate hop of another chain, and correctness wins
over the small extra work.

:class:`ConnectivityCache` carries walk outcomes *across* steps: a walk
is a pure function of the tables and links it touched, so a cached trace
(success or failure) replays verbatim until one of those inputs moves.
The cache watches the topology's edge-delta stream and per-table version
counters and re-walks only the affected start nodes — by construction
its result set is identical to :func:`connected_nodes`, which the test
suite property-checks under mobility and crash/recover fault plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.net.topology import Topology
from repro.routing.table import TableBank
from repro.types import NodeId

try:  # optional acceleration; every algorithm has a pure-Python twin
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

__all__ = [
    "walk_to_gateway",
    "connectivity_fraction",
    "connected_nodes",
    "ConnectivityCache",
    "ConnectivityCacheStats",
    "FunctionalConnectivity",
]

#: Default hop budget for a validity walk.
DEFAULT_WALK_TTL = 64


def walk_to_gateway(
    node: NodeId,
    topology: Topology,
    tables: TableBank,
    walk_ttl: int = DEFAULT_WALK_TTL,
) -> Optional[List[NodeId]]:
    """The valid next-hop path from ``node`` to a gateway, or ``None``.

    At each node the most preferred entry whose next hop is a *current*
    out-neighbour is taken.  The walk fails on a dead end, a cycle, or
    TTL exhaustion.
    """
    path, reached = _walk_trace(node, topology, tables, walk_ttl)
    return path if reached else None


def _walk_trace(
    node: NodeId,
    topology: Topology,
    tables: TableBank,
    walk_ttl: int,
) -> Tuple[List[NodeId], bool]:
    """The nodes a validity walk visits, and whether it reached a gateway.

    Unlike :func:`walk_to_gateway` the visited trace is returned even on
    failure — the cache needs to know *which* nodes a failed walk
    consulted to notice when its outcome might change.
    """
    return _walk_trace_fast(
        node,
        topology.adjacency_view(),
        tables.tables,
        set(topology.gateway_ids),
        walk_ttl,
    )


def _walk_trace_fast(
    node: NodeId,
    adjacency,
    table_list,
    gateway_set: Set[NodeId],
    walk_ttl: int,
) -> Tuple[List[NodeId], bool]:
    """:func:`_walk_trace` against pre-resolved per-step context.

    ``adjacency`` is the topology's live adjacency view, ``table_list``
    the bank's node-indexed table list, and ``gateway_set`` the *live*
    gateways — hoisting them out lets a caller walking many starts pay
    the lookups once per step instead of once per hop.
    """
    path = [node]
    current = node
    seen: Set[NodeId] = {node}
    for __ in range(walk_ttl):
        if current in gateway_set:
            return path, True
        neighbors = adjacency[current]
        next_hop = None
        for hop in table_list[current].hops_by_preference():
            if hop in neighbors and hop not in seen:
                next_hop = hop
                break
        if next_hop is None:
            return path, False
        path.append(next_hop)
        seen.add(next_hop)
        current = next_hop
    return path, current in gateway_set


def connected_nodes(
    topology: Topology,
    tables: TableBank,
    walk_ttl: int = DEFAULT_WALK_TTL,
) -> Set[NodeId]:
    """Every node with a currently valid route to some gateway.

    Gateways count as connected by definition (they *are* the outside
    world's attachment points).
    """
    connected: Set[NodeId] = set(topology.gateway_ids)
    for node in topology.node_ids:
        if node in connected or topology.is_down(node):
            continue
        path = walk_to_gateway(node, topology, tables, walk_ttl)
        if path is not None:
            # Everyone on the walked path reached the gateway too.
            connected.update(path)
    return connected


def connectivity_fraction(
    topology: Topology,
    tables: TableBank,
    walk_ttl: int = DEFAULT_WALK_TTL,
) -> float:
    """Fraction of nodes currently connected to at least one gateway."""
    return len(connected_nodes(topology, tables, walk_ttl)) / topology.node_count


@dataclass
class ConnectivityCacheStats:
    """Counters for the delta-aware connectivity metric."""

    #: cached walk traces replayed without re-walking.
    hits: int = 0
    #: fresh walks performed (cache misses).
    walks: int = 0
    #: cached traces dropped by targeted (per-start) invalidation.
    invalidated: int = 0
    #: whole-cache flushes (full topology rebuild / gateway liveness).
    flushes: int = 0


class ConnectivityCache:
    """Delta-aware :func:`connected_nodes`, identical by construction.

    A walk trace from start ``s`` reads, at every non-terminal visited
    node ``w``: ``w``'s ranked table and ``w``'s current out-neighbour
    set; it then takes one hop edge.  The cached outcome therefore
    replays verbatim while

    * no visited node's table changed its *next-hop signature* — the
      walk reads nothing of a table but the sequence of ``next_hop``
      ids in preference order, so a version bump that merely refreshes
      timestamps of the same routes (the common case: agents
      re-installing known routes) cannot change any walk through it,
    * no out-edge was *added* at a visited node (removing an unused
      edge only strengthens the rejections that shaped the walk),
    * every used hop edge still exists, and
    * gateway liveness is unchanged (terminal checks).

    The cache watches the topology's edge-delta stream and the table
    versions (escalating to a signature comparison only for tables
    whose version moved), invalidates exactly the start nodes whose
    traces touched a changed input, and re-walks only those.  Successes
    *and* failures are cached — both are deterministic replays.

    Traces are found via two indexes — ``users`` (visited node ->
    entries) and ``hop_users`` (used edge -> entries) — whose entries
    are ``(start, trace_id)`` pairs appended when a walk is remembered
    and *never* removed individually: an entry is live only while the
    start's current trace carries the same id, so dropping a trace is
    O(1) and stale index entries are skipped (and compacted when a list
    grows past a threshold) instead of eagerly unlinked.  When a node
    or edge triggers invalidation its whole entry list is popped: every
    live trace in it is being killed anyway.
    """

    #: index entry lists are compacted (stale entries dropped) at this size.
    _COMPACT_AT = 128

    def __init__(
        self,
        topology: Topology,
        tables: TableBank,
        walk_ttl: int = DEFAULT_WALK_TTL,
    ) -> None:
        self.topology = topology
        self.tables = tables
        self.walk_ttl = walk_ttl
        self.stats = ConnectivityCacheStats()
        #: start -> (visited trace, reached a gateway, trace id)
        self._traces: Dict[NodeId, Tuple[List[NodeId], bool, int]] = {}
        self._trace_seq = 0
        self._users: Dict[NodeId, List[Tuple[NodeId, int]]] = {}
        self._hop_users: Dict[Tuple[NodeId, NodeId], List[Tuple[NodeId, int]]] = {}
        self._versions: List[int] = [table.version for table in tables.tables]
        self._signatures: List[Tuple[NodeId, ...]] = [
            table.hops_by_preference() for table in tables.tables
        ]
        self._live_gateways: Tuple[NodeId, ...] = ()

    def connected(self) -> Set[NodeId]:
        """Every node with a currently valid route to some gateway.

        Bit-identical to ``connected_nodes(topology, tables, walk_ttl)``.
        """
        topology = self.topology
        tables = self.tables
        stats = self.stats
        delta = topology.take_edge_delta()  # refreshes the topology
        gateways = tuple(topology.gateway_ids)
        if delta.full or gateways != self._live_gateways:
            if self._traces:
                stats.flushes += 1
            self._flush()
            self._live_gateways = gateways
        else:
            if delta.removed:
                hop_users = self._hop_users
                for edge in delta.removed:
                    entries = hop_users.pop(edge, None)
                    if entries:
                        self._kill_entries(entries)
            if delta.added:
                users_index = self._users
                for source in {edge[0] for edge in delta.added}:
                    entries = users_index.pop(source, None)
                    if entries:
                        self._kill_entries(entries)
        versions = self._versions
        signatures = self._signatures
        users_index = self._users
        for node, table in enumerate(tables.tables):
            version = table.version
            if version != versions[node]:
                versions[node] = version
                signature = table.hops_by_preference()
                if signature == signatures[node]:
                    continue  # same routes in the same order: walks hold
                signatures[node] = signature
                entries = users_index.pop(node, None)
                if entries:
                    self._kill_entries(entries)

        connected: Set[NodeId] = set(gateways)
        down = topology.down_ids
        traces = self._traces
        adjacency = topology.adjacency_view()
        table_list = tables.tables
        gateway_set = set(gateways)
        walk_ttl = self.walk_ttl
        for node in topology.node_ids:
            if node in connected or node in down:
                continue
            cached = traces.get(node)
            if cached is not None:
                stats.hits += 1
                path = cached[0]
                reached = cached[1]
            else:
                path, reached = _walk_trace_fast(
                    node, adjacency, table_list, gateway_set, walk_ttl
                )
                stats.walks += 1
                self._remember(node, path, reached)
            if reached:
                connected.update(path)
        return connected

    def _remember(self, start: NodeId, path: List[NodeId], reached: bool) -> None:
        self._trace_seq += 1
        trace_id = self._trace_seq
        self._traces[start] = (path, reached, trace_id)
        entry = (start, trace_id)
        compact_at = self._COMPACT_AT
        # A success never reads the terminal gateway's table or edges,
        # so don't index it — route churn *at* gateways is constant and
        # would invalidate every path ending there for nothing.
        users_index = self._users
        hop_users = self._hop_users
        last = len(path) - 1
        prev = None
        for position, node in enumerate(path):
            if prev is not None:
                hop = (prev, node)
                entries = hop_users.get(hop)
                if entries is None:
                    hop_users[hop] = [entry]
                else:
                    entries.append(entry)
                    if len(entries) >= compact_at:
                        self._compact(entries)
            if position != last or not reached:
                entries = users_index.get(node)
                if entries is None:
                    users_index[node] = [entry]
                else:
                    entries.append(entry)
                    if len(entries) >= compact_at:
                        self._compact(entries)
            prev = node

    def _kill_entries(self, entries: List[Tuple[NodeId, int]]) -> None:
        """Drop every still-live trace referenced by an index entry list."""
        traces = self._traces
        invalidated = 0
        for start, trace_id in entries:
            cached = traces.get(start)
            if cached is not None and cached[2] == trace_id:
                del traces[start]
                invalidated += 1
        self.stats.invalidated += invalidated

    def _compact(self, entries: List[Tuple[NodeId, int]]) -> None:
        """Drop stale (superseded) entries from one index list in place."""
        traces = self._traces
        entries[:] = [
            entry
            for entry in entries
            if (cached := traces.get(entry[0])) is not None and cached[2] == entry[1]
        ]

    def _flush(self) -> None:
        self._traces.clear()
        self._users.clear()
        self._hop_users.clear()


class FunctionalConnectivity:
    """:func:`connected_nodes` via the *effective next hop* function.

    A validity walk consults, at each node, the table's preference order
    filtered twice: by the current out-neighbour set and by the walk's
    own visited set.  The second filter only ever fires on a *repeat* —
    the first time the walk would step onto a node it already visited.
    Until that happens the walk simply follows

        ``eff(w) = first hop in hops_by_preference(w) that is a current
        out-neighbour of w``

    which is a pure per-node function of ``w``'s next-hop signature and
    out-edge set.  ``eff`` turns the network into a functional graph
    (every node has at most one successor), and on that graph walk
    outcomes compose: if the chain from ``w`` terminates (gateway or
    dead end) without repeating a node, no chain *into* ``w`` can
    overlap the chain out of it — an overlap would put ``w`` on a cycle
    and the chain could never have terminated.  So one pass over the
    nodes resolves every start by pointer-chasing with memoisation:
    chase until a gateway, a dead end, or an already-resolved node, then
    unwind distances onto the whole chain.  A start is connected iff its
    chain reaches a gateway within ``walk_ttl`` hops.

    Chains that *do* repeat a node (a routing loop) are where the
    visited-set filter changes the outcome, so every node on such a
    chain is marked tainted and evaluated by the exact per-node walk
    instead.  Loops are rare — tables point toward gateways — so the
    fallback stays cold.

    ``eff`` is maintained across steps from the topology's edge-delta
    stream and the per-table version counters (escalating to a
    signature comparison, exactly like :class:`ConnectivityCache`);
    the chase pass itself is rebuilt each call.  The result set is
    identical to :func:`connected_nodes` by the argument above, which
    the test suite property-checks under mobility, faults and route
    churn.  Stats: ``hits`` counts memo reuses (and whole-result
    replays when nothing changed), ``walks`` fresh chain evaluations,
    ``invalidated`` recomputed ``eff`` entries, ``flushes`` full
    rebuilds.
    """

    def __init__(
        self,
        topology: Topology,
        tables: TableBank,
        walk_ttl: int = DEFAULT_WALK_TTL,
    ) -> None:
        self.topology = topology
        self.tables = tables
        self.walk_ttl = walk_ttl
        self.stats = ConnectivityCacheStats()
        n = topology.node_count
        self._eff: Optional[List[int]] = None  # built on first connected()
        self._sigs: List[tuple] = [()] * n
        self._live_gateways: Tuple[NodeId, ...] = ()
        self._result: Optional[Set[NodeId]] = None
        self._arange = None  # cached numpy arange for _evaluate_vector

    def connected(self) -> Set[NodeId]:
        """Every node with a currently valid route to some gateway.

        Bit-identical to ``connected_nodes(topology, tables, walk_ttl)``.
        """
        topology = self.topology
        stats = self.stats
        delta = topology.take_edge_delta()  # refreshes the topology
        touched = self.tables.take_touched()
        gateways = tuple(topology.gateway_ids)
        adjacency = topology.adjacency_view()
        table_list = self.tables.tables
        sigs = self._sigs
        eff = self._eff
        if eff is None or delta.full or gateways != self._live_gateways:
            if self._result is not None:
                stats.flushes += 1
                self._result = None
            self._live_gateways = gateways
            for node, table in enumerate(table_list):
                sigs[node] = table.hops_by_preference()
            if _np is not None:
                eff = self._eff = _np.full(len(table_list), -1, dtype=_np.int64)
            else:
                eff = self._eff = [-1] * len(table_list)
            dirty: Set[NodeId] = set(range(len(table_list)))
        else:
            dirty = set()
            if delta.removed:
                for edge in delta.removed:
                    dirty.add(edge[0])
            if delta.added:
                for edge in delta.added:
                    dirty.add(edge[0])
            for node in touched:
                signature = table_list[node].hops_by_preference()
                if signature != sigs[node]:
                    sigs[node] = signature
                    dirty.add(node)
            stats.invalidated += len(dirty)
            if not dirty and self._result is not None:
                stats.hits += len(self._result)
                return set(self._result)
        for u in dirty:
            neighbors = adjacency[u]
            nxt = -1
            if neighbors:
                for hop in sigs[u]:
                    if hop in neighbors:
                        nxt = hop
                        break
            eff[u] = nxt
        result = self._evaluate(adjacency, table_list, gateways)
        self._result = set(result)
        return result

    def _evaluate(
        self, adjacency, table_list, gateways: Tuple[NodeId, ...]
    ) -> Set[NodeId]:
        if _np is not None:
            return self._evaluate_vector(adjacency, table_list, gateways)
        return self._evaluate_scalar(adjacency, table_list, gateways)

    def _evaluate_vector(
        self, adjacency, table_list, gateways: Tuple[NodeId, ...]
    ) -> Set[NodeId]:
        """Resolve every chain at once by pointer doubling.

        On the functional graph ``eff`` each node has one successor, so
        ``k`` doubling rounds compose jumps of ``2**k`` steps: after
        ``ceil(log2(n))`` rounds every chain that terminates (gateway or
        dead end) has its pointer parked on the terminal and its exact
        hop distance accumulated.  Terminals are self-loops with
        distance zero, which makes the rounds unconditional — parked
        chains simply stop growing.  Chains still unparked afterwards
        repeat a node (a routing loop), exactly the tainted set of the
        scalar pass, and fall back to the exact per-start walk in the
        same ascending order with the same already-connected skip, so
        the result set is bit-identical to :meth:`_evaluate_scalar`.
        """
        stats = self.stats
        eff_arr = self._eff
        n = len(eff_arr)
        walk_ttl = self.walk_ttl
        idx = self._arange
        if idx is None or len(idx) != n:
            idx = self._arange = _np.arange(n)
        gw_mask = _np.zeros(n, dtype=bool)
        gw_list = list(gateways)
        gw_mask[gw_list] = True
        resolved = (eff_arr < 0) | gw_mask  # terminals: dead ends + gateways
        ptr = _np.where(resolved, idx, eff_arr)
        d = _np.where(resolved, 0, 1)  # hops from i to ptr[i]
        # Cover walk_ttl hops: a successful chain must park within the
        # TTL anyway, and anything still unparked afterwards — cycle or
        # over-long chain — goes to the exact walk, which is always
        # correct (it is the definition, the doubling only accelerates).
        cover = 1
        while cover < walk_ttl:
            d += d[ptr]
            ptr = ptr[ptr]
            cover <<= 1
        parked = resolved[ptr]
        success = parked & gw_mask[ptr] & (d <= walk_ttl)
        result: Set[NodeId] = set(gw_list)
        result.update(_np.flatnonzero(success).tolist())
        stats.hits += int(success.sum())
        cyc = _np.flatnonzero(~parked)
        if cyc.size:
            down = self.topology.down_ids
            gateway_set = set(gw_list)
            walks = 0
            for node in cyc.tolist():
                if node in result or node in down:
                    continue
                walks += 1
                path, reached = _walk_trace_fast(
                    node, adjacency, table_list, gateway_set, walk_ttl
                )
                if reached:
                    result.update(path)
            stats.walks += walks
        return result

    def _evaluate_scalar(
        self, adjacency, table_list, gateways: Tuple[NodeId, ...]
    ) -> Set[NodeId]:
        topology = self.topology
        stats = self.stats
        eff = self._eff
        n = len(eff)
        walk_ttl = self.walk_ttl
        gateway_set = set(gateways)
        gw_flag = bytearray(n)
        for g in gateways:
            gw_flag[g] = 1
        down = topology.down_ids
        result: Set[NodeId] = set(gateways)
        # Per-call chase state: 0 unknown, 1 on the current chase stack,
        # 2 resolved functionally, 3 tainted (chain enters a loop).
        state = bytearray(n)
        reach = bytearray(n)
        dist = [0] * n
        hits = 0
        walks = 0
        for node in topology.node_ids:
            if node in result or node in down:
                continue
            stack: List[NodeId] = []
            cur = node
            while True:
                s = state[cur]
                if s == 2:
                    ok = reach[cur]
                    base = dist[cur]
                    hits += 1
                    break
                if s == 1 or s == 3:
                    ok = -1  # loop found: exact-walk territory
                    state[cur] = 3
                    break
                if gw_flag[cur]:
                    state[cur] = 2
                    reach[cur] = 1
                    dist[cur] = 0
                    ok = 1
                    base = 0
                    break
                nxt = eff[cur]
                if nxt < 0:
                    state[cur] = 2
                    reach[cur] = 0
                    dist[cur] = 0
                    ok = 0
                    base = 0
                    break
                state[cur] = 1
                stack.append(cur)
                cur = nxt
            if ok < 0:
                # The chain repeats a node, so the visited-set filter
                # may reroute it: taint the whole chain and fall back
                # to the exact walk for this start (later starts on the
                # chain each get their own exact walk).
                for w in stack:
                    state[w] = 3
                walks += 1
                path, reached = _walk_trace_fast(
                    node, adjacency, table_list, gateway_set, walk_ttl
                )
                if reached:
                    result.update(path)
                continue
            if stack:
                walks += 1
                d = base
                for w in reversed(stack):
                    d += 1
                    state[w] = 2
                    reach[w] = ok
                    dist[w] = d
            else:
                d = base
            if ok and d <= walk_ttl:
                w = node
                while not gw_flag[w]:
                    result.add(w)
                    w = eff[w]
        stats.hits += hits
        stats.walks += walks
        return result
