"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised deliberately by the library derive from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting genuine programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """An experiment or world was configured with invalid parameters."""


class TopologyError(ReproError):
    """A network topology query or construction failed."""


class GenerationError(ReproError):
    """A network generator could not satisfy its constraints."""


class SimulationError(ReproError):
    """The simulation engine was driven into an invalid state."""


class InvariantError(SimulationError):
    """A runtime cross-layer invariant was violated during a step."""


class AgentError(ReproError):
    """An agent performed or was asked to perform an illegal action."""


class RoutingError(ReproError):
    """A routing-table operation failed."""


class ExperimentError(ReproError):
    """An experiment definition or run failed."""
