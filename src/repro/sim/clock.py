"""The simulated clock.

Time in both of the paper's scenarios is a non-negative integer number of
steps.  The clock is deliberately dumb: only the engine advances it, and
everything else holds a read-only reference.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.types import Time

__all__ = ["SimClock"]


class SimClock:
    """Monotonically advancing integer simulation clock."""

    def __init__(self, start: Time = 0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start}")
        self._now: Time = start

    @property
    def now(self) -> Time:
        """Current simulated time in steps."""
        return self._now

    def advance(self, steps: Time = 1) -> Time:
        """Advance the clock by ``steps`` (default one) and return the new time."""
        if steps <= 0:
            raise SimulationError(f"clock must advance by a positive amount, got {steps}")
        self._now += steps
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now})"
