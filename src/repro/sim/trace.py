"""Structured trace recording (thin adapter over :mod:`repro.obs.events`).

.. deprecated::
    :class:`TraceRecorder` predates the unified observability subsystem
    and is kept as a compatibility adapter: it is now a kind-filtered
    :class:`~repro.obs.events.EventBus` feeding one bounded
    :class:`~repro.obs.events.MemorySink`, and :class:`TraceEvent` *is*
    :class:`repro.obs.events.Event`.  New code should use the event bus
    and sinks directly (or the CLI's ``--trace-out``); this module's
    public API is frozen and will not grow.

A :class:`TraceRecorder` accumulates event rows.  Tests use it to assert
fine-grained behaviour (who moved where, when knowledge completed)
without reaching into private state; examples use it to narrate runs.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional

from repro.obs.events import Event, EventBus, MemorySink
from repro.types import Time

__all__ = ["TraceEvent", "TraceRecorder"]

#: One recorded trace row — the obs layer's structured event.
TraceEvent = Event


class TraceRecorder:
    """Accumulates trace events, optionally filtered by kind."""

    def __init__(self, kinds: Optional[set] = None, max_events: Optional[int] = None) -> None:
        self._sink = MemorySink(max_events=max_events)
        self._bus = EventBus([self._sink], kinds=kinds)

    def record(self, time: Time, kind: str, **payload: Any) -> None:
        """Append an event if its kind passes the filter and space remains."""
        self._bus.emit(time, kind, **payload)

    @property
    def events(self) -> List[TraceEvent]:
        """All recorded events in order."""
        return self._sink.events

    @property
    def dropped(self) -> int:
        """Events discarded after ``max_events`` was reached."""
        return self._sink.dropped

    def of_kind(self, kind: str) -> Iterator[TraceEvent]:
        """Iterate events of one kind, preserving order."""
        return (event for event in self._sink.events if event.kind == kind)

    def clear(self) -> None:
        """Drop every recorded event."""
        self._sink.clear()

    def __len__(self) -> int:
        return len(self._sink)
