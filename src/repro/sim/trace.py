"""Structured trace recording.

A :class:`TraceRecorder` subscribes to a world's hooks and accumulates
:class:`TraceEvent` rows.  Tests use it to assert fine-grained behaviour
(who moved where, when knowledge completed) without reaching into private
state; examples use it to narrate runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.types import Time

__all__ = ["TraceEvent", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded trace row."""

    time: Time
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Accumulates trace events, optionally filtered by kind."""

    def __init__(self, kinds: Optional[set] = None, max_events: Optional[int] = None) -> None:
        self._kinds = set(kinds) if kinds is not None else None
        self._max_events = max_events
        self._events: List[TraceEvent] = []
        self.dropped = 0

    def record(self, time: Time, kind: str, **payload: Any) -> None:
        """Append an event if its kind passes the filter and space remains."""
        if self._kinds is not None and kind not in self._kinds:
            return
        if self._max_events is not None and len(self._events) >= self._max_events:
            self.dropped += 1
            return
        self._events.append(TraceEvent(time=time, kind=kind, payload=dict(payload)))

    @property
    def events(self) -> List[TraceEvent]:
        """All recorded events in order."""
        return list(self._events)

    def of_kind(self, kind: str) -> Iterator[TraceEvent]:
        """Iterate events of one kind, preserving order."""
        return (event for event in self._events if event.kind == kind)

    def clear(self) -> None:
        """Drop every recorded event."""
        self._events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)
