"""Discrete time-step simulation engine.

The paper's model is "a simple discrete event, time-step based
simulation".  This package provides:

* :class:`~repro.sim.clock.SimClock` — the simulated clock,
* :class:`~repro.sim.events.EventQueue` — a priority-queue discrete-event
  core used for scheduled one-shot events (link degradation, battery
  milestones),
* :class:`~repro.sim.engine.TimeStepEngine` — the outer loop that advances
  the clock one step at a time, fires due events, then runs registered
  per-step processes in a fixed order,
* :mod:`~repro.sim.hooks` — observer hooks for instrumentation,
* :mod:`~repro.sim.trace` — an optional structured trace recorder.
"""

from repro.sim.clock import SimClock
from repro.sim.engine import Process, StopSimulation, TimeStepEngine
from repro.sim.events import EventQueue, ScheduledEvent
from repro.sim.hooks import HookRegistry
from repro.sim.trace import TraceEvent, TraceRecorder

__all__ = [
    "SimClock",
    "TimeStepEngine",
    "Process",
    "StopSimulation",
    "EventQueue",
    "ScheduledEvent",
    "HookRegistry",
    "TraceRecorder",
    "TraceEvent",
]
