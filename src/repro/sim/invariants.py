"""Runtime cross-layer invariant checking.

A seeded simulation that silently enters an inconsistent state is worse
than one that crashes: every metric computed afterwards is quietly
wrong.  :class:`InvariantChecker` subscribes to the engine's
``step_end`` hook and validates, after every step, the contracts the
layers rely on but none of them owns:

* every *acting* agent stands on a live, existing node (a frozen agent
  may legally wait on a crashed node — it is suspended, not acting),
* no routing-table entry points at a crashed next hop, references an
  unknown node, claims fewer than one hop, or outlives its TTL,
* every stigmergy footprint lives on a live, existing node and points
  at an existing node,
* the link topology never exposes a down node or a blocked edge through
  ``out_neighbors`` — which is exactly the view the connectivity metric
  walks, so connectivity can never be computed through a down link,
* the incremental topology engine's indices are sound: the reverse
  adjacency mirrors the forward one, and (for geometric topologies) the
  maintained adjacency equals a fresh rebuild-from-scratch computation,
* the traffic plane conserves payloads exactly: ``generated ==
  delivered + expired + dropped + alive``, the ledger's copy counts
  match the buffers' physical contents, and no queue exceeds capacity.

The checker is opt-in per world (``check_invariants`` in the world
configs, ``--check-invariants`` on the CLI) and on by default under the
test suite via the ``REPRO_CHECK_INVARIANTS`` environment variable.  A
violation raises :class:`~repro.errors.InvariantError` naming every
broken contract; pass ``raise_on_violation=False`` to collect instead
(the ``loss1`` experiment reports the count across its sweep).
"""

from __future__ import annotations

import os
from typing import Any, List

from repro.errors import InvariantError
from repro.types import Time

__all__ = ["InvariantChecker", "default_invariants_enabled"]

#: Environment variable that switches the default on (tests set it).
ENV_FLAG = "REPRO_CHECK_INVARIANTS"


def default_invariants_enabled() -> bool:
    """Whether worlds with ``check_invariants=None`` should check.

    Controlled by the ``REPRO_CHECK_INVARIANTS`` environment variable;
    unset, empty, ``0``, ``false``, ``no``, and ``off`` mean disabled.
    """
    value = os.environ.get(ENV_FLAG, "")
    return value.strip().lower() not in ("", "0", "false", "no", "off")


class InvariantChecker:
    """Validates one world's cross-layer state after every step.

    World-agnostic via the same ``getattr`` protocol the fault injector
    uses: ``topology`` and ``agents`` are required; ``tables``,
    ``field``, and ``injector`` are consulted when present.
    """

    def __init__(self, world: Any, raise_on_violation: bool = True) -> None:
        self.world = world
        self.raise_on_violation = raise_on_violation
        #: steps validated so far.
        self.checks = 0
        #: every violation message collected across the run.
        self.violations: List[str] = []
        self._installed = False

    def install(self) -> None:
        """Subscribe to the engine's ``step_end`` hook (idempotent)."""
        if self._installed:
            return
        self._installed = True
        self.world.engine.hooks.subscribe("step_end", self._on_step_end)

    def _on_step_end(self, time: Time, **_: Any) -> None:
        self.check_now(time)

    def check_now(self, now: Time) -> List[str]:
        """Scan the world; record, and possibly raise, any violations."""
        problems = self.scan(now)
        self.checks += 1
        if problems:
            self.violations.extend(problems)
            if self.raise_on_violation:
                raise InvariantError(
                    f"invariant violation(s) at step {now}: " + "; ".join(problems)
                )
        return problems

    # ------------------------------------------------------------------
    # The scan
    # ------------------------------------------------------------------

    def scan(self, now: Time) -> List[str]:
        """Every currently broken contract, as human-readable messages."""
        problems: List[str] = []
        topology = self.world.topology
        node_ids = set(topology.node_ids)
        down = topology.down_ids
        self._scan_agents(problems, node_ids, down)
        self._scan_tables(problems, now, node_ids, down)
        self._scan_footprints(problems, node_ids, down)
        self._scan_topology(problems, node_ids, down)
        self._scan_traffic(problems)
        self._scan_engine(problems)
        self._scan_health(problems, node_ids, down)
        self._scan_guard(problems)
        return problems

    def _acting_agents(self) -> List[Any]:
        injector = getattr(self.world, "injector", None)
        if injector is not None:
            return injector.active_agents()
        return list(self.world.agents)

    def _scan_agents(self, problems: List[str], node_ids, down) -> None:
        for agent in self._acting_agents():
            if agent.location not in node_ids:
                problems.append(
                    f"agent {agent.agent_id} stands on unknown node {agent.location}"
                )
            elif agent.location in down:
                problems.append(
                    f"agent {agent.agent_id} acts on down node {agent.location}"
                )

    def _scan_tables(self, problems: List[str], now: Time, node_ids, down) -> None:
        tables = getattr(self.world, "tables", None)
        if tables is None:
            return
        for node in sorted(node_ids):
            for entry in tables.table(node).entries():
                where = f"table of node {node}, gateway {entry.gateway}"
                if entry.gateway not in node_ids or entry.next_hop not in node_ids:
                    problems.append(f"{where}: references unknown node")
                    continue
                if entry.next_hop in down:
                    problems.append(
                        f"{where}: next hop {entry.next_hop} is down"
                    )
                if entry.hops < 1:
                    problems.append(f"{where}: claims {entry.hops} hops")
                ttl = tables.ttl
                if ttl is not None and entry.installed_at <= now - ttl:
                    problems.append(
                        f"{where}: entry installed at {entry.installed_at} "
                        f"outlived ttl {ttl} at step {now}"
                    )

    def _scan_footprints(self, problems: List[str], node_ids, down) -> None:
        field = getattr(self.world, "field", None)
        if field is None:
            return
        for node, board in field.items():
            if len(board) == 0:
                continue
            if node not in node_ids:
                problems.append(f"footprint board on unknown node {node}")
                continue
            if node in down:
                problems.append(f"footprint board survives on down node {node}")
            for mark in board.all_marks():
                if mark.target not in node_ids:
                    problems.append(
                        f"footprint on node {node} points at unknown "
                        f"node {mark.target}"
                    )

    def _scan_topology(self, problems: List[str], node_ids, down) -> None:
        topology = self.world.topology
        blocked = topology.blocked_edges
        for node in sorted(node_ids):
            neighbors = topology.out_neighbors(node)
            if node in down and neighbors:
                problems.append(f"down node {node} still has out-links")
            for neighbor in neighbors:
                if neighbor in down:
                    problems.append(
                        f"link {node}->{neighbor} leads to a down node"
                    )
                if (node, neighbor) in blocked:
                    problems.append(f"blocked link {node}->{neighbor} is exposed")

    def _scan_traffic(self, problems: List[str]) -> None:
        """The data plane's payload-conservation contract.

        Delegates to :meth:`~repro.traffic.plane.TrafficPlane.
        consistency_problems`, which recomputes, from first principles,
        that ``generated == delivered + expired + dropped + alive``,
        that the ledger's per-payload copy counts match what the buffers
        physically hold, and that no buffer exceeds its capacity.
        """
        plane = getattr(self.world, "traffic", None)
        if plane is None:
            return
        problems.extend(plane.consistency_problems())

    def _scan_health(self, problems: List[str], node_ids, down) -> None:
        """Quarantine must never partition a healthy graph.

        For every live node that has at least one live out-neighbor,
        :meth:`~repro.net.health.HealthMonitor.filter_targets` must
        return a non-empty candidate list — the never-isolate fallback
        is a hard contract, not a best effort.
        """
        health = getattr(self.world, "health", None)
        if health is None:
            return
        topology = self.world.topology
        for node in sorted(node_ids):
            if node in down:
                continue
            neighbors = [
                n for n in topology.out_neighbors(node) if n not in down
            ]
            if not neighbors:
                continue
            if not health.filter_targets(node, neighbors):
                problems.append(
                    f"quarantine isolates node {node}: all {len(neighbors)} "
                    "live neighbors filtered out"
                )

    def _scan_guard(self, problems: List[str]) -> None:
        """Guard rejections must be conserved in the overhead meters.

        Every install the table guard refuses is charged to the visiting
        agent's ``routes_rejected`` counter; the world-wide sums must
        agree or rejections are being dropped from the overhead story.
        """
        tables = getattr(self.world, "tables", None)
        if tables is None or getattr(tables, "guard", None) is None:
            return
        table_total = tables.total_guard_rejections()
        agent_total = sum(
            agent.overhead.routes_rejected for agent in self.world.agents
        )
        if table_total != agent_total:
            problems.append(
                f"guard rejections not conserved: tables count {table_total}, "
                f"agent overhead counts {agent_total}"
            )

    def _scan_engine(self, problems: List[str]) -> None:
        """The incremental topology engine's own consistency report.

        Cross-validates the reverse-adjacency index against the forward
        adjacency and, for geometric topologies, the maintained
        adjacency against a fresh naive recompute — so a divergence in
        the incremental bookkeeping fails the step it happens, not the
        metric it later corrupts.
        """
        checker = getattr(self.world.topology, "consistency_problems", None)
        if checker is not None:
            problems.extend(checker())
