"""Discrete-event priority queue.

The paper's simulation is time-stepped, but several substrate behaviours
are most naturally expressed as one-shot events scheduled for a future
time (a link degrading at step 400, a battery crossing a threshold).
:class:`EventQueue` is a classic DES calendar: a binary heap of
``(time, sequence, event)`` where the sequence number makes ordering
stable for events scheduled at the same time.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.types import Time

__all__ = ["ScheduledEvent", "EventQueue"]


@dataclass(frozen=True)
class ScheduledEvent:
    """A one-shot event: a callback plus bookkeeping metadata."""

    time: Time
    action: Callable[[], None]
    label: str = ""
    sequence: int = field(default=0, compare=False)

    def fire(self) -> None:
        """Run the event's action."""
        self.action()


class EventQueue:
    """Stable min-heap calendar of :class:`ScheduledEvent` objects."""

    def __init__(self) -> None:
        self._heap: List[Tuple[Time, int, ScheduledEvent]] = []
        self._counter = itertools.count()
        self._cancelled: set = set()

    def __len__(self) -> int:
        return len(self._heap) - len(self._cancelled)

    def schedule(self, time: Time, action: Callable[[], None], label: str = "") -> ScheduledEvent:
        """Schedule ``action`` to fire at simulated ``time``.

        Returns the :class:`ScheduledEvent`, which can later be passed to
        :meth:`cancel`.
        """
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time}")
        sequence = next(self._counter)
        event = ScheduledEvent(time=time, action=action, label=label, sequence=sequence)
        heapq.heappush(self._heap, (time, sequence, event))
        return event

    def cancel(self, event: ScheduledEvent) -> None:
        """Cancel a previously scheduled event (lazy deletion)."""
        self._cancelled.add(event.sequence)

    def peek_time(self) -> Optional[Time]:
        """Time of the earliest pending event, or ``None`` when empty."""
        self._discard_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop_due(self, now: Time) -> List[ScheduledEvent]:
        """Remove and return every pending event with ``time <= now``.

        Events are returned in (time, scheduling-order) order, which makes
        the engine deterministic for simultaneous events.
        """
        due: List[ScheduledEvent] = []
        while True:
            self._discard_cancelled_head()
            if not self._heap or self._heap[0][0] > now:
                break
            __, __, event = heapq.heappop(self._heap)
            due.append(event)
        return due

    def _discard_cancelled_head(self) -> None:
        while self._heap and self._heap[0][1] in self._cancelled:
            __, sequence, __ = heapq.heappop(self._heap)
            self._cancelled.discard(sequence)
