"""Observer hooks for simulation instrumentation.

Worlds publish named hook points ("step_start", "step_end", …).  Metrics
collectors, trace recorders, and tests subscribe without the world knowing
who is listening.  Callbacks run in subscription order, keeping runs
deterministic.

When a phase profiler is attached (``--profile``), every fire is timed
under a ``hook:<name>`` label — which is where hook-driven subsystems
such as fault injection (``step_start``) and invariant checking
(``step_end``) accrue their cost.  Without a profiler the only addition
to the hot path is one attribute check per fire.
"""

from __future__ import annotations

from collections import defaultdict
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional

__all__ = ["HookRegistry"]

HookCallback = Callable[..., None]


class HookRegistry:
    """A tiny synchronous publish/subscribe registry."""

    def __init__(self) -> None:
        self._subscribers: Dict[str, List[HookCallback]] = defaultdict(list)
        self._profiler: Optional[Any] = None

    def set_profiler(self, profiler: Optional[Any]) -> None:
        """Attach (or detach, with ``None``) a phase profiler to fires."""
        self._profiler = profiler

    def subscribe(self, hook: str, callback: HookCallback) -> None:
        """Register ``callback`` to run whenever ``hook`` fires."""
        self._subscribers[hook].append(callback)

    def unsubscribe(self, hook: str, callback: HookCallback) -> None:
        """Remove a previously registered callback (no-op if absent)."""
        callbacks = self._subscribers.get(hook)
        if callbacks and callback in callbacks:
            callbacks.remove(callback)

    def fire(self, hook: str, /, **payload: Any) -> None:
        """Invoke every subscriber of ``hook`` with ``payload`` kwargs.

        Iterates a snapshot so a callback that unsubscribes itself (or
        anyone else) mid-fire cannot skip the next subscriber; callbacks
        subscribed during a fire run from the following fire on.
        """
        profiler = self._profiler
        if profiler is None:
            for callback in tuple(self._subscribers.get(hook, ())):
                callback(**payload)
            return
        started = perf_counter()
        for callback in tuple(self._subscribers.get(hook, ())):
            callback(**payload)
        profiler.add(f"hook:{hook}", perf_counter() - started)

    def subscriber_count(self, hook: str) -> int:
        """Number of callbacks currently attached to ``hook``."""
        return len(self._subscribers.get(hook, ()))
