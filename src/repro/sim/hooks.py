"""Observer hooks for simulation instrumentation.

Worlds publish named hook points ("step_start", "step_end", …).  Metrics
collectors, trace recorders, and tests subscribe without the world knowing
who is listening.  Callbacks run in subscription order, keeping runs
deterministic.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Dict, List

__all__ = ["HookRegistry"]

HookCallback = Callable[..., None]


class HookRegistry:
    """A tiny synchronous publish/subscribe registry."""

    def __init__(self) -> None:
        self._subscribers: Dict[str, List[HookCallback]] = defaultdict(list)

    def subscribe(self, hook: str, callback: HookCallback) -> None:
        """Register ``callback`` to run whenever ``hook`` fires."""
        self._subscribers[hook].append(callback)

    def unsubscribe(self, hook: str, callback: HookCallback) -> None:
        """Remove a previously registered callback (no-op if absent)."""
        callbacks = self._subscribers.get(hook)
        if callbacks and callback in callbacks:
            callbacks.remove(callback)

    def fire(self, hook: str, /, **payload: Any) -> None:
        """Invoke every subscriber of ``hook`` with ``payload`` kwargs.

        Iterates a snapshot so a callback that unsubscribes itself (or
        anyone else) mid-fire cannot skip the next subscriber; callbacks
        subscribed during a fire run from the following fire on.
        """
        for callback in tuple(self._subscribers.get(hook, ())):
            callback(**payload)

    def subscriber_count(self, hook: str) -> int:
        """Number of callbacks currently attached to ``hook``."""
        return len(self._subscribers.get(hook, ()))
