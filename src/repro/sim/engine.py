"""The outer time-step loop.

:class:`TimeStepEngine` drives a simulation the way the paper describes:
time advances in whole steps; at each step any due one-shot events fire
first (substrate changes such as link degradation), then every registered
:class:`Process` runs once in registration order.  A process may raise
:class:`StopSimulation` to end the run early — the mapping scenario stops
the moment every agent holds a perfect map.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.events import EventQueue
from repro.sim.hooks import HookRegistry
from repro.types import Time

__all__ = ["Process", "StopSimulation", "TimeStepEngine"]

#: A per-step process: called with the current simulated time.
Process = Callable[[Time], None]


class StopSimulation(Exception):
    """Raised by a process to terminate the run at the current step.

    This is control flow, not an error, so it derives from ``Exception``
    directly rather than from :class:`~repro.errors.ReproError`.
    """

    def __init__(self, reason: str = "") -> None:
        super().__init__(reason)
        self.reason = reason


class TimeStepEngine:
    """Time-step loop with an embedded discrete-event calendar.

    Hook points fired (all with ``time=`` keyword):

    * ``step_start`` — after the clock advanced, before events/processes,
    * ``step_end`` — after every process ran for this step,
    * ``run_end`` — once, when :meth:`run` returns (``reason=`` keyword).

    When a :class:`~repro.obs.profiler.PhaseProfiler` is attached via
    ``engine.profiler``, the due-event drain is timed under ``events``
    (worlds lap their own internal phases; the hook registry times hook
    fires).  With no profiler the loop is unchanged.
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.events = EventQueue()
        self.hooks = HookRegistry()
        self._processes: List[Process] = []
        self._running = False
        self.stop_reason: Optional[str] = None
        #: optional phase profiler (set by an observability collector).
        self.profiler: Optional[Any] = None

    def add_process(self, process: Process) -> None:
        """Register a per-step process; runs each step in registration order."""
        self._processes.append(process)

    def schedule_at(self, time: Time, action: Callable[[], None], label: str = "") -> None:
        """Schedule a one-shot event at absolute simulated ``time``."""
        if time <= self.clock.now:
            raise SimulationError(
                f"cannot schedule event at time {time}, clock already at {self.clock.now}"
            )
        self.events.schedule(time, action, label=label)

    def schedule_in(self, delay: Time, action: Callable[[], None], label: str = "") -> None:
        """Schedule a one-shot event ``delay`` steps from now (``delay >= 1``)."""
        self.schedule_at(self.clock.now + delay, action, label=label)

    def step(self) -> Time:
        """Advance one step: clock, due events, then every process.

        Returns the time that was just simulated.  Propagates
        :class:`StopSimulation` after recording its reason.
        """
        now = self.clock.advance()
        self.hooks.fire("step_start", time=now)
        profiler = self.profiler
        if profiler is None:
            for event in self.events.pop_due(now):
                event.fire()
        else:
            started = perf_counter()
            for event in self.events.pop_due(now):
                event.fire()
            profiler.add("events", perf_counter() - started)
        try:
            for process in self._processes:
                process(now)
        except StopSimulation as stop:
            self.stop_reason = stop.reason
            raise
        self.hooks.fire("step_end", time=now)
        return now

    def run(self, max_steps: Time) -> Time:
        """Run up to ``max_steps`` steps; return the last simulated time.

        Stops early when a process raises :class:`StopSimulation`.
        """
        if max_steps < 0:
            raise SimulationError(f"max_steps must be non-negative, got {max_steps}")
        if self._running:
            raise SimulationError("engine is not re-entrant")
        self._running = True
        self.stop_reason = None
        last = self.clock.now
        error_reason: Optional[str] = None
        try:
            for __ in range(max_steps):
                last = self.step()
        except StopSimulation:
            last = self.clock.now
        except Exception as error:
            # A crashing process must still close the run exactly once so
            # trace recorders and metric collectors can flush cleanly.
            last = self.clock.now
            error_reason = f"error: {error}"
            raise
        finally:
            self._running = False
            if error_reason is not None:
                reason = error_reason
            elif self.stop_reason is not None:
                reason = self.stop_reason
            else:
                reason = "max_steps"
            self.hooks.fire("run_end", time=last, reason=reason)
        return last
