"""Spatial tiling: ownership, halos, and per-tile adjacency recompute.

A :class:`TileGrid` cuts the arena into an ``nx x ny`` rectangle grid.
Every node is *owned* by exactly one tile — the one its current
position falls in — and ownership is re-derived from positions each
step, so a mobile node crossing a tile edge is handed over explicitly
(table, stigmergy board, resident agents, previous out-edge rows).

:class:`TileAdjacency` recomputes one tile's slice of the directed
adjacency — the out-edges of the tile's owned nodes — from scratch
every step with a vectorized cell grid over the tile's *halo*: owned
nodes plus every node within the maximum radio range of the tile
rectangle.  Because radio ranges only ever shrink (batteries drain,
radios degrade), the construction-time maximum range is a sound halo
pad for the whole run.  Edges are kept as packed ``u * n + v`` int64
arrays; per-step added/removed deltas come from sorted set difference
against the previous step, which makes the tile streams concatenate
into exactly the serial topology's edge-delta stream.

The link predicate is the serial engine's, bit for bit:
``dx*dx + dy*dy <= r*r`` in IEEE doubles with ``r`` the *sender's*
current range, excluding self-loops.  The cell size and halo pad only
choose how many candidates are examined, never the outcome.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

try:  # the sharded runtime is vectorized-only; world.py gates on this
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

__all__ = ["TileGrid", "TileAdjacency", "unpack_edges"]


def _factor_tiles(count: int, width: float, height: float) -> Tuple[int, int]:
    """Split ``count`` tiles into the grid with the squarest tiles."""
    best: Optional[Tuple[float, int, int]] = None
    for ny in range(1, count + 1):
        if count % ny:
            continue
        nx = count // ny
        skew = abs(width / nx - height / ny)
        if best is None or skew < best[0]:
            best = (skew, nx, ny)
    assert best is not None
    return best[1], best[2]


class TileGrid:
    """The arena's rectangular tile decomposition.

    Built either from a shard count (``shards`` tiles factored into the
    grid with the squarest tiles) or from an explicit ``tile_size``
    (square-ish tiles of roughly that edge length; the shard count
    follows).  Ownership is clipped floor division, so positions exactly
    on the far arena edge belong to the last tile.
    """

    def __init__(
        self,
        width: float,
        height: float,
        shards: Optional[int] = None,
        tile_size: Optional[float] = None,
    ) -> None:
        if width <= 0 or height <= 0:
            raise ConfigurationError(
                f"arena must have positive extent, got {width}x{height}"
            )
        if tile_size is not None:
            if tile_size <= 0:
                raise ConfigurationError(f"tile_size must be > 0, got {tile_size}")
            nx = max(1, math.ceil(width / tile_size))
            ny = max(1, math.ceil(height / tile_size))
        else:
            count = 1 if shards is None else shards
            if count < 1:
                raise ConfigurationError(f"shards must be >= 1, got {count}")
            nx, ny = _factor_tiles(count, width, height)
        self.width = width
        self.height = height
        self.nx = nx
        self.ny = ny
        self.tiles = nx * ny
        self.tile_w = width / nx
        self.tile_h = height / ny

    def owners(self, xs, ys):
        """Owning tile of every position (vectorized, clipped)."""
        tx = _np.minimum((xs / self.tile_w).astype(_np.int64), self.nx - 1)
        ty = _np.minimum((ys / self.tile_h).astype(_np.int64), self.ny - 1)
        return ty * self.nx + tx

    def owner_of(self, x: float, y: float) -> int:
        """Owning tile of one position (scalar twin of :meth:`owners`)."""
        tx = min(int(x / self.tile_w), self.nx - 1)
        ty = min(int(y / self.tile_h), self.ny - 1)
        return ty * self.nx + tx

    def bounds(self, tile: int) -> Tuple[float, float, float, float]:
        """The tile's rectangle ``(x0, y0, x1, y1)``."""
        if not 0 <= tile < self.tiles:
            raise ConfigurationError(f"no tile {tile} in a {self.nx}x{self.ny} grid")
        tx = tile % self.nx
        ty = tile // self.nx
        return (
            tx * self.tile_w,
            ty * self.tile_h,
            (tx + 1) * self.tile_w,
            (ty + 1) * self.tile_h,
        )


def unpack_edges(packed, node_count: int) -> List[Tuple[int, int]]:
    """Packed ``u * n + v`` int64 edges as ``(u, v)`` tuples."""
    if len(packed) == 0:
        return []
    u, v = _np.divmod(packed, node_count)
    return list(zip(u.tolist(), v.tolist()))


#: offsets of the 3x3 cell neighbourhood, flattened with the cell keys.
_DX = None
_DY = None


def _neighbourhood():
    global _DX, _DY
    if _DX is None:
        offs = _np.array([-1, 0, 1], dtype=_np.int64)
        _DX = _np.repeat(offs, 3)
        _DY = _np.tile(offs, 3)
    return _DX, _DY


class TileAdjacency:
    """One tile's out-edges, recomputed per step from positions.

    ``cell`` must be at least the largest radio range any node will
    ever have (ranges only shrink), so a sender's every in-range
    receiver sits in the 3x3 cell neighbourhood around it; the halo
    ``pad`` (one cell) bounds which nodes can receive from an owned
    sender.  ``stride`` linearizes 2-D cell keys and must exceed the
    largest y-cell index by 2 so the ±1 neighbourhood never aliases.
    """

    def __init__(
        self,
        node_count: int,
        bounds: Tuple[float, float, float, float],
        cell: float,
        stride: int,
    ) -> None:
        if _np is None:  # pragma: no cover - numpy ships with the toolchain
            raise ConfigurationError("TileAdjacency requires numpy")
        if cell <= 0:
            raise ConfigurationError(f"cell must be > 0, got {cell}")
        self.node_count = node_count
        self.x0, self.y0, self.x1, self.y1 = bounds
        self.cell = cell
        self.pad = cell
        self.stride = stride
        #: current out-edges of owned nodes, packed ``u * n + v``, sorted.
        self.edges = _np.empty(0, dtype=_np.int64)

    def refresh(self, owned, ax, ay, ar):
        """Recompute owned nodes' out-edges; return ``(added, removed)``.

        ``owned`` is the sorted id array of nodes this tile owns;
        ``ax``/``ay``/``ar`` are the global position/range arrays.  The
        deltas are packed int64 arrays relative to the edge set left by
        the previous call (after any hand-over row moves).
        """
        n = self.node_count
        if owned.size == 0:
            new = _np.empty(0, dtype=_np.int64)
        else:
            cell = self.cell
            stride = self.stride
            pad = self.pad
            box = (
                (ax >= self.x0 - pad)
                & (ax <= self.x1 + pad)
                & (ay >= self.y0 - pad)
                & (ay <= self.y1 + pad)
            )
            cand = _np.flatnonzero(box)
            ckey = (ax[cand] / cell).astype(_np.int64) * stride + (
                ay[cand] / cell
            ).astype(_np.int64)
            order = _np.argsort(ckey, kind="stable")
            cand = cand[order]
            ckey = ckey[order]
            ox = (ax[owned] / cell).astype(_np.int64)
            oy = (ay[owned] / cell).astype(_np.int64)
            dx_off, dy_off = _neighbourhood()
            nk = ((ox[:, None] + dx_off) * stride + (oy[:, None] + dy_off)).ravel()
            lo = _np.searchsorted(ckey, nk, side="left")
            hi = _np.searchsorted(ckey, nk, side="right")
            lens = hi - lo
            total = int(lens.sum())
            if total:
                # Ragged gather: candidate index runs [lo, hi) per
                # neighbourhood cell, flattened without a Python loop.
                starts = _np.repeat(lo, lens)
                csum = _np.concatenate(
                    (_np.zeros(1, dtype=_np.int64), _np.cumsum(lens)[:-1])
                )
                pos = _np.arange(total, dtype=_np.int64) - _np.repeat(csum, lens)
                cidx = cand[starts + pos]
                per_sender = lens.reshape(-1, 9).sum(axis=1)
                uidx = _np.repeat(owned, per_sender)
                dxv = ax[cidx] - ax[uidx]
                dyv = ay[cidx] - ay[uidx]
                r = ar[uidx]
                # The serial predicate, bit for bit: sender range,
                # squared distance, self-loop excluded.
                ok = (dxv * dxv + dyv * dyv <= r * r) & (uidx != cidx)
                new = uidx[ok] * n + cidx[ok]
                new.sort()
            else:
                new = _np.empty(0, dtype=_np.int64)
        added = _np.setdiff1d(new, self.edges, assume_unique=True)
        removed = _np.setdiff1d(self.edges, new, assume_unique=True)
        self.edges = new
        return added, removed

    def neighbors_of(self, node: int):
        """Current out-neighbour set of an owned node."""
        n = self.node_count
        base = node * n
        edges = self.edges
        lo = _np.searchsorted(edges, base, side="left")
        hi = _np.searchsorted(edges, base + n, side="left")
        return set((edges[lo:hi] - base).tolist())

    def extract_rows(self, departing) -> Dict[int, "object"]:
        """Remove and return the out-edge rows of departing nodes.

        The rows ride the hand-over so the destination tile's next
        ``refresh`` diffs against the node's true previous edges — a
        drop-and-rebuild would emit spurious remove+add pairs that the
        serial delta stream never contains.
        """
        edges = self.edges
        if edges.size == 0 or len(departing) == 0:
            return {}
        mask = _np.isin(edges // self.node_count, departing)
        taken = edges[mask]
        self.edges = edges[~mask]
        rows: Dict[int, object] = {}
        n = self.node_count
        for node in _np.asarray(departing).tolist():
            lo = _np.searchsorted(taken, node * n, side="left")
            hi = _np.searchsorted(taken, (node + 1) * n, side="left")
            if hi > lo:
                rows[node] = taken[lo:hi]
        return rows

    def absorb_rows(self, rows) -> None:
        """Adopt previous out-edge rows arriving with handed-over nodes."""
        if len(rows) == 0:
            return
        merged = _np.concatenate([self.edges] + list(rows))
        merged.sort()
        self.edges = merged
