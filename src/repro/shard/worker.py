"""One tile's worker: local stepping plus the boundary-exchange rounds.

A :class:`TileWorker` owns everything node-local inside its tile
rectangle — routing tables, stigmergy boards, resident agents, and the
tile's slice of the adjacency — and steps them with *exactly* the
serial world's phase semantics.  Determinism carries across tiles
because every source of randomness is either node-local (meetings form
from co-located agents only), agent-local (decision rngs travel with
the agent object), or keyed-stateless (the lossy channel derives each
verdict from ``(seed, step, agent)``, so any tile computes the same
outcome for the same agent).  The only cross-tile coupling is the
three exchange rounds the coordinator drives per step:

1. **hand-over** (after motion): nodes whose position crossed a tile
   edge move banks — table state, stigmergy board, resident agents,
   and the node's previous out-edge rows (so the next delta diff is
   continuous, never a spurious remove+add burst);
2. **transfer** (after local phases 1–4a): agents whose delivered hop
   landed on another tile's node are shipped to that tile;
3. **apply** (sorted replay): every table write of the step — route
   installs by movers and drop-backs by suspected links — applies in
   global ascending agent id, the same interleaving the serial
   phase-4 loop produces, on the owning tile *and* on the
   coordinator's replica bank.

The worker is spawn-safe: :func:`worker_main` rebuilds the tile from
the pickled configs (each process generates its own topology replica —
replicated motion is cheaper than shipping positions every step) and
serves the three rounds over a pipe.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.core.comms import exchange_routing_knowledge
from repro.core.migration import ABANDONED, DELIVERED
from repro.net.generator import NetworkGenerator
from repro.routing.table import RouteEntry
from repro.routing.world import RoutingWorld
from repro.shard.tiles import TileAdjacency, TileGrid

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

__all__ = ["TileWorker", "TileReport", "worker_main", "inner_world_config"]


def inner_world_config(config):
    """The per-tile world config: serial semantics, no global services.

    Connectivity, observability and the batch engine are coordinator
    concerns (the metric needs the *global* adjacency); the tile runs
    the per-object oracle stepper, which is the semantics the sharded
    world is pinned bit-identical against.
    """
    return replace(
        config,
        batch_agents=False,
        connectivity_cache=False,
        obs=None,
        check_invariants=False,
        shards=None,
        tile_size=None,
    )


@dataclass
class TileReport:
    """One tile's per-step outcome, merged by the coordinator."""

    tile: int
    added: object  # packed int64 array
    removed: object  # packed int64 array
    #: replayable table writes: ("move", agent_id, target, routes) and
    #: ("suspect", agent_id, node, target) in local agent-id order.
    actions: List[tuple]
    #: meetings held this step (None when visiting is off).
    held: Optional[int]
    #: install attempts this step (the serial ``step_installs``).
    installs: int
    #: cumulative channel stats: (attempts, losses, losses_by_kind).
    channel: Tuple[int, int, Dict[str, int]]


class TileWorker:
    """The state and step phases of one spatial tile."""

    def __init__(
        self,
        tile: int,
        grid: TileGrid,
        generator_config,
        world_config,
        network_seed: int,
        world_seed: int,
        topology=None,
    ) -> None:
        if topology is None:
            topology = NetworkGenerator(generator_config, network_seed).generate_manet(
                incremental=False
            )
            self._advance = True  # process mode: each replica advances itself
        else:
            self._advance = False  # inline mode: the coordinator advances once
        self.tile = tile
        self.grid = grid
        self.topology = topology
        self.config = inner_world_config(world_config)
        # Build a full serial world and harvest its state: identical
        # construction order means identical rng stream consumption, so
        # every tile (and the serial reference) spawns identical agents.
        inner = RoutingWorld(topology, self.config, world_seed)
        self.bank = inner.tables
        self.field = inner.field
        self.channel = inner.channel
        self.migration = inner._migration
        self.gateways = inner._gateways
        self.n = topology.node_count
        ax, ay, ar = topology.motion_state()
        self._own = grid.owners(ax, ay)
        self.agents = {
            agent.agent_id: agent
            for agent in inner.agents
            if int(self._own[agent.location]) == tile
        }
        # Cell size: the largest range any node will ever have (ranges
        # only shrink), padded a hair so cell-index rounding at the
        # boundary can never drop a candidate from the 3x3 neighbourhood.
        rmax = float(ar.max())
        cell = rmax * 1.000001 + 1e-9
        stride = int(grid.height / cell) + 3
        self.adj = TileAdjacency(self.n, grid.bounds(tile), cell, stride)
        # Seed the adjacency from the construction-time (t=0) positions:
        # step reports then carry true motion deltas from step one on,
        # exactly like the serial topology's churn counters.
        owned = _np.flatnonzero(self._own == tile)
        self._initial, __ = self.adj.refresh(owned, ax, ay, ar)
        self._step_added = None
        self._step_removed = None
        self._step_held: Optional[int] = None
        self._step_installs = 0
        self._actions: List[tuple] = []

    def initial_edges(self):
        """Packed out-edges of this tile's nodes at t=0 (mirror seed)."""
        return self._initial

    # ------------------------------------------------------------------
    # Round 1: motion + node hand-over
    # ------------------------------------------------------------------

    def begin_step(self, now: int) -> Dict[int, List[dict]]:
        """Advance motion, re-derive ownership, emit hand-over payloads."""
        if self._advance:
            self.topology.advance_motion()
        ax, ay, __ = self.topology.motion_state()
        own_new = self.grid.owners(ax, ay)
        tile = self.tile
        departing = _np.flatnonzero((self._own == tile) & (own_new != tile))
        outbox: Dict[int, List[dict]] = {}
        if departing.size:
            by_node: Dict[int, List[int]] = {}
            for agent_id, agent in self.agents.items():
                by_node.setdefault(agent.location, []).append(agent_id)
            rows = self.adj.extract_rows(departing)
            for node in departing.tolist():
                payload = {
                    "node": node,
                    "table": self.bank.table(node).export_state(),
                    "board": self.field._boards.pop(node, None),
                    "agents": [
                        self.agents.pop(agent_id)
                        for agent_id in by_node.get(node, ())
                    ],
                    "edges": rows.get(node),
                }
                outbox.setdefault(int(own_new[node]), []).append(payload)
        self._own = own_new
        return outbox

    def _apply_handovers(self, arrivals: List[dict]) -> None:
        rows = []
        for payload in arrivals:
            node = payload["node"]
            self.bank.table(node).adopt_state(payload["table"])
            if payload["board"] is not None:
                self.field._boards[node] = payload["board"]
            for agent in payload["agents"]:
                self.agents[agent.agent_id] = agent
            if payload["edges"] is not None:
                rows.append(payload["edges"])
        if rows:
            self.adj.absorb_rows(rows)

    # ------------------------------------------------------------------
    # Round 2: local phases 1-4a
    # ------------------------------------------------------------------

    def step_core(
        self, now: int, arrivals: List[dict]
    ) -> Dict[int, List[tuple]]:
        """Expiry, adjacency, decide/meet/move; returns agent transfers."""
        self._apply_handovers(arrivals)
        self.bank.expire_all(now)
        ax, ay, ar = self.topology.motion_state()
        owned = _np.flatnonzero(self._own == self.tile)
        self._step_added, self._step_removed = self.adj.refresh(owned, ax, ay, ar)

        config = self.config
        migration = self.migration
        field = self.field
        agents = [self.agents[agent_id] for agent_id in sorted(self.agents)]
        # Phase 1: decide (or retry/wait per the migration protocol).
        neighbor_sets: Dict[int, set] = {}
        decisions: List[Optional[int]] = []
        footprint_due: List[bool] = []
        for agent in agents:
            location = agent.location
            neighbors = neighbor_sets.get(location)
            if neighbors is None:
                neighbors = neighbor_sets[location] = self.adj.neighbors_of(location)
            needs_decision, forced = migration.resolve_intent(agent, now, neighbors)
            if needs_decision:
                decisions.append(agent.decide(neighbors, now, field=field))
                footprint_due.append(True)
            else:
                decisions.append(forced)
                footprint_due.append(False)
        # Phase 2: meetings are node-local, so tile-local.
        self._step_held = None
        if config.visiting:
            self._step_held = exchange_routing_knowledge(
                agents, channel=self.channel, now=now
            )
        # Phase 3 + 4a: footprints, stays, hop attempts.  Table writes
        # (installs, suspicion drops) are *deferred* to the sorted apply
        # round so they interleave in global agent order exactly as the
        # serial phase-4 loop writes them.
        live_gateways = self.gateways
        moves: List[Tuple[object, int]] = []
        for agent, target, fresh in zip(agents, decisions, footprint_due):
            if target is None:
                agent.stay(now, here_is_gateway=agent.location in live_gateways)
            else:
                if fresh:
                    agent.leave_footprint(target, now, field)
                moves.append((agent, target))
        actions: List[tuple] = []
        transfers: Dict[int, List[tuple]] = {}
        own = self._own
        tile = self.tile
        for agent, target in moves:
            outcome = migration.attempt_hop(agent, target, now)
            if outcome != DELIVERED:
                agent.stay(now, here_is_gateway=agent.location in live_gateways)
                if outcome == ABANDONED:
                    actions.append(("suspect", agent, target))
                continue
            destination = int(own[target])
            if destination == tile:
                actions.append(("move", agent, target))
            else:
                del self.agents[agent.agent_id]
                transfers.setdefault(destination, []).append((agent, target))
        self._actions = actions
        return transfers

    # ------------------------------------------------------------------
    # Round 3: sorted apply + report
    # ------------------------------------------------------------------

    def finish_step(self, now: int, arrivals: List[tuple]) -> TileReport:
        """Apply the step's table writes in global agent order; report."""
        actions = self._actions
        for agent, target in arrivals:
            actions.append(("move", agent, target))
        actions.sort(key=lambda action: action[1].agent_id)
        live_gateways = self.gateways
        bank = self.bank
        installs = 0
        records: List[tuple] = []
        for kind, agent, target in actions:
            if kind == "suspect":
                node = agent.location
                dropped = bank.table(node).drop_routes_via_next_hop(target)
                agent.overhead.routes_invalidated += dropped
                records.append(("suspect", agent.agent_id, node, target))
                continue
            came_from = agent.move_to(target, now, target in live_gateways)
            self.agents[agent.agent_id] = agent
            table = bank.table(target)
            rejected_before = table.guard_rejections
            routes = agent.installable_routes(came_from)
            for gateway, next_hop, hops, seen_at in routes:
                agent.overhead.routes_installed += 1
                installs += 1
                table.install(
                    RouteEntry(
                        gateway=gateway,
                        next_hop=next_hop,
                        hops=hops,
                        installed_at=now,
                        gateway_seen_at=seen_at,
                        sequence=seen_at,
                    )
                )
            agent.overhead.routes_rejected += table.guard_rejections - rejected_before
            records.append(("move", agent.agent_id, target, routes))
        self._actions = []
        stats = self.channel.stats
        return TileReport(
            tile=self.tile,
            added=self._step_added,
            removed=self._step_removed,
            actions=records,
            held=self._step_held,
            installs=installs,
            channel=(stats.attempts, stats.losses, dict(stats.losses_by_kind)),
        )

    def finalize(self) -> Tuple[List[object], Tuple[int, int, Dict[str, int]]]:
        """Final resident agents + cumulative channel stats."""
        stats = self.channel.stats
        agents = [self.agents[agent_id] for agent_id in sorted(self.agents)]
        return agents, (stats.attempts, stats.losses, dict(stats.losses_by_kind))


def worker_main(conn, payload: dict) -> None:
    """Process-mode entry: rebuild the tile, serve the exchange rounds.

    Top-level and driven entirely by picklable state, so it works under
    the ``spawn`` start method (the only one safe to combine with an
    arbitrary host application).
    """
    worker = TileWorker(
        tile=payload["tile"],
        grid=payload["grid"],
        generator_config=payload["generator_config"],
        world_config=payload["world_config"],
        network_seed=payload["network_seed"],
        world_seed=payload["world_seed"],
    )
    try:
        # Ready handshake doubles as the mirror seed.
        conn.send(worker.initial_edges())
        while True:
            message = conn.recv()
            command = message[0]
            if command == "begin":
                conn.send(worker.begin_step(message[1]))
            elif command == "core":
                conn.send(worker.step_core(message[1], message[2]))
            elif command == "finish":
                conn.send(worker.finish_step(message[1], message[2]))
            elif command == "finalize":
                conn.send(worker.finalize())
            elif command == "close":
                break
            else:  # pragma: no cover - protocol bug guard
                raise RuntimeError(f"unknown shard command {command!r}")
    finally:
        conn.close()
