"""Sharded arena: spatial tiles, boundary exchange, 10k+-node runs.

The paper's world is 250–300 nodes; production scale is tens of
thousands.  Every piece of per-step state in the routing world is
node-local — tables, stigmergy boards, resident agents, out-edges — so
the arena partitions into rectangular spatial tiles that step
independently and exchange only boundary state: node hand-overs when
motion crosses a tile edge, agent hand-offs when a delivered hop lands
on another tile, and per-tile edge deltas (the
:meth:`~repro.net.topology.Topology.take_edge_delta` wire format)
merged into one global stream for the connectivity metric and
observability.

``ShardedRoutingWorld`` is bit-identical to the serial
:class:`~repro.routing.world.RoutingWorld` at *any* shard count — the
property suite pins single-shard and multi-shard runs against the
serial results, tables, and obs metrics.
"""

from repro.shard.tiles import TileAdjacency, TileGrid
from repro.shard.world import ShardedRoutingWorld, run_sharded_routing

__all__ = [
    "TileAdjacency",
    "TileGrid",
    "ShardedRoutingWorld",
    "run_sharded_routing",
]
