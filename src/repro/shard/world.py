"""The sharded routing world: tile workers + a thin global coordinator.

:class:`ShardedRoutingWorld` steps ``config.shards`` spatial tiles
(each a :class:`~repro.shard.worker.TileWorker`) through the serial
world's per-step phases, exchanging only boundary state between
rounds.  The coordinator itself holds no arena: it routes hand-over
and agent-transfer payloads between tiles, merges the per-tile edge
deltas into a mirror of the global adjacency, and replays every table
write of the step onto a replica :class:`~repro.routing.table.TableBank`
in global agent order — giving the connectivity metric, observability,
and result aggregation exactly the serial world's inputs.

Two execution modes share the wire protocol:

* **inline** (default): the tiles run in the coordinator process over
  one shared topology.  On a single core this is already the fast
  path — each tile recomputes adjacency only over its halo, so the
  per-step link work drops from O(arena) to O(tile + halo) per tile.
* **processes**: each tile runs in a spawned worker process with its
  own topology replica (replicated seeded motion is cheaper than
  shipping positions), talking over pipes.

Both are bit-identical to :class:`~repro.routing.world.RoutingWorld`
at any shard count; the property suite pins results, tables, and obs
metrics.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Optional, Tuple

from repro.core.overhead import aggregate_overheads
from repro.errors import ConfigurationError
from repro.net.channel import ChannelStats
from repro.net.generator import GeneratorConfig, NetworkGenerator
from repro.net.topology import TopologyDelta
from repro.obs.collector import ObsCollector
from repro.routing.connectivity import FunctionalConnectivity, connectivity_fraction
from repro.routing.table import RouteEntry, TableBank
from repro.routing.world import RoutingResult, RoutingWorldConfig
from repro.shard.tiles import TileGrid, unpack_edges
from repro.shard.worker import TileWorker, worker_main
from repro.sim.engine import TimeStepEngine
from repro.types import Time

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

__all__ = ["ShardedRoutingWorld", "run_sharded_routing"]

#: agent kinds whose phases are node/agent-local (no global state reads
#: beyond the neighbourhood the tile already has).
_SUPPORTED_KINDS = ("oldest-node", "random")


def _check_supported(config: RoutingWorldConfig) -> None:
    """Reject configurations whose subsystems read global state.

    The sharded world covers the scaling surface — the core routing
    protocol with visiting/stigmergy, lossy channels, table guards and
    TTLs.  Subsystems that observe or mutate the whole arena each step
    (fault injection, health quarantine, the traffic data plane, the
    pheromone field, event/profile observability, the invariant
    walker) stay serial-only; asking for them here is a configuration
    error, not a silent downgrade.  ``check_invariants=None`` (the
    ambient default, which tests force on via the environment) is
    treated as *disabled* — only an explicit ``True`` raises.
    """
    if _np is None:
        raise ConfigurationError("sharded world requires numpy")
    if config.agent_kind not in _SUPPORTED_KINDS:
        raise ConfigurationError(
            f"sharded world supports agent kinds {_SUPPORTED_KINDS}, "
            f"got {config.agent_kind!r}"
        )
    if config.fault_plan is not None:
        raise ConfigurationError("sharded world does not support fault plans")
    if config.health is not None:
        raise ConfigurationError("sharded world does not support health monitoring")
    if config.traffic is not None:
        raise ConfigurationError("sharded world does not support the traffic plane")
    if config.batch_agents is True:
        raise ConfigurationError(
            "sharded tiles run the per-object stepper; batch_agents=True "
            "cannot be honoured (leave it unset)"
        )
    if config.check_invariants is True:
        raise ConfigurationError(
            "the invariant walker needs the full serial world; "
            "run with check_invariants unset (treated as disabled) or False"
        )
    if config.obs is not None and (config.obs.events or config.obs.profile):
        raise ConfigurationError(
            "sharded world supports metrics-only observability "
            "(events/profile need the serial step loop)"
        )


class _MirrorTopology:
    """The coordinator's view of the global adjacency.

    Duck-types the slice of :class:`~repro.net.topology.Topology` the
    connectivity metric reads: adjacency sets, gateway/node ids,
    liveness (nothing goes down in sharded scope), and the
    single-consumer edge-delta stream.  Fed per step from the merged
    tile deltas; the first drained delta is ``full`` — exactly like a
    freshly built serial topology — so the functional-connectivity
    cache opens with its flush path.
    """

    def __init__(
        self, node_count: int, gateways: Tuple[int, ...], initial_edges
    ) -> None:
        self.node_count = node_count
        self._gateways = list(gateways)
        self._adj: Dict[int, set] = {i: set() for i in range(node_count)}
        for u, v in initial_edges:
            self._adj[u].add(v)
        self._added: List[Tuple[int, int]] = []
        self._removed: List[Tuple[int, int]] = []
        self._full = True

    @property
    def gateway_ids(self) -> List[int]:
        return list(self._gateways)

    @property
    def node_ids(self):
        return range(self.node_count)

    @property
    def down_ids(self):
        return frozenset()

    def is_down(self, node: int) -> bool:
        return False

    def adjacency_view(self) -> Dict[int, set]:
        return self._adj

    def apply(self, added, removed) -> None:
        """Fold one step's merged tile deltas into the adjacency."""
        adj = self._adj
        for u, v in added:
            adj[u].add(v)
        for u, v in removed:
            adj[u].discard(v)
        self._added.extend(added)
        self._removed.extend(removed)

    def take_edge_delta(self) -> TopologyDelta:
        delta = TopologyDelta(
            full=self._full, added=self._added, removed=self._removed
        )
        self._full = False
        self._added = []
        self._removed = []
        return delta


class _InlineHandle:
    """Drives a tile worker in-process with the pipe protocol's shape."""

    def __init__(self, worker: TileWorker) -> None:
        self.worker = worker
        self._pending = None

    def initial_edges(self):
        return self.worker.initial_edges()

    def send(self, message) -> None:
        command = message[0]
        worker = self.worker
        if command == "begin":
            self._pending = worker.begin_step(message[1])
        elif command == "core":
            self._pending = worker.step_core(message[1], message[2])
        elif command == "finish":
            self._pending = worker.finish_step(message[1], message[2])
        elif command == "finalize":
            self._pending = worker.finalize()
        else:  # pragma: no cover - protocol bug guard
            raise RuntimeError(f"unknown shard command {command!r}")

    def recv(self):
        pending, self._pending = self._pending, None
        return pending

    def close(self) -> None:
        pass


class _ProcessHandle:
    """One spawned tile worker behind a duplex pipe."""

    def __init__(self, ctx, payload: dict) -> None:
        parent_conn, child_conn = ctx.Pipe()
        self._conn = parent_conn
        self._process = ctx.Process(
            target=worker_main, args=(child_conn, payload), daemon=True
        )
        self._process.start()
        child_conn.close()
        self._initial = parent_conn.recv()  # ready handshake

    def initial_edges(self):
        return self._initial

    def send(self, message) -> None:
        self._conn.send(message)

    def recv(self):
        return self._conn.recv()

    def close(self) -> None:
        try:
            self._conn.send(("close",))
        except (BrokenPipeError, OSError):  # pragma: no cover - dead worker
            pass
        self._conn.close()
        self._process.join(timeout=60)


class ShardedRoutingWorld:
    """One seeded routing run, stepped as spatial tiles."""

    def __init__(
        self,
        generator_config: GeneratorConfig,
        config: RoutingWorldConfig,
        network_seed: int,
        seed: int,
        processes: bool = False,
    ) -> None:
        _check_supported(config)
        if generator_config.gateway_count < 1:
            raise ConfigurationError("routing world needs at least one gateway")
        self.generator_config = generator_config
        self.config = config
        self.grid = TileGrid(
            generator_config.arena_width,
            generator_config.arena_height,
            shards=config.shards,
            tile_size=config.tile_size,
        )
        n = generator_config.node_count
        self.node_count = n
        self.engine = TimeStepEngine()
        #: the replica bank — fed the same writes in the same order as
        #: the tiles' banks, so metric and aggregation read serial state.
        self.tables = TableBank(
            n, ttl=config.route_ttl, guard=config.table_guard
        )
        self.result = RoutingResult(converged_after=config.converged_after)
        # The generator lays gateways out first, so their ids are fixed
        # by the config alone — the coordinator never needs a topology.
        gateways = tuple(range(generator_config.gateway_count))
        self._topology = None
        if processes:
            ctx = multiprocessing.get_context("spawn")
            self._handles: List = [
                _ProcessHandle(
                    ctx,
                    {
                        "tile": tile,
                        "grid": self.grid,
                        "generator_config": generator_config,
                        "world_config": config,
                        "network_seed": network_seed,
                        "world_seed": seed,
                    },
                )
                for tile in range(self.grid.tiles)
            ]
        else:
            topology = NetworkGenerator(
                generator_config, network_seed
            ).generate_manet(incremental=False)
            self._topology = topology
            self._handles = [
                _InlineHandle(
                    TileWorker(
                        tile,
                        self.grid,
                        generator_config,
                        config,
                        network_seed,
                        seed,
                        topology=topology,
                    )
                )
                for tile in range(self.grid.tiles)
            ]
        initial = [
            pair
            for handle in self._handles
            for pair in unpack_edges(handle.initial_edges(), n)
        ]
        self._mirror = _MirrorTopology(n, gateways, initial)
        self._conn_cache: Optional[FunctionalConnectivity] = None
        if config.connectivity_cache:
            self._conn_cache = FunctionalConnectivity(
                self._mirror, self.tables, config.walk_ttl
            )
        self._obs: Optional[ObsCollector] = None
        if config.obs is not None and config.obs.enabled:
            self._obs = ObsCollector(config.obs, self.engine, scenario="routing")
            self._obs_last_losses = 0
            self._obs_last_cache = (0, 0, 0)
        self.agents: List = []
        self._closed = False
        self.engine.add_process(self._step)

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def _step(self, now: Time) -> None:
        handles = self._handles
        if self._topology is not None:
            # Inline mode shares one topology; advance it once here
            # (process-mode replicas advance themselves in round 1).
            self._topology.advance_motion()
        # Round 1: motion + node hand-over.
        for handle in handles:
            handle.send(("begin", now))
        outboxes = [handle.recv() for handle in handles]
        inboxes: List[List[dict]] = [[] for __ in handles]
        for outbox in outboxes:
            for destination, payloads in outbox.items():
                inboxes[destination].extend(payloads)
        # Round 2: local phases 1-4a + agent transfer.
        for handle, inbox in zip(handles, inboxes):
            handle.send(("core", now, inbox))
        transfer_maps = [handle.recv() for handle in handles]
        arrivals: List[List[tuple]] = [[] for __ in handles]
        for transfers in transfer_maps:
            for destination, items in transfers.items():
                arrivals[destination].extend(items)
        # Round 3: globally sorted table writes + reports.
        for handle, batch in zip(handles, arrivals):
            handle.send(("finish", now, batch))
        reports = [handle.recv() for handle in handles]
        self._apply_reports(now, reports)

    def _apply_reports(self, now: Time, reports) -> None:
        """Merge tile reports into the global mirror, replica and obs.

        Everything here reproduces the serial ``_step`` tail: the same
        writes in the same (agent-id) order against the replica bank,
        the same hook fires, the same obs pushes, the same metric
        evaluation over the merged adjacency.
        """
        n = self.node_count
        config = self.config
        obs = self._obs
        added: List[Tuple[int, int]] = []
        removed: List[Tuple[int, int]] = []
        for report in reports:
            added.extend(unpack_edges(report.added, n))
            removed.extend(unpack_edges(report.removed, n))
        self._mirror.apply(added, removed)
        if self._conn_cache is None:
            self._mirror.take_edge_delta()  # single consumer: keep it drained
        # Replica: expiry first (as at the serial step top), then the
        # step's writes in global agent order — identical interleaving
        # to the serial phase-4 loop, hence identical guard outcomes.
        self.tables.expire_all(now)
        actions = [action for report in reports for action in report.actions]
        actions.sort(key=lambda action: action[1])
        hooks = self.engine.hooks
        for action in actions:
            if action[0] == "suspect":
                __, agent_id, node, target = action
                dropped = self.tables.table(node).drop_routes_via_next_hop(target)
                hooks.fire(
                    "link_suspected",
                    time=now,
                    node=node,
                    neighbor=target,
                    dropped=dropped,
                )
            else:
                __, agent_id, target, routes = action
                if obs is not None:
                    hooks.fire("agent_moved", time=now, agent=agent_id, to=target)
                table = self.tables.table(target)
                for gateway, next_hop, hops, seen_at in routes:
                    table.install(
                        RouteEntry(
                            gateway=gateway,
                            next_hop=next_hop,
                            hops=hops,
                            installed_at=now,
                            gateway_seen_at=seen_at,
                            sequence=seen_at,
                        )
                    )
        if config.visiting:
            held = sum(report.held for report in reports)
            self.result.meetings += held
            if obs is not None:
                obs.meetings(now, held)
        if obs is not None:
            obs.routes_installed(
                now, sum(report.installs for report in reports)
            )
            losses = sum(report.channel[1] for report in reports)
            obs.channel_losses(now, losses - self._obs_last_losses)
            self._obs_last_losses = losses
        # Metric, over exactly the serial world's inputs.
        if self._conn_cache is not None:
            fraction = len(self._conn_cache.connected()) / n
        else:
            fraction = connectivity_fraction(
                self._mirror, self.tables, config.walk_ttl
            )
        if obs is not None:
            obs.topology_churn(
                now, added=len(added), removed=len(removed), rebucketed=0
            )
            if self._conn_cache is not None:
                cache_stats = self._conn_cache.stats
                last_cache = self._obs_last_cache
                obs.connectivity_cache(
                    now,
                    hits=cache_stats.hits - last_cache[0],
                    walks=cache_stats.walks - last_cache[1],
                    invalidated=cache_stats.invalidated - last_cache[2],
                )
                self._obs_last_cache = (
                    cache_stats.hits,
                    cache_stats.walks,
                    cache_stats.invalidated,
                )
        self.result.times.append(now)
        self.result.connectivity.append(fraction)
        hooks.fire("connectivity_recorded", time=now, fraction=fraction)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run(self) -> RoutingResult:
        """Run the configured number of steps; return the result."""
        try:
            steps = self.engine.run(self.config.total_steps)
            for handle in self._handles:
                handle.send(("finalize",))
            finals = [handle.recv() for handle in self._handles]
        finally:
            self.close()
        agents = [agent for tile_agents, __ in finals for agent in tile_agents]
        agents.sort(key=lambda agent: agent.agent_id)
        self.agents = agents
        team_overhead = aggregate_overheads(agent.overhead for agent in agents)
        self.result.overhead = team_overhead.per_decision()
        self.result.guard_rejections = self.tables.total_guard_rejections()
        if self._obs is not None:
            stats = ChannelStats()
            for __, (attempts, losses, by_kind) in finals:
                stats.attempts += attempts
                stats.losses += losses
                for kind, count in by_kind.items():
                    stats.losses_by_kind[kind] = (
                        stats.losses_by_kind.get(kind, 0) + count
                    )
            self.result.obs = self._obs.finalize(
                overhead=team_overhead,
                channel_stats=stats,
                agents_total=len(agents),
                agents_alive=len(agents),
                steps=steps,
            )
        return self.result

    def close(self) -> None:
        """Release the tile workers (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for handle in self._handles:
            handle.close()


def run_sharded_routing(
    generator_config: GeneratorConfig,
    config: RoutingWorldConfig,
    network_seed: int,
    seed: int,
    processes: bool = False,
) -> RoutingResult:
    """Convenience: build a sharded world and run it."""
    return ShardedRoutingWorld(
        generator_config, config, network_seed, seed, processes=processes
    ).run()
