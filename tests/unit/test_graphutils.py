"""Unit tests for the directed-graph utilities."""

from repro.net.graphutils import (
    bfs_hops,
    edge_count,
    is_strongly_connected,
    reachable_from,
    relabel_compact,
    restrict,
    strongly_connected_components,
)


def adj(*edges, nodes=None):
    """Build an adjacency dict from edge pairs."""
    result = {}
    if nodes:
        for n in nodes:
            result[n] = set()
    for a, b in edges:
        result.setdefault(a, set()).add(b)
        result.setdefault(b, set())
    return result


class TestEdgeCount:
    def test_empty(self):
        assert edge_count({}) == 0

    def test_counts_directed_edges(self):
        assert edge_count(adj((0, 1), (1, 0), (1, 2))) == 3


class TestReachableFrom:
    def test_includes_start(self):
        assert reachable_from(adj(nodes=[0]), 0) == {0}

    def test_follows_direction(self):
        graph = adj((0, 1), (1, 2))
        assert reachable_from(graph, 0) == {0, 1, 2}
        assert reachable_from(graph, 2) == {2}

    def test_cycle(self):
        graph = adj((0, 1), (1, 2), (2, 0))
        assert reachable_from(graph, 1) == {0, 1, 2}


class TestStrongConnectivity:
    def test_empty_graph_is_strong(self):
        assert is_strongly_connected({})

    def test_single_node(self):
        assert is_strongly_connected({0: set()})

    def test_cycle_is_strong(self):
        assert is_strongly_connected(adj((0, 1), (1, 2), (2, 0)))

    def test_dag_is_not_strong(self):
        assert not is_strongly_connected(adj((0, 1), (1, 2)))

    def test_two_cycles_bridged_one_way(self):
        graph = adj((0, 1), (1, 0), (2, 3), (3, 2), (1, 2))
        assert not is_strongly_connected(graph)


class TestSCC:
    def test_single_component(self):
        components = strongly_connected_components(adj((0, 1), (1, 2), (2, 0)))
        assert components == [{0, 1, 2}]

    def test_multiple_components(self):
        graph = adj((0, 1), (1, 0), (1, 2), (2, 3), (3, 2))
        components = strongly_connected_components(graph)
        assert sorted(map(sorted, components)) == [[0, 1], [2, 3]]

    def test_singletons(self):
        graph = adj((0, 1), (1, 2))
        components = strongly_connected_components(graph)
        assert sorted(map(sorted, components)) == [[0], [1], [2]]

    def test_every_node_in_exactly_one_component(self):
        graph = adj((0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3), (4, 5))
        components = strongly_connected_components(graph)
        seen = [n for c in components for n in c]
        assert sorted(seen) == sorted(graph)


class TestBfsHops:
    def test_start_is_zero(self):
        assert bfs_hops(adj(nodes=[0]), 0) == {0: 0}

    def test_hop_counts(self):
        graph = adj((0, 1), (1, 2), (0, 2), (2, 3))
        hops = bfs_hops(graph, 0)
        assert hops == {0: 0, 1: 1, 2: 1, 3: 2}

    def test_unreachable_absent(self):
        graph = adj((0, 1), nodes=[0, 1, 2])
        assert 2 not in bfs_hops(graph, 0)


class TestRestrictRelabel:
    def test_restrict_drops_outside_edges(self):
        graph = adj((0, 1), (1, 2), (2, 0))
        sub = restrict(graph, [0, 1])
        assert sub == {0: {1}, 1: set()}

    def test_relabel_compact(self):
        graph = adj((5, 9), (9, 5))
        relabeled = relabel_compact(graph, [5, 9])
        assert relabeled == {0: {1}, 1: {0}}
