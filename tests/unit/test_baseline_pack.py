"""Baseline packs: envelope construction, persistence, drift detection."""

import pytest

from repro.analysis.series import TimeSeries
from repro.errors import ExperimentError
from repro.experiments.report import ExperimentReport
from repro.service.baseline_pack import (
    build_pack,
    check_drift,
    check_report,
    load_pack,
    metrics_from_report,
    save_pack,
)


def make_report(final=0.9, rows=2):
    report = ExperimentReport(
        experiment_id="fig7",
        title="t",
        paper_claim="c",
        columns=["a", "b"],
        rows=[[1.0, 2.0]] * rows,
    )
    report.series["conn"] = TimeSeries([0, 1, 2], [0.1, 0.5, final])
    return report


class TestMetrics:
    def test_series_mean_final_and_table_shape(self):
        metrics = metrics_from_report(make_report())
        assert metrics["table.rows"] == 2.0
        assert metrics["table.columns"] == 2.0
        assert metrics["series.conn.final"] == pytest.approx(0.9)
        assert metrics["series.conn.mean"] == pytest.approx(0.5)

    def test_empty_series_is_zero(self):
        report = make_report()
        report.series["empty"] = TimeSeries([], [])
        metrics = metrics_from_report(report)
        assert metrics["series.empty.mean"] == 0.0
        assert metrics["series.empty.final"] == 0.0


class TestPackRoundTrip:
    def test_save_load(self, tmp_path):
        pack = build_pack("p", "abcd1234", {"fig7-s1": make_report()})
        path = save_pack(pack, tmp_path / "pack.json")
        assert load_pack(path) == pack

    def test_zero_tolerance_rejected(self):
        with pytest.raises(ExperimentError, match="tolerance"):
            build_pack("p", "abcd", {}, tolerance=0)

    def test_load_corrupt_pack(self, tmp_path):
        path = tmp_path / "pack.json"
        path.write_text("{nope")
        with pytest.raises(ExperimentError, match="cannot load"):
            load_pack(path)

    def test_load_wrong_schema(self, tmp_path):
        path = tmp_path / "pack.json"
        path.write_text('{"schema": 99, "experiments": {}}')
        with pytest.raises(ExperimentError, match="unsupported schema"):
            load_pack(path)

    def test_checked_in_pack_loads(self):
        import pathlib

        baselines = pathlib.Path(__file__).parents[2] / "baselines"
        packs = sorted(baselines.glob("*.json"))
        assert packs, "baselines/ should ship at least one pack"
        for path in packs:
            load_pack(path)


class TestDriftCheck:
    def test_in_envelope_is_clean(self):
        pack = build_pack("p", "fp", {"u": make_report()})
        assert check_report(pack, "u", make_report()) == []

    def test_metric_outside_tolerance_flagged(self):
        pack = build_pack("p", "fp", {"u": make_report(final=0.9)}, tolerance=0.01)
        violations = check_report(pack, "u", make_report(final=0.5))
        assert violations and "series.conn.final" in violations[0]

    def test_within_tolerance_band_passes(self):
        pack = build_pack("p", "fp", {"u": make_report(final=1.0)}, tolerance=0.10)
        assert check_report(pack, "u", make_report(final=1.05)) == []

    def test_unknown_label_flagged(self):
        pack = build_pack("p", "fp", {"u": make_report()})
        violations = check_report(pack, "other", make_report())
        assert violations and "not in baseline pack" in violations[0]

    def test_metric_asymmetry_flagged_both_ways(self):
        pack = build_pack("p", "fp", {"u": make_report()})
        gained = make_report()
        gained.series["extra"] = TimeSeries([0], [1.0])
        assert any("missing from pack" in v for v in check_report(pack, "u", gained))

        lost = make_report()
        del lost.series["conn"]
        assert any("missing from run" in v for v in check_report(pack, "u", lost))

    def test_table_shape_change_flagged(self):
        pack = build_pack("p", "fp", {"u": make_report(rows=2)}, tolerance=0.01)
        violations = check_report(pack, "u", make_report(rows=5))
        assert any("table.rows" in v for v in violations)

    def test_check_drift_covers_every_label(self):
        pack = build_pack(
            "p", "fp", {"u1": make_report(), "u2": make_report(final=0.9)},
            tolerance=0.01,
        )
        reports = {"u1": make_report(), "u2": make_report(final=0.2)}
        violations = check_drift(pack, reports)
        assert violations and all(v.startswith("u2:") for v in violations)
