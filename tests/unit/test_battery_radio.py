"""Unit tests for battery and radio-range models."""

import pytest

from repro.errors import ConfigurationError
from repro.net.battery import Battery, ExponentialDrain, LinearDrain, NoDrain
from repro.net.radio import BatteryCoupledRange, FixedRange, HeterogeneousRange


class TestBattery:
    def test_initial_level(self):
        assert Battery(NoDrain()).level == 1.0
        assert Battery(NoDrain(), level=0.5).level == 0.5

    def test_invalid_level(self):
        with pytest.raises(ConfigurationError):
            Battery(NoDrain(), level=1.5)
        with pytest.raises(ConfigurationError):
            Battery(NoDrain(), level=-0.1)

    def test_no_drain_preserves_level(self):
        battery = Battery(NoDrain(), level=0.7)
        for __ in range(100):
            battery.step()
        assert battery.level == 0.7

    def test_linear_drain(self):
        battery = Battery(LinearDrain(0.1))
        battery.step()
        assert battery.level == pytest.approx(0.9)

    def test_linear_drain_floors_at_zero(self):
        battery = Battery(LinearDrain(0.4))
        for __ in range(5):
            battery.step()
        assert battery.level == 0.0
        assert battery.depleted

    def test_linear_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearDrain(-0.1)

    def test_exponential_drain(self):
        battery = Battery(ExponentialDrain(0.5))
        battery.step()
        assert battery.level == pytest.approx(0.5)
        battery.step()
        assert battery.level == pytest.approx(0.25)

    def test_exponential_rate_bounds(self):
        with pytest.raises(ConfigurationError):
            ExponentialDrain(1.0)
        with pytest.raises(ConfigurationError):
            ExponentialDrain(-0.2)

    def test_not_depleted_initially(self):
        assert not Battery(LinearDrain(0.01)).depleted


class TestFixedRange:
    def test_value(self):
        assert FixedRange(25.0).current_range() == 25.0

    def test_positive_required(self):
        with pytest.raises(ConfigurationError):
            FixedRange(0)


class TestHeterogeneousRange:
    def test_base_range(self):
        assert HeterogeneousRange(40.0).current_range() == 40.0

    def test_degradation(self):
        radio = HeterogeneousRange(100.0)
        radio.degrade(0.3)
        assert radio.current_range() == pytest.approx(70.0)
        assert radio.degradation == 0.3

    def test_degradation_replaces(self):
        radio = HeterogeneousRange(100.0, degradation=0.5)
        radio.degrade(0.1)
        assert radio.current_range() == pytest.approx(90.0)

    def test_invalid_degradation(self):
        with pytest.raises(ConfigurationError):
            HeterogeneousRange(10.0, degradation=1.0)
        radio = HeterogeneousRange(10.0)
        with pytest.raises(ConfigurationError):
            radio.degrade(-0.1)


class TestBatteryCoupledRange:
    def test_full_battery_full_range(self):
        radio = BatteryCoupledRange(80.0, Battery(NoDrain()))
        assert radio.current_range() == pytest.approx(80.0)

    def test_range_shrinks_with_battery(self):
        battery = Battery(LinearDrain(0.75), level=1.0)
        radio = BatteryCoupledRange(100.0, battery, exponent=0.5)
        battery.step()  # level 0.25
        assert radio.current_range() == pytest.approx(50.0)

    def test_floor(self):
        battery = Battery(LinearDrain(1.0))
        radio = BatteryCoupledRange(100.0, battery, floor=20.0)
        battery.step()  # level 0
        assert radio.current_range() == 20.0

    def test_exponent_shape(self):
        battery = Battery(NoDrain(), level=0.25)
        sqrt_radio = BatteryCoupledRange(100.0, battery, exponent=0.5)
        linear_radio = BatteryCoupledRange(100.0, battery, exponent=1.0)
        assert sqrt_radio.current_range() > linear_radio.current_range()

    def test_invalid_parameters(self):
        battery = Battery(NoDrain())
        with pytest.raises(ConfigurationError):
            BatteryCoupledRange(0, battery)
        with pytest.raises(ConfigurationError):
            BatteryCoupledRange(10, battery, exponent=0)
        with pytest.raises(ConfigurationError):
            BatteryCoupledRange(10, battery, floor=-1)
