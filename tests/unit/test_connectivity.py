"""Unit tests for the connectivity metric's validity walk."""

from repro.net.manual import fixed_topology
from repro.routing.connectivity import (
    connected_nodes,
    connectivity_fraction,
    walk_to_gateway,
)
from repro.routing.table import RouteEntry, TableBank


def install(bank, node, gateway, next_hop, hops=1, installed_at=1):
    bank.table(node).install(
        RouteEntry(gateway=gateway, next_hop=next_hop, hops=hops, installed_at=installed_at)
    )


def line_with_gateway():
    """0(gw) - 1 - 2 - 3 bidirectional."""
    edges = []
    for a, b in ((0, 1), (1, 2), (2, 3)):
        edges.extend([(a, b), (b, a)])
    return fixed_topology(4, edges, gateways=[0])


class TestWalk:
    def test_gateway_is_trivially_connected(self):
        topology = line_with_gateway()
        bank = TableBank(4)
        assert walk_to_gateway(0, topology, bank) == [0]

    def test_no_route_fails(self):
        topology = line_with_gateway()
        bank = TableBank(4)
        assert walk_to_gateway(3, topology, bank) is None

    def test_valid_chain(self):
        topology = line_with_gateway()
        bank = TableBank(4)
        install(bank, 3, gateway=0, next_hop=2, hops=3)
        install(bank, 2, gateway=0, next_hop=1, hops=2)
        install(bank, 1, gateway=0, next_hop=0, hops=1)
        assert walk_to_gateway(3, topology, bank) == [3, 2, 1, 0]

    def test_broken_link_invalidates_route(self):
        # Route points 1 -> 9... wait, point next hop at a non-neighbour.
        topology = line_with_gateway()
        bank = TableBank(4)
        install(bank, 3, gateway=0, next_hop=1)  # 1 is NOT a neighbour of 3
        assert walk_to_gateway(3, topology, bank) is None

    def test_cycle_detected(self):
        topology = line_with_gateway()
        bank = TableBank(4)
        install(bank, 2, gateway=0, next_hop=3)
        install(bank, 3, gateway=0, next_hop=2)
        assert walk_to_gateway(2, topology, bank) is None

    def test_ttl_exhaustion(self):
        topology = line_with_gateway()
        bank = TableBank(4)
        install(bank, 3, gateway=0, next_hop=2, hops=3)
        install(bank, 2, gateway=0, next_hop=1, hops=2)
        install(bank, 1, gateway=0, next_hop=0, hops=1)
        assert walk_to_gateway(3, topology, bank, walk_ttl=2) is None
        assert walk_to_gateway(3, topology, bank, walk_ttl=3) is not None

    def test_exact_ttl_path_reaches_gateway_on_last_hop(self):
        # The gateway test happens before each hop AND once after the
        # final hop, so a path of exactly walk_ttl hops must succeed.
        topology = line_with_gateway()
        bank = TableBank(4)
        install(bank, 3, gateway=0, next_hop=2, hops=3)
        install(bank, 2, gateway=0, next_hop=1, hops=2)
        install(bank, 1, gateway=0, next_hop=0, hops=1)
        assert walk_to_gateway(3, topology, bank, walk_ttl=3) == [3, 2, 1, 0]

    def test_dead_end_mid_path(self):
        # Node 2 routes into node 1, whose only entry points at a
        # non-neighbour: the walk strands there, not at the start.
        topology = line_with_gateway()
        bank = TableBank(4)
        install(bank, 2, gateway=0, next_hop=1, hops=2)
        install(bank, 1, gateway=0, next_hop=3, hops=1)  # 3 not adjacent to 1
        assert walk_to_gateway(2, topology, bank) is None

    def test_crashed_gateway_fails_walk(self):
        topology = line_with_gateway()
        bank = TableBank(4)
        install(bank, 1, gateway=0, next_hop=0, hops=1)
        assert walk_to_gateway(1, topology, bank) == [1, 0]
        topology.set_node_down(0)
        # The gateway died mid-run: its in-edges are gone and it no
        # longer counts as a live terminal.
        assert walk_to_gateway(1, topology, bank) is None
        assert connected_nodes(topology, bank) == set()

    def test_crashed_intermediate_node_breaks_chain(self):
        topology = line_with_gateway()
        bank = TableBank(4)
        install(bank, 3, gateway=0, next_hop=2, hops=3)
        install(bank, 2, gateway=0, next_hop=1, hops=2)
        install(bank, 1, gateway=0, next_hop=0, hops=1)
        topology.set_node_down(2)
        assert walk_to_gateway(3, topology, bank) is None
        assert walk_to_gateway(1, topology, bank) == [1, 0]

    def test_stale_entry_skipped_for_valid_one(self):
        topology = line_with_gateway()
        bank = TableBank(4)
        # Fresher entry points at a non-neighbour (link moved away);
        # the older entry still works and must be used.
        install(bank, 1, gateway=0, next_hop=3, installed_at=9)
        install(bank, 1, gateway=5, next_hop=0, installed_at=5)
        assert walk_to_gateway(1, topology, bank) == [1, 0]


class TestConnectedNodes:
    def test_gateways_always_counted(self):
        topology = line_with_gateway()
        bank = TableBank(4)
        assert connected_nodes(topology, bank) == {0}

    def test_path_members_counted(self):
        topology = line_with_gateway()
        bank = TableBank(4)
        install(bank, 3, gateway=0, next_hop=2, hops=3)
        install(bank, 2, gateway=0, next_hop=1, hops=2)
        install(bank, 1, gateway=0, next_hop=0, hops=1)
        assert connected_nodes(topology, bank) == {0, 1, 2, 3}

    def test_fraction(self):
        topology = line_with_gateway()
        bank = TableBank(4)
        install(bank, 1, gateway=0, next_hop=0, hops=1)
        assert connectivity_fraction(topology, bank) == 0.5

    def test_directed_link_respected(self):
        # 1 -> 0 exists but 0 -> 1 doesn't; a route from 0 via 1 is dead.
        topology = fixed_topology(2, [(1, 0)], gateways=[1])
        bank = TableBank(2)
        install(bank, 0, gateway=1, next_hop=1)
        assert walk_to_gateway(0, topology, bank) is None
        assert connectivity_fraction(topology, bank) == 0.5  # just the gateway
