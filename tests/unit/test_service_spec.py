"""Sweep spec DSL: validation, fingerprinting, grid expansion."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.service.spec import (
    OVERLAY_KEYS,
    SweepSpec,
    load_spec,
    spec_from_dict,
)

BASE = {"name": "base", "experiments": ["fig7"]}


def make(**overrides):
    payload = dict(BASE)
    payload.update(overrides)
    return spec_from_dict(payload)


class TestValidation:
    def test_minimal_spec(self):
        spec = make()
        assert spec.name == "base"
        assert spec.experiments == ("fig7",)
        assert spec.scale_name == "quick"
        assert spec.seeds == (2010,)

    def test_unknown_top_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown key"):
            make(experiment="fig7")  # typo'd singular

    def test_missing_name_rejected(self):
        with pytest.raises(ConfigurationError, match="'name'"):
            spec_from_dict({"experiments": ["fig7"]})

    def test_non_slug_name_rejected(self):
        with pytest.raises(ConfigurationError, match="slug"):
            make(name="has spaces")

    def test_unregistered_experiment_rejected(self):
        with pytest.raises(Exception, match="unknown experiment"):
            make(experiments=["nope99"])

    def test_duplicate_experiments_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            make(experiments=["fig7", "fig7"])

    def test_bad_scale_rejected(self):
        with pytest.raises(ConfigurationError, match="'scale'"):
            make(scale="enormous")

    def test_bad_runs_rejected(self):
        with pytest.raises(ConfigurationError, match="'runs'"):
            make(runs=0)

    def test_bool_runs_rejected(self):
        with pytest.raises(ConfigurationError, match="'runs'"):
            make(runs=True)

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicates"):
            make(seeds=[1, 1])

    def test_unknown_overlay_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown overlay"):
            make(overlays={"wormholes": True})

    def test_malformed_fault_overlay_rejected_at_submit(self):
        with pytest.raises(ConfigurationError, match="does not parse"):
            make(overlays={"faults": "not-a-fault-spec!!!"})

    def test_boolean_overlay_cannot_be_grid(self):
        with pytest.raises(ConfigurationError, match="grid axis"):
            make(overlays={"quarantine": [True, False]})

    def test_empty_grid_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="empty"):
            make(overlays={"route_ttl": []})

    def test_bad_limits_rejected(self):
        with pytest.raises(ConfigurationError, match="workers"):
            make(limits={"workers": 0})

    def test_unknown_outputs_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown outputs"):
            make(outputs={"pdf": True})

    def test_wrong_schema_rejected(self):
        with pytest.raises(ConfigurationError, match="schema"):
            make(schema=99)


class TestFingerprint:
    def test_stable_across_round_trip(self):
        spec = make(runs=4, seeds=[1, 2], overlays={"route_ttl": 30})
        clone = spec_from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone.fingerprint() == spec.fingerprint()

    def test_result_shaping_fields_change_it(self):
        base = make().fingerprint()
        assert make(runs=9).fingerprint() != base
        assert make(seeds=[7]).fingerprint() != base
        assert make(scale="paper").fingerprint() != base
        assert make(overlays={"route_ttl": 30}).fingerprint() != base
        assert make(experiments=["fig8"]).fingerprint() != base

    def test_cosmetic_fields_do_not_change_it(self):
        base = make().fingerprint()
        assert make(name="other").fingerprint() == base
        assert make(description="words").fingerprint() == base
        assert make(priority=9).fingerprint() == base
        assert make(limits={"workers": 8}).fingerprint() == base
        assert make(outputs={"svg": True}).fingerprint() == base


class TestExpansion:
    def test_single_unit(self):
        units = make().expand()
        assert [u.label for u in units] == ["fig7-s2010"]
        assert units[0].overlay_dict == {}

    def test_experiments_x_seeds(self):
        units = make(experiments=["fig7", "fig8"], seeds=[1, 2]).expand()
        assert [u.label for u in units] == [
            "fig7-s1", "fig7-s2", "fig8-s1", "fig8-s2",
        ]

    def test_grid_axis_fans_out(self):
        units = make(overlays={"route_ttl": [10, 20, 30]}).expand()
        assert [u.label for u in units] == [
            "fig7-s2010-g0", "fig7-s2010-g1", "fig7-s2010-g2",
        ]
        assert [u.overlay_dict["route_ttl"] for u in units] == [10, 20, 30]

    def test_scalar_overlays_reach_every_cell(self):
        units = make(
            overlays={"route_ttl": [10, 20], "quarantine": True}
        ).expand()
        assert all(u.overlay_dict["quarantine"] for u in units)

    def test_overlay_order_is_canonical(self):
        spec = make(overlays={"route_ttl": 30, "loss": "loss=0.1", "quarantine": True})
        keys = [key for key, _ in spec.expand()[0].overlays]
        assert keys == sorted(keys, key=OVERLAY_KEYS.index)

    def test_runs_override_applied_to_scale(self):
        unit = make(runs=3).expand()[0]
        assert unit.scale().runs == 3


class TestLoadSpec:
    def test_json_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(BASE))
        assert load_spec(path).name == "base"

    def test_yaml_file(self, tmp_path):
        pytest.importorskip("yaml")
        path = tmp_path / "spec.yaml"
        path.write_text("name: yamlspec\nexperiments: [fig7]\n")
        assert load_spec(path).name == "yamlspec"

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_spec(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_spec(path)

    def test_checked_in_examples_validate(self):
        import pathlib

        spec_dir = pathlib.Path(__file__).parents[2] / "examples" / "specs"
        specs = sorted(spec_dir.glob("*.json"))
        assert specs, "examples/specs/ should ship at least one spec"
        for path in specs:
            load_spec(path)


def test_default_spec_dataclass_usable_directly():
    spec = SweepSpec(name="direct", experiments=("fig7",))
    assert spec.expand()[0].label == "fig7-s2010"
    assert len(spec.fingerprint()) == 16
