"""Unit tests for adversarial fault injection and hop backoff clamping.

The injector is world-agnostic, so a minimal stub world — a real
engine, topology, and channel, plus bare-bones agents — is enough to
exercise the gray-failure, flap, and agent-corruption paths without a
full scenario.
"""

import random

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.net.channel import ChannelConfig, ChannelModel
from repro.net.manual import fixed_topology
from repro.sim.engine import TimeStepEngine


class _StubAgent:
    def __init__(self, agent_id, location):
        self.agent_id = agent_id
        self.location = location


class _StubWorld:
    def __init__(self, population=3):
        self.topology = fixed_topology(
            4, [(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)]
        )
        self.engine = TimeStepEngine()
        self.channel = ChannelModel(self.topology, ChannelConfig(), seed=7)
        self.agents = [_StubAgent(i, i % 4) for i in range(population)]


def install(world, plan):
    injector = FaultInjector(world, plan, random.Random(0))
    injector.install()
    return injector


class TestGrayInjection:
    def test_grayfail_arms_the_channel_at_its_time(self):
        world = _StubWorld()
        install(world, FaultPlan().gray_failure(3, 1, rate=0.9))
        world.engine.run(2)
        assert world.channel.active_grayfails == {}
        world.engine.run(1)
        assert world.channel.active_grayfails == {1: 0.9}

    def test_grayclear_heals(self):
        world = _StubWorld()
        install(
            world,
            FaultPlan().gray_failure(3, 1, rate=0.9).gray_clear(6, 1),
        )
        world.engine.run(6)
        assert world.channel.active_grayfails == {}

    def test_fault_injected_hook_reports_application(self):
        world = _StubWorld()
        fired = []
        world.engine.hooks.subscribe(
            "fault_injected",
            lambda **kw: fired.append((kw["kind"], kw["target"], kw["applied"])),
        )
        install(
            world,
            FaultPlan().gray_failure(3, 1, rate=0.9).gray_clear(4, 2),
        )
        world.engine.run(4)
        # Clearing a node that never gray-failed applies nothing.
        assert fired == [
            ("grayfail", (1,), True),
            ("grayclear", (2,), False),
        ]


class TestCorruptAgentInjection:
    def test_agent_turns_corrupted_at_its_time(self):
        world = _StubWorld()
        injector = install(world, FaultPlan().corrupt_agent(5, 1))
        world.engine.run(4)
        assert not injector.is_corrupted(1)
        world.engine.run(1)
        assert injector.is_corrupted(1)
        assert not injector.is_corrupted(0)

    def test_corrupted_agents_stay_alive_and_active(self):
        world = _StubWorld()
        injector = install(world, FaultPlan().corrupt_agent(5, 1))
        world.engine.run(5)
        assert injector.is_alive(1)
        assert 1 in [a.agent_id for a in injector.active_agents()]

    def test_unknown_agent_id_applies_nothing(self):
        world = _StubWorld(population=2)
        injector = install(world, FaultPlan().corrupt_agent(5, 9))
        world.engine.run(5)
        assert not injector.is_corrupted(9)


class TestFlapInjection:
    def test_node_flaps_down_and_settles_up(self):
        world = _StubWorld()
        plan = FaultPlan(agent_policy="freeze").flap_node(
            5, 2, duty=0.5, period=4, cycles=2
        )
        install(world, plan)
        world.engine.run(5)
        assert 2 in world.topology.down_ids  # cycle 1 down phase
        world.engine.run(2)  # now=7: back up after 2 down steps
        assert 2 not in world.topology.down_ids
        world.engine.run(2)  # now=9: cycle 2 down phase
        assert 2 in world.topology.down_ids
        world.engine.run(20)
        assert 2 not in world.topology.down_ids  # settled up for good

    def test_edge_flap_blocks_the_directed_link(self):
        world = _StubWorld()
        install(
            world,
            FaultPlan().flap_edge(5, 1, 2, duty=0.5, period=4, cycles=1),
        )
        world.engine.run(5)
        assert 2 not in world.topology.out_neighbors(1)
        assert 1 in world.topology.out_neighbors(2)  # reverse untouched
        world.engine.run(20)
        assert 2 in world.topology.out_neighbors(1)


class TestHopBackoffClamp:
    def run_failures(self, failures, *, base=1, cap=64, retries=100):
        """Drive ``failures`` consecutive lost hops; return the state."""
        from repro.core.migration import RETRY, MigrationState, ReliableMigration
        from repro.core.overhead import OverheadMeter

        topology = fixed_topology(2, [(0, 1), (1, 0)])
        channel = ChannelModel(
            topology,
            ChannelConfig(loss=1.0, hop_retries=retries, backoff_base=base,
                          backoff_cap=cap),
            seed=7,
        )
        agent = _StubAgent(0, 0)
        agent.migration = MigrationState()
        agent.overhead = OverheadMeter()
        protocol = ReliableMigration(channel)
        now = 0
        for __ in range(failures):
            now = agent.migration.retry_at
            assert protocol.attempt_hop(agent, 1, now) == RETRY
        return agent.migration, now

    def test_backoff_grows_exponentially_below_the_cap(self):
        state, now = self.run_failures(4, base=1, cap=64)
        # failures=4 -> 1 * 2**3 = 8 steps.
        assert state.retry_at - now == 8

    def test_backoff_clamps_at_cap(self):
        state, now = self.run_failures(10, base=1, cap=16)
        # 2**9 would be 512; the cap holds it at 16.
        assert state.retry_at - now == 16

    def test_huge_failure_counts_do_not_overflow_the_wait(self):
        state, now = self.run_failures(60, base=4, cap=32)
        assert state.retry_at - now == 32


class TestCustodyBackoffClamp:
    def test_register_failure_clamps_at_cap(self):
        from repro.traffic.payload import Payload, PayloadCopy
        from repro.traffic.plane import TrafficConfig
        from repro.traffic.routers import StoreAndForwardRouter

        class _StubPlane:
            config = TrafficConfig(
                backoff_base=1, backoff_cap=8, max_retransmit=99
            )
            counters = {"abandons": 0}

        router = StoreAndForwardRouter(_StubPlane())
        copy = PayloadCopy(Payload(pid=0, source=0, created_at=0, ttl=50))
        for __ in range(20):
            router._register_failure(copy, target=1, now=0)
        assert copy.retry_at == 8
        assert copy.failures == 20
