"""Unit tests for the incremental topology engine.

Every test that exercises the maintained adjacency is parametrized over
both implementations — the vectorized (numpy mask-diff) path and the
pure-Python spatial-grid path — and checks the result against a naive
rebuild-from-scratch of the same network.
"""

import pytest

from repro.errors import TopologyError
from repro.net.generator import GeneratorConfig, generate_manet_network
from repro.net.geometry import Arena, Point
from repro.net.manual import fixed_topology
from repro.net.node import Node
from repro.net.radio import FixedRange, HeterogeneousRange
from repro.net.topology import Topology

SMALL_MANET = GeneratorConfig(
    node_count=40,
    target_edges=None,
    range_heterogeneity=0.25,
    require_strong_connectivity=False,
    gateway_count=4,
    mobile_fraction=0.5,
)


def manet(seed, vectorized):
    topology = generate_manet_network(seed, SMALL_MANET)
    topology.set_vectorized(vectorized)
    return topology


def naive_twin(seed):
    """The same network driven by rebuild-from-scratch recomputes."""
    topology = generate_manet_network(seed, SMALL_MANET)
    topology.set_incremental(False)
    return topology


def assert_same_graph(incremental, naive):
    assert incremental.edge_set() == naive.edge_set()
    assert incremental.consistency_problems() == []


@pytest.mark.parametrize("vectorized", [True, False], ids=["vector", "grid"])
class TestIncrementalMatchesNaive:
    def test_mobility_steps(self, vectorized):
        topology, twin = manet(11, vectorized), naive_twin(11)
        for __ in range(25):
            topology.advance()
            twin.advance()
            topology.recompute()
            twin.recompute()
            assert_same_graph(topology, twin)

    def test_crash_and_recover(self, vectorized):
        topology, twin = manet(12, vectorized), naive_twin(12)
        for step in range(20):
            for t in (topology, twin):
                t.advance()
                if step == 4:
                    t.set_node_down(3)
                if step == 7:
                    t.set_node_down(9)
                if step == 12:
                    t.set_node_up(3)
                if step == 16:
                    t.set_node_up(9)
                t.recompute()
            assert_same_graph(topology, twin)
        assert not topology.is_down(3) and not topology.is_down(9)

    def test_blocked_edges(self, vectorized):
        topology, twin = manet(13, vectorized), naive_twin(13)
        topology.recompute()
        edges = sorted(topology.edge_set())[:6]
        for step in range(15):
            for t in (topology, twin):
                t.advance()
                if step == 2:
                    for edge in edges:
                        t.block_edge(*edge)
                if step == 9:
                    for edge in edges[::2]:
                        t.unblock_edge(*edge)
                t.recompute()
            assert_same_graph(topology, twin)

    def test_down_node_has_no_edges(self, vectorized):
        topology = manet(14, vectorized)
        topology.recompute()
        topology.set_node_down(5)
        topology.recompute()
        assert topology.out_neighbors(5) == set()
        assert topology.in_neighbors(5) == set()
        assert topology.consistency_problems() == []

    def test_force_full_rebuild_resets_state(self, vectorized):
        topology = manet(15, vectorized)
        for __ in range(5):
            topology.advance()
            topology.recompute()
        topology.force_full_rebuild()
        topology.advance()
        topology.recompute()
        assert topology.consistency_problems() == []


@pytest.mark.parametrize("vectorized", [True, False], ids=["vector", "grid"])
class TestEdgeDeltaStream:
    def test_first_take_reports_full(self, vectorized):
        topology = manet(21, vectorized)
        delta = topology.take_edge_delta()
        assert delta.full

    def test_deltas_replay_to_current_edge_set(self, vectorized):
        topology = manet(22, vectorized)
        topology.take_edge_delta()
        edges = set(topology.edge_set())
        for __ in range(20):
            topology.advance()
            delta = topology.take_edge_delta()
            assert not delta.full
            edges.difference_update(delta.removed)
            edges.update(delta.added)
            assert edges == topology.edge_set()

    def test_delta_is_consumed_once(self, vectorized):
        topology = manet(23, vectorized)
        topology.take_edge_delta()
        topology.advance()
        first = topology.take_edge_delta()
        assert first.added or first.removed  # mobility moved something
        second = topology.take_edge_delta()
        assert not second.full
        assert not second.added and not second.removed

    def test_full_rebuild_marks_delta_full(self, vectorized):
        topology = manet(24, vectorized)
        topology.take_edge_delta()
        topology.force_full_rebuild()
        assert topology.take_edge_delta().full


class TestValidationConsistency:
    def test_has_edge_unknown_source_raises(self):
        topology = fixed_topology(3, [(0, 1)])
        with pytest.raises(TopologyError):
            topology.has_edge(99, 0)

    def test_has_edge_unknown_destination_raises(self):
        topology = fixed_topology(3, [(0, 1)])
        with pytest.raises(TopologyError):
            topology.has_edge(0, 99)

    def test_fault_ops_unknown_node_raise(self):
        topology = fixed_topology(3, [(0, 1)])
        with pytest.raises(TopologyError):
            topology.set_node_down(99)
        with pytest.raises(TopologyError):
            topology.block_edge(0, 99)


class TestGridRebucketing:
    def test_node_crossing_cells_tracks_edges(self):
        # One fast mover sweeps past a line of anchored nodes; the grid
        # must re-bucket it and edges must appear/disappear on cue.
        arena = Arena(200, 50)
        nodes = [Node(i, Point(20 + 60 * i, 25), FixedRange(25.0)) for i in range(3)]
        mover = Node(3, Point(0, 25), HeterogeneousRange(25.0))
        topology = Topology(nodes + [mover], arena)
        topology.set_vectorized(False)
        topology.recompute()
        seen = set()
        for step in range(20):
            mover.position = Point(10.0 * step, 25)
            topology.invalidate()
            topology.recompute()
            assert topology.consistency_problems() == []
            seen.update(topology.out_neighbors(3))
        assert seen == {0, 1, 2}
