"""Unit tests for the routing world."""

import pytest

from repro.errors import ConfigurationError
from repro.routing.world import RoutingResult, RoutingWorld, RoutingWorldConfig, run_routing


def small_config(**overrides):
    defaults = dict(
        agent_kind="oldest-node",
        population=6,
        history_size=8,
        total_steps=60,
        converged_after=30,
    )
    defaults.update(overrides)
    return RoutingWorldConfig(**defaults)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RoutingWorldConfig(population=0)
        with pytest.raises(ConfigurationError):
            RoutingWorldConfig(history_size=0)
        with pytest.raises(ConfigurationError):
            RoutingWorldConfig(total_steps=0)
        with pytest.raises(ConfigurationError):
            RoutingWorldConfig(total_steps=10, converged_after=20)


class TestRoutingResult:
    def test_mean_connectivity_window(self):
        result = RoutingResult(
            times=[1, 2, 3, 4],
            connectivity=[0.0, 0.2, 0.6, 0.8],
            converged_after=3,
        )
        assert result.mean_connectivity == pytest.approx(0.7)

    def test_stability(self):
        result = RoutingResult(
            times=[3, 4], connectivity=[0.5, 0.5], converged_after=3
        )
        assert result.connectivity_stability == 0.0

    def test_empty_window(self):
        assert RoutingResult(converged_after=10).mean_connectivity == 0.0


class TestRoutingWorld:
    def test_requires_gateway(self, ring6):
        with pytest.raises(ConfigurationError):
            RoutingWorld(ring6, small_config(), seed=1)

    def test_spawned_agents_remember_their_start_node(self, gateway_line4):
        """Regression: off-gateway starters must seed their history with
        the start node (time 0), exactly like gateway starters — without
        it an oldest-node agent treated its own start as never-visited
        and doubled back to it on the first tie."""
        world = RoutingWorld(gateway_line4, small_config(population=8), seed=3)
        gateways = set(world.topology.all_gateway_ids)
        assert any(agent.location not in gateways for agent in world.agents)
        for agent in world.agents:
            assert agent.history.last_visit(agent.location) == 0
            if agent.location in gateways:
                assert agent.tracks[agent.location].hops == 0
            else:
                assert agent.tracks == {}

    def test_agents_build_connectivity_on_line(self, gateway_line4):
        result = run_routing(gateway_line4, small_config(), seed=1)
        # A static line with a gateway and wandering agents must end up
        # mostly connected once routes are installed.
        assert result.mean_connectivity > 0.5

    def test_connectivity_series_length(self, gateway_line4):
        result = run_routing(gateway_line4, small_config(total_steps=40), seed=2)
        assert len(result.times) == 40
        assert result.times[0] == 1
        assert result.times[-1] == 40

    def test_connectivity_in_unit_range(self, small_manet):
        result = run_routing(small_manet, small_config(), seed=3)
        assert all(0.0 <= v <= 1.0 for v in result.connectivity)

    def test_determinism(self, small_manet):
        # Regenerating the fixture would reset mobility; instead compare
        # two worlds on identically generated topologies.
        from repro.net.generator import GeneratorConfig, NetworkGenerator

        config = GeneratorConfig(
            node_count=40,
            target_edges=None,
            require_strong_connectivity=False,
            gateway_count=3,
            mobile_fraction=0.5,
        )
        a = run_routing(
            NetworkGenerator(config, 9).generate_manet(), small_config(), seed=5
        )
        b = run_routing(
            NetworkGenerator(config, 9).generate_manet(), small_config(), seed=5
        )
        assert a.connectivity == b.connectivity

    def test_more_agents_more_connectivity(self, small_manet):
        from repro.net.generator import GeneratorConfig, NetworkGenerator

        config = GeneratorConfig(
            node_count=40,
            target_edges=None,
            require_strong_connectivity=False,
            gateway_count=3,
            mobile_fraction=0.5,
        )
        few = run_routing(
            NetworkGenerator(config, 11).generate_manet(),
            small_config(population=2),
            seed=6,
        )
        many = run_routing(
            NetworkGenerator(config, 11).generate_manet(),
            small_config(population=20),
            seed=6,
        )
        assert many.mean_connectivity > few.mean_connectivity

    def test_meetings_counted_only_when_visiting(self, gateway_line4):
        visiting = run_routing(gateway_line4, small_config(visiting=True), seed=7)
        silent = run_routing(gateway_line4, small_config(visiting=False), seed=7)
        assert visiting.meetings > 0
        assert silent.meetings == 0

    def test_stigmergic_agents_run(self, small_manet):
        result = run_routing(small_manet, small_config(stigmergic=True), seed=8)
        assert len(result.connectivity) == 60

    def test_tables_populated(self, gateway_line4):
        config = small_config()
        world = RoutingWorld(gateway_line4, config, seed=9)
        world.run()
        assert world.tables.total_entries() > 0

    def test_route_ttl_expires_entries(self, gateway_line4):
        config = small_config(route_ttl=2, population=1, total_steps=60)
        world = RoutingWorld(gateway_line4, config, seed=10)
        world.run()
        # With a 2-step TTL only entries installed in the last 2 steps
        # can survive.
        for node in gateway_line4.node_ids:
            for entry in world.tables.table(node).entries_by_preference():
                assert entry.installed_at >= 60 - 2
