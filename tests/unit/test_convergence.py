"""Unit tests for the convergence-time detector."""

import pytest

from repro.analysis.series import TimeSeries, convergence_time
from repro.errors import ExperimentError


class TestConvergenceTime:
    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            convergence_time(TimeSeries([], []))

    def test_constant_series_converges_immediately(self):
        series = TimeSeries(list(range(1, 21)), [0.5] * 20)
        assert convergence_time(series) == 1

    def test_step_function(self):
        values = [0.0] * 10 + [0.8] * 30
        series = TimeSeries(list(range(1, 41)), values)
        assert convergence_time(series) == 11

    def test_ramp_then_plateau(self):
        values = [i / 20 for i in range(20)] + [1.0] * 20
        series = TimeSeries(list(range(1, 41)), values)
        settled = convergence_time(series, tolerance=0.1)
        # 10% band around 1.0 -> values >= 0.9 -> ramp index 18 (0.9).
        assert 15 <= settled <= 21

    def test_tolerance_widens_band(self):
        values = [i / 20 for i in range(20)] + [1.0] * 20
        series = TimeSeries(list(range(1, 41)), values)
        loose = convergence_time(series, tolerance=0.5)
        tight = convergence_time(series, tolerance=0.05)
        assert loose <= tight

    def test_never_settling_returns_last_time(self):
        # Oscillation far outside any band around the tail mean.
        values = [0.0 if i % 2 else 1.0 for i in range(20)]
        series = TimeSeries(list(range(1, 21)), values)
        assert convergence_time(series, tolerance=0.01) == 20

    def test_zero_level_uses_absolute_band(self):
        values = [1.0] * 5 + [0.0] * 25
        series = TimeSeries(list(range(1, 31)), values)
        assert convergence_time(series, tolerance=0.1) == 6
