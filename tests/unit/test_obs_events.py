"""Unit: the structured event bus, its sinks, and the JSONL round-trip."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.events import (
    EVENT_SCHEMA,
    Event,
    EventBus,
    JsonlSink,
    MemorySink,
    NullSink,
    read_jsonl,
)
from repro.sim.trace import TraceRecorder


class TestEvent:
    def test_dict_round_trip(self):
        event = Event(time=4, kind="hop", payload={"agent": 1, "to": 9})
        assert Event.from_dict(event.to_dict()) == event

    def test_payload_defaults_empty(self):
        assert Event.from_dict({"time": 1, "kind": "x"}).payload == {}


class TestSinks:
    def test_memory_sink_captures_in_order(self):
        sink = MemorySink()
        bus = EventBus([sink])
        bus.emit(1, "a", x=1)
        bus.emit(2, "b", x=2)
        assert [e.kind for e in sink.events] == ["a", "b"]
        assert len(sink) == 2

    def test_memory_sink_caps_and_counts_drops(self):
        sink = MemorySink(max_events=2)
        bus = EventBus([sink])
        for step in range(5):
            bus.emit(step, "tick")
        assert len(sink) == 2
        assert sink.dropped == 3
        sink.clear()
        assert len(sink) == 0 and sink.dropped == 0

    def test_null_sink_discards(self):
        sink = NullSink()
        EventBus([sink]).emit(1, "gone")
        sink.close()  # no-op, must not raise

    def test_kind_filter(self):
        sink = MemorySink()
        bus = EventBus([sink], kinds=["keep"])
        bus.emit(1, "keep")
        bus.emit(1, "drop")
        assert [e.kind for e in sink.events] == ["keep"]
        assert bus.wants("keep") and not bus.wants("drop")

    def test_multiple_sinks_all_receive(self):
        one, two = MemorySink(), MemorySink()
        EventBus([one, two]).emit(1, "x")
        assert len(one) == 1 and len(two) == 1


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path, manifest={"seed": 7})
        bus = EventBus([sink])
        bus.emit(1, "hop", agent=0, to=3)
        bus.emit(2, "meeting", count=2)
        bus.close()
        header, events = read_jsonl(path)
        assert header["schema"] == EVENT_SCHEMA
        assert header["manifest"] == {"seed": 7}
        assert events == [
            Event(1, "hop", {"agent": 0, "to": 3}),
            Event(2, "meeting", {"count": 2}),
        ]

    def test_torn_trailing_line_dropped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        EventBus([sink]).emit(1, "ok")
        sink.close()
        with path.open("a") as handle:
            handle.write('{"time": 2, "kind": "to')  # killed mid-write
        __, events = read_jsonl(path)
        assert [e.kind for e in events] == ["ok"]

    def test_missing_or_bad_header_rejected(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ConfigurationError):
            read_jsonl(empty)
        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps({"schema": 999, "kind": "header"}) + "\n")
        with pytest.raises(ConfigurationError):
            read_jsonl(bad)

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        with pytest.raises(ConfigurationError):
            sink.emit(Event(1, "late"))


class TestTraceRecorderAdapter:
    """The legacy recorder is a thin adapter over the event bus."""

    def test_recorder_is_bus_backed(self):
        recorder = TraceRecorder(kinds=["hop"])
        recorder.record(1, "hop", agent=2)
        recorder.record(1, "noise")
        assert len(recorder) == 1
        (event,) = recorder.of_kind("hop")
        assert isinstance(event, Event)
        assert event.payload == {"agent": 2}

    def test_recorder_cap_counts_drops(self):
        recorder = TraceRecorder(max_events=1)
        recorder.record(1, "a")
        recorder.record(2, "b")
        assert recorder.dropped == 1
        assert [e.kind for e in recorder.events] == ["a"]
