"""Unit tests for agent topology knowledge."""

from repro.core.knowledge import TopologyKnowledge
from repro.types import NEVER


class TestObserve:
    def test_first_hand_edges_recorded(self):
        knowledge = TopologyKnowledge()
        knowledge.observe_node(0, [1, 2], time=5)
        assert knowledge.first_hand_edges == {(0, 1), (0, 2)}
        assert knowledge.all_edges == {(0, 1), (0, 2)}
        assert knowledge.known_edge_count == 2

    def test_visit_time_recorded(self):
        knowledge = TopologyKnowledge()
        knowledge.observe_node(3, [], time=7)
        assert knowledge.last_first_hand_visit(3) == 7
        assert knowledge.last_combined_visit(3) == 7

    def test_revisit_updates_time(self):
        knowledge = TopologyKnowledge()
        knowledge.observe_node(3, [], time=7)
        knowledge.observe_node(3, [], time=9)
        assert knowledge.last_first_hand_visit(3) == 9

    def test_unvisited_is_never(self):
        knowledge = TopologyKnowledge()
        assert knowledge.last_first_hand_visit(42) == NEVER
        assert knowledge.last_combined_visit(42) == NEVER

    def test_observe_idempotent_edges(self):
        knowledge = TopologyKnowledge()
        knowledge.observe_node(0, [1], time=1)
        knowledge.observe_node(0, [1], time=2)
        assert knowledge.known_edge_count == 1


class TestAbsorb:
    def test_second_hand_edges_count(self):
        knowledge = TopologyKnowledge()
        knowledge.absorb({(4, 5)}, {4: 3})
        assert knowledge.known_edge_count == 1
        assert knowledge.first_hand_edges == frozenset()
        assert knowledge.knows_edge((4, 5))

    def test_second_hand_visits_dont_touch_first_hand(self):
        knowledge = TopologyKnowledge()
        knowledge.absorb(set(), {4: 10})
        assert knowledge.last_first_hand_visit(4) == NEVER
        assert knowledge.last_combined_visit(4) == 10

    def test_combined_takes_max(self):
        knowledge = TopologyKnowledge()
        knowledge.observe_node(4, [], time=3)
        knowledge.absorb(set(), {4: 10})
        assert knowledge.last_combined_visit(4) == 10
        knowledge.observe_node(4, [], time=20)
        assert knowledge.last_combined_visit(4) == 20

    def test_absorb_keeps_freshest_report(self):
        knowledge = TopologyKnowledge()
        knowledge.absorb(set(), {4: 10})
        knowledge.absorb(set(), {4: 6})
        assert knowledge.last_combined_visit(4) == 10

    def test_absorb_idempotent(self):
        knowledge = TopologyKnowledge()
        knowledge.absorb({(1, 2)}, {1: 5})
        before = (knowledge.known_edge_count, knowledge.last_combined_visit(1))
        knowledge.absorb({(1, 2)}, {1: 5})
        assert (knowledge.known_edge_count, knowledge.last_combined_visit(1)) == before


class TestCompleteness:
    def test_empty_network_complete(self):
        assert TopologyKnowledge().completeness(0) == 1.0

    def test_fraction(self):
        knowledge = TopologyKnowledge()
        knowledge.observe_node(0, [1, 2], time=1)
        assert knowledge.completeness(4) == 0.5

    def test_capped_at_one(self):
        knowledge = TopologyKnowledge()
        knowledge.observe_node(0, [1, 2], time=1)
        assert knowledge.completeness(1) == 1.0


class TestSharing:
    def test_shareable_edges_includes_both_hands(self):
        knowledge = TopologyKnowledge()
        knowledge.observe_node(0, [1], time=1)
        knowledge.absorb({(2, 3)}, {})
        assert knowledge.shareable_edges() == {(0, 1), (2, 3)}

    def test_shareable_visits_combined(self):
        knowledge = TopologyKnowledge()
        knowledge.observe_node(0, [], time=5)
        knowledge.absorb(set(), {0: 2, 1: 9})
        shared = knowledge.shareable_visits()
        assert shared[0] == 5  # own, fresher
        assert shared[1] == 9  # peer-provided

    def test_round_trip_through_peer(self):
        source = TopologyKnowledge()
        source.observe_node(0, [1, 2], time=4)
        sink = TopologyKnowledge()
        sink.absorb(source.shareable_edges(), source.shareable_visits())
        assert sink.knows_edge((0, 1))
        assert sink.last_combined_visit(0) == 4
