"""Unit tests: tile grid geometry and the per-tile adjacency recompute."""

import pytest

np = pytest.importorskip("numpy")

from repro.errors import ConfigurationError
from repro.shard.tiles import TileAdjacency, TileGrid, unpack_edges


class TestTileGrid:
    def test_shard_count_factors_to_squarest_tiles(self):
        grid = TileGrid(1000.0, 1000.0, shards=4)
        assert (grid.nx, grid.ny) == (2, 2)
        assert grid.tiles == 4

    def test_six_shards_on_a_square_arena(self):
        grid = TileGrid(1000.0, 1000.0, shards=6)
        assert grid.nx * grid.ny == 6
        # squarest split of 6 on a square arena is 3x2 (or 2x3).
        assert {grid.nx, grid.ny} == {2, 3}

    def test_tile_size_derives_the_grid(self):
        grid = TileGrid(1000.0, 800.0, tile_size=300.0)
        assert (grid.nx, grid.ny) == (4, 3)
        assert grid.tiles == 12
        assert grid.tile_w == pytest.approx(250.0)

    def test_default_is_one_tile(self):
        grid = TileGrid(500.0, 500.0)
        assert grid.tiles == 1
        assert grid.bounds(0) == (0.0, 0.0, 500.0, 500.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 0},
            {"tile_size": 0.0},
            {"tile_size": -5.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TileGrid(1000.0, 1000.0, **kwargs)

    def test_degenerate_arena_rejected(self):
        with pytest.raises(ConfigurationError):
            TileGrid(0.0, 100.0, shards=2)

    def test_owner_of_matches_vectorized_owners(self):
        grid = TileGrid(1000.0, 1000.0, shards=4)
        rng = np.random.default_rng(7)
        xs = rng.uniform(0.0, 1000.0, 64)
        ys = rng.uniform(0.0, 1000.0, 64)
        owners = grid.owners(xs, ys)
        for x, y, owner in zip(xs, ys, owners.tolist()):
            assert grid.owner_of(x, y) == owner

    def test_far_edge_positions_clip_into_the_last_tile(self):
        grid = TileGrid(1000.0, 1000.0, shards=4)
        assert grid.owner_of(1000.0, 1000.0) == grid.tiles - 1
        owners = grid.owners(np.array([1000.0]), np.array([1000.0]))
        assert owners.tolist() == [grid.tiles - 1]

    def test_bounds_partition_the_arena(self):
        grid = TileGrid(900.0, 600.0, shards=6)
        area = 0.0
        for tile in range(grid.tiles):
            x0, y0, x1, y1 = grid.bounds(tile)
            assert 0.0 <= x0 < x1 <= 900.0
            assert 0.0 <= y0 < y1 <= 600.0
            area += (x1 - x0) * (y1 - y0)
        assert area == pytest.approx(900.0 * 600.0)

    def test_unknown_tile_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            TileGrid(100.0, 100.0, shards=2).bounds(5)


def test_unpack_edges_roundtrip():
    n = 11
    pairs = [(0, 1), (3, 7), (10, 0)]
    packed = np.array([u * n + v for u, v in pairs], dtype=np.int64)
    assert unpack_edges(packed, n) == pairs
    assert unpack_edges(np.empty(0, dtype=np.int64), n) == []


def brute_out_edges(senders, ax, ay, ar):
    """The serial predicate applied directly: sender range, no loops."""
    n = len(ax)
    edges = set()
    for u in senders:
        for v in range(n):
            if v == u:
                continue
            dx = ax[v] - ax[u]
            dy = ay[v] - ay[u]
            if dx * dx + dy * dy <= ar[u] * ar[u]:
                edges.add(u * n + v)
    return edges


def make_positions(seed, n=40, extent=300.0):
    rng = np.random.default_rng(seed)
    ax = rng.uniform(0.0, extent, n)
    ay = rng.uniform(0.0, extent, n)
    ar = rng.uniform(20.0, 80.0, n)
    return ax, ay, ar


class TestTileAdjacency:
    def make_adj(self, grid, tile, rmax):
        cell = rmax * 1.000001 + 1e-9
        stride = int(grid.height / cell) + 3
        return TileAdjacency(40, grid.bounds(tile), cell, stride)

    def test_refresh_matches_brute_force(self):
        ax, ay, ar = make_positions(3)
        grid = TileGrid(300.0, 300.0, shards=4)
        own = grid.owners(ax, ay)
        rmax = float(ar.max())
        union = set()
        for tile in range(grid.tiles):
            adj = self.make_adj(grid, tile, rmax)
            owned = np.flatnonzero(own == tile)
            added, removed = adj.refresh(owned, ax, ay, ar)
            assert removed.size == 0
            expected = brute_out_edges(owned.tolist(), ax, ay, ar)
            assert set(added.tolist()) == expected
            assert set(adj.edges.tolist()) == expected
            union |= expected
        assert union == brute_out_edges(range(40), ax, ay, ar)

    def test_deltas_track_motion(self):
        ax, ay, ar = make_positions(5)
        grid = TileGrid(300.0, 300.0, shards=1)
        rmax = float(ar.max())
        adj = self.make_adj(grid, 0, rmax)
        owned = np.arange(40, dtype=np.int64)
        adj.refresh(owned, ax, ay, ar)
        before = set(adj.edges.tolist())
        rng = np.random.default_rng(9)
        ax2 = np.clip(ax + rng.uniform(-30.0, 30.0, 40), 0.0, 300.0)
        ay2 = np.clip(ay + rng.uniform(-30.0, 30.0, 40), 0.0, 300.0)
        added, removed = adj.refresh(owned, ax2, ay2, ar)
        after = brute_out_edges(range(40), ax2, ay2, ar)
        assert set(adj.edges.tolist()) == after
        assert set(added.tolist()) == after - before
        assert set(removed.tolist()) == before - after

    def test_neighbors_of_matches_edge_set(self):
        ax, ay, ar = make_positions(11)
        grid = TileGrid(300.0, 300.0, shards=1)
        adj = self.make_adj(grid, 0, float(ar.max()))
        adj.refresh(np.arange(40, dtype=np.int64), ax, ay, ar)
        expected = brute_out_edges(range(40), ax, ay, ar)
        for node in range(40):
            want = {edge % 40 for edge in expected if edge // 40 == node}
            assert adj.neighbors_of(node) == want

    def test_extract_then_absorb_is_lossless(self):
        ax, ay, ar = make_positions(13)
        grid = TileGrid(300.0, 300.0, shards=1)
        adj = self.make_adj(grid, 0, float(ar.max()))
        adj.refresh(np.arange(40, dtype=np.int64), ax, ay, ar)
        before = adj.edges.copy()
        departing = np.array([2, 17, 31], dtype=np.int64)
        rows = adj.extract_rows(departing)
        senders = set((adj.edges // 40).tolist())
        assert senders.isdisjoint({2, 17, 31})
        adj.absorb_rows(list(rows.values()))
        assert np.array_equal(adj.edges, before)
