"""Unit tests for route-quality metrics."""

import pytest

from repro.net.manual import fixed_topology
from repro.routing.metrics import measure_route_quality
from repro.routing.table import RouteEntry, TableBank


def line_with_gateway():
    edges = []
    for a, b in ((0, 1), (1, 2), (2, 3)):
        edges.extend([(a, b), (b, a)])
    return fixed_topology(4, edges, gateways=[0])


def install(bank, node, next_hop, hops=1, gateway=0):
    bank.table(node).install(
        RouteEntry(gateway, next_hop, hops, installed_at=1, gateway_seen_at=1)
    )


class TestMeasureRouteQuality:
    def test_empty_tables(self):
        quality = measure_route_quality(line_with_gateway(), TableBank(4))
        assert quality.connectivity == 0.25  # just the gateway
        assert quality.mean_stretch is None
        assert quality.table_coverage == 0.0
        assert quality.measured_routes == 0

    def test_optimal_chain_has_stretch_one(self):
        bank = TableBank(4)
        install(bank, 1, 0)
        install(bank, 2, 1, hops=2)
        install(bank, 3, 2, hops=3)
        quality = measure_route_quality(line_with_gateway(), bank)
        assert quality.connectivity == 1.0
        assert quality.mean_stretch == pytest.approx(1.0)
        assert quality.table_coverage == 0.75
        assert quality.measured_routes == 3

    def test_detour_increases_stretch(self):
        # Ring 0(gw)-1-2-3-0: node 1 routes the long way (1->2->3->0).
        edges = []
        for a, b in ((0, 1), (1, 2), (2, 3), (3, 0)):
            edges.extend([(a, b), (b, a)])
        topology = fixed_topology(4, edges, gateways=[0])
        bank = TableBank(4)
        install(bank, 1, 2, hops=3)
        install(bank, 2, 3, hops=2)
        install(bank, 3, 0, hops=1)
        quality = measure_route_quality(topology, bank)
        # Node 1: shortest 1, routed 3 (stretch 3); node 2: shortest 2,
        # routed 2 (stretch 1); node 3: shortest 1, routed 1 (stretch 1).
        expected = (3.0 + 1.0 + 1.0) / 3
        assert quality.mean_stretch == pytest.approx(expected)

    def test_gateway_balance_single_gateway_undefined(self):
        bank = TableBank(4)
        install(bank, 1, 0)
        quality = measure_route_quality(line_with_gateway(), bank)
        assert quality.gateway_balance is None

    def test_gateway_balance_even_split_is_one(self):
        # Line g0 - a - g1 where a routes to g0, b routes to g1.
        edges = []
        for a, b in ((0, 1), (1, 2), (2, 3)):
            edges.extend([(a, b), (b, a)])
        topology = fixed_topology(4, edges, gateways=[0, 3])
        bank = TableBank(4)
        install(bank, 1, 0, gateway=0)
        install(bank, 2, 3, gateway=3)
        quality = measure_route_quality(topology, bank)
        assert quality.gateway_balance == pytest.approx(1.0)

    def test_gateway_balance_skewed_below_one(self):
        edges = []
        for a, b in ((0, 1), (1, 2), (2, 3)):
            edges.extend([(a, b), (b, a)])
        topology = fixed_topology(4, edges, gateways=[0, 3])
        bank = TableBank(4)
        install(bank, 1, 0, gateway=0)
        install(bank, 2, 1, hops=2, gateway=0)
        quality = measure_route_quality(topology, bank)
        assert quality.gateway_balance == pytest.approx(0.0)  # all to gateway 0
