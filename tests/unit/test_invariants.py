"""Unit tests for the runtime cross-layer invariant checker."""

from __future__ import annotations

import pytest

from repro.errors import InvariantError
from repro.mapping.world import MappingWorld, MappingWorldConfig
from repro.routing.table import RouteEntry
from repro.routing.world import RoutingWorld, RoutingWorldConfig
from repro.sim.invariants import ENV_FLAG, InvariantChecker, default_invariants_enabled


def routing_config(**overrides):
    defaults = dict(
        agent_kind="oldest-node",
        population=4,
        history_size=8,
        total_steps=30,
        converged_after=15,
    )
    defaults.update(overrides)
    return RoutingWorldConfig(**defaults)


class TestDefaultEnabled:
    @pytest.mark.parametrize("value", ["1", "true", "yes", "on", "anything"])
    def test_truthy_values(self, monkeypatch, value):
        monkeypatch.setenv(ENV_FLAG, value)
        assert default_invariants_enabled()

    @pytest.mark.parametrize("value", ["", "0", "false", "no", "off", " OFF "])
    def test_falsy_values(self, monkeypatch, value):
        monkeypatch.setenv(ENV_FLAG, value)
        assert not default_invariants_enabled()

    def test_unset_means_disabled(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        assert not default_invariants_enabled()


class TestWorldWiring:
    def test_config_true_installs_checker(self, gateway_line4, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "0")
        world = RoutingWorld(
            gateway_line4, routing_config(check_invariants=True), seed=3
        )
        assert world.invariants is not None

    def test_config_false_wins_over_env(self, gateway_line4, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        world = RoutingWorld(
            gateway_line4, routing_config(check_invariants=False), seed=3
        )
        assert world.invariants is None

    def test_config_none_defers_to_env(self, gateway_line4, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "0")
        assert RoutingWorld(gateway_line4, routing_config(), seed=3).invariants is None
        monkeypatch.setenv(ENV_FLAG, "1")
        assert (
            RoutingWorld(gateway_line4, routing_config(), seed=3).invariants
            is not None
        )

    def test_checker_runs_every_step_of_a_healthy_run(self, gateway_line4):
        world = RoutingWorld(
            gateway_line4, routing_config(check_invariants=True), seed=3
        )
        world.run()
        assert world.invariants.checks == world.config.total_steps
        assert world.invariants.violations == []

    def test_mapping_world_wires_checker_too(self, line5):
        config = MappingWorldConfig(
            agent_kind="conscientious",
            population=3,
            max_steps=50,
            check_invariants=True,
        )
        world = MappingWorld(line5, config, seed=4)
        assert world.invariants is not None
        world.run()
        assert world.invariants.checks > 0
        assert world.invariants.violations == []


class TestPlantedViolations:
    def _world(self, topology):
        # check_invariants=False: we drive the checker by hand.
        return RoutingWorld(
            topology, routing_config(check_invariants=False), seed=5
        )

    def test_healthy_world_scans_clean(self, gateway_line4):
        world = self._world(gateway_line4)
        checker = InvariantChecker(world)
        assert checker.scan(now=0) == []
        assert checker.check_now(now=0) == []
        assert checker.checks == 1

    def test_route_entry_with_down_next_hop(self, gateway_line4):
        world = self._world(gateway_line4)
        world.tables.table(2).install(
            RouteEntry(gateway=0, next_hop=1, hops=2, installed_at=0)
        )
        world.topology.set_node_down(1)
        checker = InvariantChecker(world)
        with pytest.raises(InvariantError, match="next hop 1 is down"):
            checker.check_now(now=1)
        assert checker.violations  # recorded even though it raised

    def test_route_entry_referencing_unknown_node(self, gateway_line4):
        world = self._world(gateway_line4)
        world.tables.table(2).install(
            RouteEntry(gateway=0, next_hop=99, hops=2, installed_at=0)
        )
        checker = InvariantChecker(world, raise_on_violation=False)
        problems = checker.check_now(now=1)
        assert any("unknown node" in p for p in problems)

    def test_route_entry_outliving_ttl(self, gateway_line4):
        world = self._world(gateway_line4)
        world.tables.table(2).install(
            RouteEntry(gateway=0, next_hop=1, hops=2, installed_at=0)
        )
        checker = InvariantChecker(world, raise_on_violation=False)
        ttl = world.tables.ttl
        # An entry installed at t is valid through t + ttl - 1 and is
        # due for expiry at exactly t + ttl — the checker flags it from
        # that step on (matching RoutingTable.expire's boundary).
        assert checker.check_now(now=ttl - 1) == []
        assert any("outlived ttl" in p for p in checker.check_now(now=ttl))

    def test_route_entry_with_zero_hops(self, gateway_line4):
        world = self._world(gateway_line4)
        # install() itself rejects hops < 1, so plant the corruption
        # behind its back — exactly what the checker exists to catch.
        world.tables.table(2)._entries[0] = RouteEntry(
            gateway=0, next_hop=1, hops=0, installed_at=0
        )
        checker = InvariantChecker(world, raise_on_violation=False)
        assert any("0 hops" in p for p in checker.check_now(now=1))

    def test_footprint_on_down_node(self, gateway_line4):
        world = self._world(gateway_line4)
        world.field.stamp(node=2, agent=0, target=3, time=0)
        world.topology.set_node_down(2)
        # Park the agents off the down node so only the board violates.
        for agent in world.agents:
            agent.location = 0
        checker = InvariantChecker(world, raise_on_violation=False)
        problems = checker.check_now(now=1)
        assert any("down node 2" in p for p in problems)

    def test_footprint_pointing_at_unknown_node(self, gateway_line4):
        world = self._world(gateway_line4)
        world.field.stamp(node=2, agent=0, target=77, time=0)
        checker = InvariantChecker(world, raise_on_violation=False)
        assert any("unknown node 77" in p for p in checker.check_now(now=1))

    def test_agent_on_down_node(self, gateway_line4):
        world = self._world(gateway_line4)
        world.agents[0].location = 3
        world.topology.set_node_down(3)
        checker = InvariantChecker(world, raise_on_violation=False)
        # No injector: every agent counts as acting.
        world.injector = None
        assert any("acts on down node 3" in p for p in checker.check_now(now=1))

    def test_collect_mode_accumulates_across_checks(self, gateway_line4):
        world = self._world(gateway_line4)
        world.tables.table(2)._entries[0] = RouteEntry(
            gateway=0, next_hop=1, hops=0, installed_at=0
        )
        checker = InvariantChecker(world, raise_on_violation=False)
        checker.check_now(now=1)
        checker.check_now(now=2)
        assert checker.checks == 2
        assert len(checker.violations) == 2

    def test_install_is_idempotent(self, gateway_line4):
        world = self._world(gateway_line4)
        checker = InvariantChecker(world)
        checker.install()
        checker.install()
        world.engine.run(1)
        assert checker.checks == 1
