"""Unit tests for SVG rendering and report persistence."""

import json

import pytest

from repro.analysis.series import TimeSeries
from repro.analysis.svg_plot import svg_plot
from repro.errors import ExperimentError
from repro.experiments.persistence import (
    load_report,
    report_from_dict,
    report_to_dict,
    save_report,
    save_svg,
)
from repro.experiments.report import ExperimentReport


def sample_report(with_series=True):
    report = ExperimentReport(
        experiment_id="figX",
        title="sample",
        paper_claim="a < b",
        columns=["variant", "value"],
        y_label="knowledge",
    )
    report.add_row("a", 1)
    report.add_row("b", 2)
    report.add_note("gap is 1")
    if with_series:
        report.series["a"] = TimeSeries([1, 2, 3], [0.1, 0.5, 1.0])
        report.series["b"] = TimeSeries([1, 2, 3], [0.2, 0.4, 0.8])
    return report


class TestSvgPlot:
    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            svg_plot({})

    def test_valid_document(self):
        text = svg_plot({"curve": TimeSeries([0, 10], [0.0, 1.0])}, title="t")
        assert text.startswith("<svg")
        assert text.endswith("</svg>")
        assert "<polyline" in text
        assert "t</text>" in text

    def test_one_polyline_per_series(self):
        report = sample_report()
        text = svg_plot(report.series)
        assert text.count("<polyline") == 2

    def test_escapes_markup(self):
        text = svg_plot(
            {"a<b&c": TimeSeries([0, 1], [0.0, 1.0])}, title="x<y"
        )
        assert "a&lt;b&amp;c" in text
        assert "x&lt;y" in text

    def test_constant_series_ok(self):
        text = svg_plot({"flat": TimeSeries([0, 5], [0.5, 0.5])})
        assert "<polyline" in text


class TestReportRoundTrip:
    def test_dict_round_trip(self):
        report = sample_report()
        clone = report_from_dict(report_to_dict(report))
        assert clone.render() == report.render()

    def test_dict_is_json_safe(self):
        json.dumps(report_to_dict(sample_report()))

    def test_schema_version_checked(self):
        payload = report_to_dict(sample_report())
        payload["schema"] = 999
        with pytest.raises(ExperimentError):
            report_from_dict(payload)

    def test_save_and_load(self, tmp_path):
        report = sample_report()
        path = save_report(report, tmp_path)
        assert path.name == "figX.json"
        loaded = load_report(path)
        assert loaded.render() == report.render()

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ExperimentError):
            load_report(tmp_path / "nope.json")

    def test_load_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ExperimentError):
            load_report(path)


class TestSaveSvg:
    def test_writes_svg_for_series(self, tmp_path):
        path = save_svg(sample_report(), tmp_path)
        assert path.name == "figX.svg"
        assert path.read_text().startswith("<svg")

    def test_table_only_report_skipped(self, tmp_path):
        assert save_svg(sample_report(with_series=False), tmp_path) is None
        assert list(tmp_path.iterdir()) == []
