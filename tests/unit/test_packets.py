"""Unit tests for packet delivery over routing tables."""

import random

from repro.net.manual import fixed_topology
from repro.routing.packets import DeliveryStats, PacketOutcome, PacketSimulator
from repro.routing.table import RouteEntry, TableBank


def line_with_gateway():
    edges = []
    for a, b in ((0, 1), (1, 2), (2, 3)):
        edges.extend([(a, b), (b, a)])
    return fixed_topology(4, edges, gateways=[0])


def chain_tables():
    bank = TableBank(4)
    bank.table(3).install(RouteEntry(0, 2, 3, installed_at=1))
    bank.table(2).install(RouteEntry(0, 1, 2, installed_at=1))
    bank.table(1).install(RouteEntry(0, 0, 1, installed_at=1))
    return bank


class TestSend:
    def test_delivery_along_chain(self):
        simulator = PacketSimulator(line_with_gateway(), chain_tables())
        outcome = simulator.send(3)
        assert outcome.delivered
        assert outcome.hops == 3
        assert outcome.gateway == 0

    def test_packet_from_gateway(self):
        simulator = PacketSimulator(line_with_gateway(), TableBank(4))
        outcome = simulator.send(0)
        assert outcome.delivered
        assert outcome.hops == 0

    def test_no_route_fails(self):
        simulator = PacketSimulator(line_with_gateway(), TableBank(4))
        outcome = simulator.send(3)
        assert not outcome.delivered

    def test_ttl_bound(self):
        simulator = PacketSimulator(line_with_gateway(), chain_tables(), walk_ttl=2)
        assert not simulator.send(3).delivered

    def test_loop_does_not_hang(self):
        bank = TableBank(4)
        bank.table(2).install(RouteEntry(0, 3, 1, installed_at=1))
        bank.table(3).install(RouteEntry(0, 2, 1, installed_at=1))
        simulator = PacketSimulator(line_with_gateway(), bank)
        assert not simulator.send(2).delivered


class TestBatchAndStats:
    def test_batch_counts(self):
        simulator = PacketSimulator(line_with_gateway(), chain_tables())
        stats = simulator.send_batch(50, random.Random(1))
        assert stats.sent == 50
        assert stats.delivery_rate == 1.0
        assert stats.mean_hops > 0

    def test_batch_avoids_gateway_sources(self):
        simulator = PacketSimulator(line_with_gateway(), chain_tables())
        stats = simulator.send_batch(20, random.Random(2))
        assert all(outcome.source != 0 for outcome in stats.outcomes)

    def test_empty_stats(self):
        stats = DeliveryStats()
        assert stats.delivery_rate == 0.0
        assert stats.mean_hops == 0.0

    def test_mean_hops_only_delivered(self):
        stats = DeliveryStats(
            outcomes=[
                PacketOutcome(1, True, 4, gateway=0),
                PacketOutcome(2, False, 9),
            ]
        )
        assert stats.mean_hops == 4.0
        assert stats.delivery_rate == 0.5


class TestPathStretch:
    def test_shortest_path_has_stretch_one(self):
        simulator = PacketSimulator(line_with_gateway(), chain_tables())
        outcome = simulator.send(3)
        assert simulator.path_stretch(outcome) == 1.0

    def test_failed_packet_has_no_stretch(self):
        simulator = PacketSimulator(line_with_gateway(), TableBank(4))
        assert simulator.path_stretch(simulator.send(3)) is None
