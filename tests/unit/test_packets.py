"""Unit tests for packet delivery over routing tables."""

import random

from repro.net.graphutils import bfs_hops
from repro.net.manual import fixed_topology
from repro.routing.packets import DeliveryStats, PacketOutcome, PacketSimulator
from repro.routing.table import RouteEntry, TableBank


def line_with_gateway():
    edges = []
    for a, b in ((0, 1), (1, 2), (2, 3)):
        edges.extend([(a, b), (b, a)])
    return fixed_topology(4, edges, gateways=[0])


def chain_tables():
    bank = TableBank(4)
    bank.table(3).install(RouteEntry(0, 2, 3, installed_at=1))
    bank.table(2).install(RouteEntry(0, 1, 2, installed_at=1))
    bank.table(1).install(RouteEntry(0, 0, 1, installed_at=1))
    return bank


class TestSend:
    def test_delivery_along_chain(self):
        simulator = PacketSimulator(line_with_gateway(), chain_tables())
        outcome = simulator.send(3)
        assert outcome.delivered
        assert outcome.hops == 3
        assert outcome.gateway == 0

    def test_packet_from_gateway(self):
        simulator = PacketSimulator(line_with_gateway(), TableBank(4))
        outcome = simulator.send(0)
        assert outcome.delivered
        assert outcome.hops == 0

    def test_no_route_fails(self):
        simulator = PacketSimulator(line_with_gateway(), TableBank(4))
        outcome = simulator.send(3)
        assert not outcome.delivered

    def test_ttl_bound(self):
        simulator = PacketSimulator(line_with_gateway(), chain_tables(), walk_ttl=2)
        assert not simulator.send(3).delivered

    def test_loop_does_not_hang(self):
        bank = TableBank(4)
        bank.table(2).install(RouteEntry(0, 3, 1, installed_at=1))
        bank.table(3).install(RouteEntry(0, 2, 1, installed_at=1))
        simulator = PacketSimulator(line_with_gateway(), bank)
        assert not simulator.send(2).delivered


class TestBatchAndStats:
    def test_batch_counts(self):
        simulator = PacketSimulator(line_with_gateway(), chain_tables())
        stats = simulator.send_batch(50, random.Random(1))
        assert stats.sent == 50
        assert stats.delivery_rate == 1.0
        assert stats.mean_hops > 0

    def test_batch_avoids_gateway_sources(self):
        simulator = PacketSimulator(line_with_gateway(), chain_tables())
        stats = simulator.send_batch(20, random.Random(2))
        assert all(outcome.source != 0 for outcome in stats.outcomes)

    def test_empty_stats(self):
        stats = DeliveryStats()
        assert stats.delivery_rate == 0.0
        assert stats.mean_hops == 0.0

    def test_mean_hops_only_delivered(self):
        stats = DeliveryStats(
            outcomes=[
                PacketOutcome(1, True, 4, gateway=0),
                PacketOutcome(2, False, 9),
            ]
        )
        assert stats.mean_hops == 4.0
        assert stats.delivery_rate == 0.5


class TestEdgeCases:
    def test_empty_table_bank_batch(self):
        """A bank with no entries anywhere: nothing delivers, nothing hangs."""
        simulator = PacketSimulator(line_with_gateway(), TableBank(4))
        stats = simulator.send_batch(30, random.Random(5))
        assert stats.sent == 30
        assert stats.delivered == 0
        assert stats.delivery_rate == 0.0
        assert all(outcome.hops == 0 for outcome in stats.outcomes)

    def test_source_is_gateway_zero_hops(self):
        simulator = PacketSimulator(line_with_gateway(), chain_tables())
        outcome = simulator.send(0)
        assert outcome.delivered
        assert outcome.hops == 0
        assert outcome.gateway == 0
        assert simulator.path_stretch(outcome) is None  # shortest is 0

    def test_ttl_exhausted_walk_reports_ttl_hops(self):
        # a long loop with no gateway reachable: walk ends at the ttl
        edges = []
        for a, b in ((1, 2), (2, 3), (3, 1)):
            edges.extend([(a, b), (b, a)])
        topology = fixed_topology(4, edges, gateways=[0])
        bank = TableBank(4)
        bank.table(1).install(RouteEntry(0, 2, 9, installed_at=1))
        bank.table(2).install(RouteEntry(0, 3, 9, installed_at=1))
        bank.table(3).install(RouteEntry(0, 1, 9, installed_at=1))
        simulator = PacketSimulator(topology, bank, walk_ttl=2)
        outcome = simulator.send(1)
        assert not outcome.delivered
        assert outcome.hops == 2
        assert outcome.gateway is None

    def test_stats_agree_with_bfs_on_static_topology(self):
        """On a static chain the table path IS the shortest path."""
        topology = line_with_gateway()
        simulator = PacketSimulator(topology, chain_tables())
        hops_from = {
            source: bfs_hops(topology.adjacency_copy(), source)[0]
            for source in (1, 2, 3)
        }
        for source, expected in hops_from.items():
            outcome = simulator.send(source)
            assert outcome.delivered
            assert outcome.hops == expected
        stats = simulator.send_batch(60, random.Random(9))
        assert stats.delivery_rate == 1.0
        expected_mean = sum(
            hops_from[o.source] for o in stats.outcomes
        ) / stats.sent
        assert stats.mean_hops == expected_mean


class TestSeededBatch:
    def test_int_seed_accepted_and_deterministic(self):
        simulator = PacketSimulator(line_with_gateway(), chain_tables())
        first = simulator.send_batch(40, 123)
        second = simulator.send_batch(40, 123)
        assert first.outcomes == second.outcomes

    def test_different_seeds_draw_different_sources(self):
        simulator = PacketSimulator(line_with_gateway(), chain_tables())
        first = simulator.send_batch(40, 123)
        second = simulator.send_batch(40, 124)
        assert [o.source for o in first.outcomes] != [
            o.source for o in second.outcomes
        ]

    def test_seed_stream_is_isolated_from_global_random(self):
        simulator = PacketSimulator(line_with_gateway(), chain_tables())
        random.seed(0)
        first = simulator.send_batch(20, 7)
        random.seed(999)
        random.random()
        second = simulator.send_batch(20, 7)
        assert first.outcomes == second.outcomes


class TestPathStretch:
    def test_shortest_path_has_stretch_one(self):
        simulator = PacketSimulator(line_with_gateway(), chain_tables())
        outcome = simulator.send(3)
        assert simulator.path_stretch(outcome) == 1.0

    def test_failed_packet_has_no_stretch(self):
        simulator = PacketSimulator(line_with_gateway(), TableBank(4))
        assert simulator.path_stretch(simulator.send(3)) is None
