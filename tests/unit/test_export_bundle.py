"""Bundle export/load: self-describing artifacts that round-trip."""

import json

import pytest

from repro.analysis.series import TimeSeries
from repro.errors import ExperimentError
from repro.experiments.persistence import save_report
from repro.experiments.report import ExperimentReport
from repro.service.export_bundle import export_bundle, load_bundle


def make_job_dir(tmp_path, labels=("fig7-s1",)):
    job_dir = tmp_path / "job"
    for label in labels:
        report = ExperimentReport(
            experiment_id="fig7", title="t", paper_claim="c",
            columns=["x"], rows=[[1.0]],
        )
        report.series["conn"] = TimeSeries([0, 1], [0.2, 0.8])
        save_report(report, job_dir / "reports" / label)
    manifest = {
        "config_hash": "deadbeef",
        "service": {
            "job_id": "j0001-aaaa",
            "spec_name": "sweep",
            "spec_fingerprint": "cafe0123",
            "units": list(labels),
        },
    }
    (job_dir / "manifest.json").write_text(json.dumps(manifest))
    (job_dir / "spec.json").write_text(json.dumps({"name": "sweep"}))
    return job_dir


class TestExport:
    def test_directory_bundle(self, tmp_path):
        job_dir = make_job_dir(tmp_path)
        out = export_bundle(job_dir, tmp_path / "bundle")
        index = json.loads((out / "bundle.json").read_text())
        assert index["spec_fingerprint"] == "cafe0123"
        assert index["job_id"] == "j0001-aaaa"
        assert "reports/fig7-s1/fig7.json" in index["files"]
        assert (out / "manifest.json").exists()

    def test_tarball_bundle(self, tmp_path):
        job_dir = make_job_dir(tmp_path)
        out = export_bundle(job_dir, tmp_path / "bundle.tar.gz")
        assert out.is_file()

    def test_optional_artifacts_included(self, tmp_path):
        job_dir = make_job_dir(tmp_path)
        (job_dir / "metrics.json").write_text("{}")
        (job_dir / "trace.jsonl").write_text("")
        out = export_bundle(job_dir, tmp_path / "bundle")
        index = json.loads((out / "bundle.json").read_text())
        assert "metrics.json" in index["files"]
        assert "trace.jsonl" in index["files"]

    def test_unfinished_job_dir_rejected(self, tmp_path):
        with pytest.raises(ExperimentError, match="did the job complete"):
            export_bundle(tmp_path / "nope", tmp_path / "bundle")

    def test_no_reports_rejected(self, tmp_path):
        job_dir = tmp_path / "job"
        (job_dir / "reports").mkdir(parents=True)
        (job_dir / "manifest.json").write_text("{}")
        with pytest.raises(ExperimentError, match="no saved reports"):
            export_bundle(job_dir, tmp_path / "bundle")


class TestLoad:
    def test_directory_round_trip(self, tmp_path):
        job_dir = make_job_dir(tmp_path, labels=("fig7-s1", "fig7-s2"))
        out = export_bundle(job_dir, tmp_path / "bundle")
        bundle = load_bundle(out)
        assert set(bundle["reports"]) == {"fig7-s1", "fig7-s2"}
        report = bundle["reports"]["fig7-s1"]
        assert report.experiment_id == "fig7"
        assert report.series["conn"].values == [0.2, 0.8]
        assert bundle["manifest"]["service"]["spec_fingerprint"] == "cafe0123"
        assert bundle["spec"] == {"name": "sweep"}

    def test_tarball_round_trip(self, tmp_path):
        job_dir = make_job_dir(tmp_path)
        out = export_bundle(job_dir, tmp_path / "bundle.tar.gz")
        bundle = load_bundle(out)
        assert "fig7-s1" in bundle["reports"]
        assert bundle["index"]["spec_name"] == "sweep"

    def test_truncated_bundle_fails_loudly(self, tmp_path):
        job_dir = make_job_dir(tmp_path)
        out = export_bundle(job_dir, tmp_path / "bundle")
        (out / "manifest.json").unlink()
        with pytest.raises(ExperimentError, match="incomplete"):
            load_bundle(out)

    def test_wrong_schema_rejected(self, tmp_path):
        job_dir = make_job_dir(tmp_path)
        out = export_bundle(job_dir, tmp_path / "bundle")
        index = json.loads((out / "bundle.json").read_text())
        index["schema"] = 99
        (out / "bundle.json").write_text(json.dumps(index))
        with pytest.raises(ExperimentError, match="unsupported schema"):
            load_bundle(out)
