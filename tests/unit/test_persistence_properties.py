"""Property round-trips for the persistence layer.

Every JSON-safe form must survive ``dumps -> loads -> from_dict`` and
rebuild an equal object, for arbitrary payloads including the optional
obs / traffic / health / resilience attachments.  Hypothesis drives the
shapes; strategies stay JSON-clean (finite floats, string keys) because
the journal is plain JSON by design.
"""

import dataclasses
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.persistence import (
    mapping_result_from_dict,
    mapping_result_to_dict,
    report_from_dict,
    report_to_dict,
    routing_result_from_dict,
    routing_result_to_dict,
)
from repro.experiments.report import ExperimentReport
from repro.analysis.series import TimeSeries
from repro.faults.metrics import ResilienceReport
from repro.mapping.world import MappingResult
from repro.net.health import HealthReport
from repro.obs.collector import ObsReport
from repro.routing.world import RoutingResult
from repro.traffic.plane import TrafficReport

finite = st.floats(allow_nan=False, allow_infinity=False, width=32)
times = st.integers(min_value=0, max_value=10_000)
counts = st.integers(min_value=0, max_value=1_000)
names = st.text(
    alphabet=st.characters(whitelist_categories=("L", "N"), whitelist_characters="-_"),
    min_size=1,
    max_size=12,
)


@st.composite
def series_pairs(draw):
    n = draw(st.integers(min_value=0, max_value=8))
    return TimeSeries(
        [draw(times) for _ in range(n)], [draw(finite) for _ in range(n)]
    )


resilience_reports = st.one_of(
    st.none(),
    st.builds(
        ResilienceReport,
        faults_injected=counts,
        first_fault_time=st.none() | times,
        last_fault_time=st.none() | times,
        baseline=st.none() | finite,
        dip_depth=st.none() | finite,
        reconverge_steps=st.none() | times,
        agents_total=counts,
        agents_alive=counts,
    ),
)

obs_reports = st.one_of(
    st.none(),
    st.builds(
        ObsReport,
        schema=st.just(1),
        metrics=st.none() | st.dictionaries(names, finite, max_size=4),
        events=st.none()
        | st.lists(st.dictionaries(names, counts, max_size=3), max_size=3),
        events_dropped=counts,
        profile=st.none() | st.dictionaries(names, finite, max_size=3),
    ),
)

traffic_reports = st.one_of(
    st.none(),
    st.builds(
        TrafficReport,
        schema=st.just(1),
        router=names,
        generated=counts,
        delivered=counts,
        expired=counts,
        dropped=counts,
        in_flight=counts,
        buffered=counts,
        delivery_ratio=finite,
        mean_latency=finite,
        mean_hops=finite,
        latency_bounds=st.lists(times, max_size=6),
        latency_counts=st.lists(counts, max_size=6),
        counters=st.dictionaries(names, counts, max_size=4),
        queues=st.dictionaries(names, counts, max_size=4),
    ),
)

health_reports = st.one_of(
    st.none(),
    st.builds(
        HealthReport,
        quarantines=counts,
        rehabilitations=counts,
        quarantined_final=counts,
        links_tracked=counts,
        worst_quality=finite,
    ),
)

mapping_results = st.builds(
    MappingResult,
    finishing_time=st.none() | times,
    steps_simulated=times,
    times=st.lists(times, max_size=8),
    average_knowledge=st.lists(finite, max_size=8),
    minimum_knowledge=st.lists(finite, max_size=8),
    meetings=counts,
    overhead=st.dictionaries(names, finite, max_size=4),
    resilience=resilience_reports,
    obs=obs_reports,
    traffic=traffic_reports,
    health=health_reports,
)

routing_results = st.builds(
    RoutingResult,
    times=st.lists(times, max_size=8),
    connectivity=st.lists(finite, max_size=8),
    converged_after=times,
    meetings=counts,
    overhead=st.dictionaries(names, finite, max_size=4),
    guard_rejections=counts,
    resilience=resilience_reports,
    obs=obs_reports,
    traffic=traffic_reports,
    health=health_reports,
)


@st.composite
def experiment_reports(draw):
    columns = draw(st.lists(names, max_size=4))
    report = ExperimentReport(
        experiment_id=draw(names),
        title=draw(st.text(max_size=30)),
        paper_claim=draw(st.text(max_size=30)),
        columns=columns,
        rows=draw(
            st.lists(
                st.lists(finite, min_size=len(columns), max_size=len(columns)),
                max_size=3,
            )
        ),
        notes=draw(st.lists(st.text(max_size=20), max_size=3)),
        y_label=draw(st.text(max_size=15)),
    )
    for name in draw(st.lists(names, max_size=3, unique=True)):
        report.series[name] = draw(series_pairs())
    return report


def json_round_trip(payload):
    """What the journal actually does: serialize, then parse back."""
    return json.loads(json.dumps(payload, sort_keys=True, allow_nan=False))


@settings(max_examples=50, deadline=None)
@given(experiment_reports())
def test_report_round_trip(report):
    clone = report_from_dict(json_round_trip(report_to_dict(report)))
    assert report_to_dict(clone) == report_to_dict(report)


@settings(max_examples=50, deadline=None)
@given(mapping_results)
def test_mapping_result_round_trip(result):
    payload = json_round_trip(mapping_result_to_dict(result))
    clone = mapping_result_from_dict(payload)
    assert dataclasses.asdict(clone) == dataclasses.asdict(result)


@settings(max_examples=50, deadline=None)
@given(routing_results)
def test_routing_result_round_trip(result):
    payload = json_round_trip(routing_result_to_dict(result))
    clone = routing_result_from_dict(payload)
    assert dataclasses.asdict(clone) == dataclasses.asdict(result)
