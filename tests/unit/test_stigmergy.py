"""Unit tests for footprint boards and the stigmergy field."""

import pytest

from repro.core.stigmergy import FootprintBoard, StigmergyField
from repro.errors import ConfigurationError


class TestFootprintBoard:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FootprintBoard(capacity=0)
        with pytest.raises(ConfigurationError):
            FootprintBoard(freshness=0)

    def test_stamp_and_targets(self):
        board = FootprintBoard()
        board.stamp(agent=1, target=7, time=3)
        assert board.fresh_targets(now=3) == {7}
        assert len(board) == 1

    def test_latest_mark_per_agent(self):
        board = FootprintBoard()
        board.stamp(agent=1, target=7, time=3)
        board.stamp(agent=1, target=9, time=5)
        assert board.fresh_targets(now=5) == {9}
        assert len(board) == 1

    def test_multiple_agents(self):
        board = FootprintBoard()
        board.stamp(agent=1, target=7, time=3)
        board.stamp(agent=2, target=8, time=4)
        assert board.fresh_targets(now=4) == {7, 8}

    def test_freshness_window(self):
        board = FootprintBoard(freshness=5)
        board.stamp(agent=1, target=7, time=0)
        assert board.fresh_targets(now=4) == {7}
        assert board.fresh_targets(now=5) == set()

    def test_infinite_freshness(self):
        board = FootprintBoard(freshness=None)
        board.stamp(agent=1, target=7, time=0)
        assert board.fresh_targets(now=10_000) == {7}

    def test_capacity_evicts_oldest_agent_mark(self):
        board = FootprintBoard(capacity=2)
        board.stamp(agent=1, target=10, time=1)
        board.stamp(agent=2, target=20, time=2)
        board.stamp(agent=3, target=30, time=3)
        assert board.fresh_targets(now=3) == {20, 30}

    def test_fresh_marks_sorted_oldest_first(self):
        board = FootprintBoard()
        board.stamp(agent=2, target=20, time=5)
        board.stamp(agent=1, target=10, time=2)
        marks = board.fresh_marks(now=5)
        assert [m.agent for m in marks] == [1, 2]

    def test_clear(self):
        board = FootprintBoard()
        board.stamp(agent=1, target=7, time=3)
        board.clear()
        assert len(board) == 0


class TestStigmergyField:
    def test_lazy_boards(self):
        field = StigmergyField()
        assert field.total_marks() == 0
        assert field.avoided_targets(5, now=1) == set()

    def test_stamp_creates_board(self):
        field = StigmergyField()
        field.stamp(node=5, agent=1, target=9, time=2)
        assert field.avoided_targets(5, now=2) == {9}
        assert field.avoided_targets(6, now=2) == set()

    def test_filter_removes_avoided(self):
        field = StigmergyField()
        field.stamp(node=0, agent=1, target=2, time=1)
        assert field.filter_candidates(0, [1, 2, 3], now=1) == [1, 3]

    def test_filter_falls_back_when_all_vetoed(self):
        field = StigmergyField()
        field.stamp(node=0, agent=1, target=1, time=1)
        field.stamp(node=0, agent=2, target=2, time=1)
        assert field.filter_candidates(0, [1, 2], now=1) == [1, 2]

    def test_filter_no_marks_passthrough(self):
        field = StigmergyField()
        assert field.filter_candidates(0, [3, 1], now=5) == [3, 1]

    def test_filter_respects_freshness(self):
        field = StigmergyField(freshness=2)
        field.stamp(node=0, agent=1, target=2, time=0)
        assert field.filter_candidates(0, [1, 2], now=1) == [1]
        assert field.filter_candidates(0, [1, 2], now=2) == [1, 2]

    def test_configuration_propagates_to_boards(self):
        field = StigmergyField(capacity=1, freshness=3)
        board = field.board(0)
        assert board.capacity == 1
        assert board.freshness == 3

    def test_clear(self):
        field = StigmergyField()
        field.stamp(node=0, agent=1, target=2, time=1)
        field.clear()
        assert field.total_marks() == 0
