"""Unit tests for the simulation clock and event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.events import EventQueue


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0

    def test_custom_start(self):
        assert SimClock(5).now == 5

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            SimClock(-1)

    def test_advance_default(self):
        clock = SimClock()
        assert clock.advance() == 1
        assert clock.now == 1

    def test_advance_multiple(self):
        clock = SimClock()
        clock.advance(10)
        assert clock.now == 10

    def test_advance_zero_rejected(self):
        with pytest.raises(SimulationError):
            SimClock().advance(0)

    def test_advance_negative_rejected(self):
        with pytest.raises(SimulationError):
            SimClock().advance(-3)


class TestEventQueue:
    def test_empty_queue(self):
        queue = EventQueue()
        assert len(queue) == 0
        assert queue.peek_time() is None
        assert queue.pop_due(100) == []

    def test_schedule_and_pop(self):
        queue = EventQueue()
        fired = []
        queue.schedule(3, lambda: fired.append("a"))
        assert queue.peek_time() == 3
        assert queue.pop_due(2) == []
        due = queue.pop_due(3)
        assert len(due) == 1
        due[0].fire()
        assert fired == ["a"]
        assert len(queue) == 0

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().schedule(-1, lambda: None)

    def test_ordering_by_time(self):
        queue = EventQueue()
        queue.schedule(5, lambda: None, label="late")
        queue.schedule(2, lambda: None, label="early")
        due = queue.pop_due(10)
        assert [e.label for e in due] == ["early", "late"]

    def test_stable_order_for_simultaneous_events(self):
        queue = EventQueue()
        for index in range(5):
            queue.schedule(1, lambda: None, label=f"e{index}")
        assert [e.label for e in queue.pop_due(1)] == [f"e{i}" for i in range(5)]

    def test_pop_due_leaves_future_events(self):
        queue = EventQueue()
        queue.schedule(1, lambda: None)
        queue.schedule(9, lambda: None)
        assert len(queue.pop_due(5)) == 1
        assert queue.peek_time() == 9

    def test_cancel(self):
        queue = EventQueue()
        event = queue.schedule(1, lambda: None, label="victim")
        queue.schedule(1, lambda: None, label="survivor")
        queue.cancel(event)
        assert len(queue) == 1
        assert [e.label for e in queue.pop_due(1)] == ["survivor"]

    def test_cancelled_head_does_not_block_peek(self):
        queue = EventQueue()
        event = queue.schedule(1, lambda: None)
        queue.schedule(4, lambda: None)
        queue.cancel(event)
        assert queue.peek_time() == 4
