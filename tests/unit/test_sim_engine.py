"""Unit tests for the time-step engine, hooks, and trace recorder."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import StopSimulation, TimeStepEngine
from repro.sim.hooks import HookRegistry
from repro.sim.trace import TraceRecorder


class TestTimeStepEngine:
    def test_processes_run_each_step(self):
        engine = TimeStepEngine()
        seen = []
        engine.add_process(seen.append)
        engine.run(3)
        assert seen == [1, 2, 3]

    def test_process_order_is_registration_order(self):
        engine = TimeStepEngine()
        order = []
        engine.add_process(lambda t: order.append("a"))
        engine.add_process(lambda t: order.append("b"))
        engine.run(1)
        assert order == ["a", "b"]

    def test_stop_simulation_ends_run_early(self):
        engine = TimeStepEngine()

        def stopper(t):
            if t == 2:
                raise StopSimulation("done")

        engine.add_process(stopper)
        last = engine.run(10)
        assert last == 2
        assert engine.stop_reason == "done"

    def test_run_returns_last_time(self):
        engine = TimeStepEngine()
        assert engine.run(5) == 5
        assert engine.clock.now == 5

    def test_run_twice_continues_clock(self):
        engine = TimeStepEngine()
        engine.run(2)
        engine.run(2)
        assert engine.clock.now == 4

    def test_negative_max_steps_rejected(self):
        with pytest.raises(SimulationError):
            TimeStepEngine().run(-1)

    def test_scheduled_event_fires_before_processes(self):
        engine = TimeStepEngine()
        order = []
        engine.schedule_at(2, lambda: order.append("event"))
        engine.add_process(lambda t: order.append(f"step{t}"))
        engine.run(3)
        assert order == ["step1", "event", "step2", "step3"]

    def test_schedule_in_relative(self):
        engine = TimeStepEngine()
        fired = []
        engine.run(2)
        engine.schedule_in(3, lambda: fired.append(engine.clock.now))
        engine.run(5)
        assert fired == [5]

    def test_schedule_in_past_rejected(self):
        engine = TimeStepEngine()
        engine.run(5)
        with pytest.raises(SimulationError):
            engine.schedule_at(5, lambda: None)

    def test_hooks_fire(self):
        engine = TimeStepEngine()
        events = []
        engine.hooks.subscribe("step_start", lambda time: events.append(("start", time)))
        engine.hooks.subscribe("step_end", lambda time: events.append(("end", time)))
        engine.hooks.subscribe(
            "run_end", lambda time, reason: events.append(("run_end", reason))
        )
        engine.run(2)
        assert events == [
            ("start", 1),
            ("end", 1),
            ("start", 2),
            ("end", 2),
            ("run_end", "max_steps"),
        ]

    def test_run_end_reports_stop_reason(self):
        engine = TimeStepEngine()
        reasons = []
        engine.hooks.subscribe("run_end", lambda time, reason: reasons.append(reason))

        def stopper(t):
            raise StopSimulation("why")

        engine.add_process(stopper)
        engine.run(5)
        assert reasons == ["why"]

    def test_run_end_fires_exactly_once_on_error(self):
        # A process raising a non-StopSimulation error must still fire
        # run_end (exactly once, with an "error: …" reason) so metric
        # collectors can finalize before the exception propagates.
        engine = TimeStepEngine()
        fired = []
        engine.hooks.subscribe(
            "run_end", lambda time, reason: fired.append((time, reason))
        )

        def exploder(t):
            if t == 2:
                raise ValueError("boom")

        engine.add_process(exploder)
        with pytest.raises(ValueError):
            engine.run(10)
        assert fired == [(2, "error: boom")]

    def test_error_leaves_engine_restartable(self):
        engine = TimeStepEngine()
        state = {"explode": True}

        def sometimes(t):
            if state["explode"]:
                raise RuntimeError("first run dies")

        engine.add_process(sometimes)
        with pytest.raises(RuntimeError):
            engine.run(3)
        state["explode"] = False
        assert engine.run(3) > 0  # _running was reset; a rerun works


class TestHookRegistry:
    def test_fire_without_subscribers_is_noop(self):
        HookRegistry().fire("nothing", x=1)

    def test_subscribe_and_fire(self):
        hooks = HookRegistry()
        got = []
        hooks.subscribe("h", lambda **kw: got.append(kw))
        hooks.fire("h", a=1, b="x")
        assert got == [{"a": 1, "b": "x"}]

    def test_subscription_order_preserved(self):
        hooks = HookRegistry()
        order = []
        hooks.subscribe("h", lambda: order.append(1))
        hooks.subscribe("h", lambda: order.append(2))
        hooks.fire("h")
        assert order == [1, 2]

    def test_unsubscribe(self):
        hooks = HookRegistry()
        callback = lambda: None  # noqa: E731
        hooks.subscribe("h", callback)
        assert hooks.subscriber_count("h") == 1
        hooks.unsubscribe("h", callback)
        assert hooks.subscriber_count("h") == 0

    def test_unsubscribe_missing_is_noop(self):
        HookRegistry().unsubscribe("h", lambda: None)

    def test_unsubscribe_during_fire_does_not_skip_subscribers(self):
        # fire() must iterate a snapshot: a callback that unsubscribes
        # itself used to shift the live list and silently skip the next
        # subscriber.
        hooks = HookRegistry()
        ran = []

        def one_shot():
            ran.append("one_shot")
            hooks.unsubscribe("h", one_shot)

        hooks.subscribe("h", one_shot)
        hooks.subscribe("h", lambda: ran.append("steady"))
        hooks.fire("h")
        assert ran == ["one_shot", "steady"]
        hooks.fire("h")
        assert ran == ["one_shot", "steady", "steady"]

    def test_subscribe_during_fire_affects_next_fire_only(self):
        hooks = HookRegistry()
        ran = []

        def recruiter():
            ran.append("recruiter")
            hooks.subscribe("h", lambda: ran.append("recruit"))

        hooks.subscribe("h", recruiter)
        hooks.fire("h")
        assert ran == ["recruiter"]


class TestTraceRecorder:
    def test_records_events(self):
        trace = TraceRecorder()
        trace.record(1, "move", agent=0, to=5)
        trace.record(2, "learn", agent=0)
        assert len(trace) == 2
        assert trace.events[0].payload == {"agent": 0, "to": 5}

    def test_kind_filter(self):
        trace = TraceRecorder(kinds={"move"})
        trace.record(1, "move")
        trace.record(1, "learn")
        assert [e.kind for e in trace.events] == ["move"]

    def test_of_kind(self):
        trace = TraceRecorder()
        trace.record(1, "a")
        trace.record(2, "b")
        trace.record(3, "a")
        assert [e.time for e in trace.of_kind("a")] == [1, 3]

    def test_max_events_drops_overflow(self):
        trace = TraceRecorder(max_events=2)
        for t in range(5):
            trace.record(t, "x")
        assert len(trace) == 2
        assert trace.dropped == 3

    def test_clear(self):
        trace = TraceRecorder()
        trace.record(1, "x")
        trace.clear()
        assert len(trace) == 0
        assert trace.dropped == 0
